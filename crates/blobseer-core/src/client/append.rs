//! The append path: optimistic block-aligned data phase, version-manager
//! offset fixing, and the rare unaligned-tail slow path (§III-D).

use crate::ports::{ProtocolOp, ProtocolPhase};
use crate::version_manager::WriteIntent;
use blobseer_types::{BlobId, Error, Result, Version};
use bytes::Bytes;

use super::BlobClient;

impl BlobClient {
    /// Appends `data` at the end of the BLOB. The offset is fixed by the
    /// version manager *after* the data phase (§III-D); returns
    /// `(offset, version)`.
    pub fn append(&self, blob: BlobId, data: &[u8]) -> Result<(u64, Version)> {
        if data.is_empty() {
            return Err(Error::WriteAborted(
                "zero-length appends are rejected".into(),
            ));
        }
        let bs = self.sys.cfg.block_size;
        self.observe(ProtocolOp::Append, ProtocolPhase::Start);
        // Optimistic data phase: chunk as if the append lands block-aligned
        // (always true for BSFS's write-behind cache and for the paper's
        // workloads). Descriptors are keyed relative to block 0 for now.
        let optimistic = self.store_blocks(Bytes::copy_from_slice(data), 0)?;
        self.observe(ProtocolOp::Append, ProtocolPhase::DataDone);
        let ticket = match self.sys.vm.assign(
            blob,
            WriteIntent::Append {
                size: data.len() as u64,
            },
        ) {
            Ok(t) => t,
            Err(e) => {
                // No version exists (e.g. the BLOB was deleted between the
                // data phase and assignment): the optimistic blocks can
                // never be referenced — undo the data phase.
                self.release_stored(&optimistic);
                return Err(e);
            }
        };
        self.observe(ProtocolOp::Append, ProtocolPhase::VersionAssigned);
        let leaves = if ticket.offset.is_multiple_of(bs) {
            // Re-key descriptors at the real first block index.
            let first = ticket.offset / bs;
            optimistic
                .into_iter()
                .map(|(i, d)| (first + i, d))
                .collect()
        } else {
            // Rare slow path: the file tail is unaligned. Discard the
            // optimistic blocks (deleting them and releasing their load
            // accounting) and redo the data phase with boundary merging at
            // the now-known offset.
            self.release_stored(&optimistic);
            // An unaligned append rewrites the preceding snapshot's tail
            // block, so its content must be *exact*: wait until the
            // preceding version is revealed (block-aligned appends — the
            // paper's workloads — never take this path and keep full
            // parallelism). On timeout (crashed predecessor), repair our
            // assigned version so the reveal pipeline is not stalled. The
            // patience comes from `BlobSeerConfig::unaligned_append_timeout`
            // so tests and simulation runs can shrink it.
            if let Err(e) = self.wait_revealed(
                blob,
                ticket.version.prev(),
                self.sys.cfg.unaligned_append_timeout,
            ) {
                self.repair_aborted(&ticket)?;
                return Err(e);
            }
            // A failure in the redone data phase would also strand the
            // assigned version: self-repair before surfacing it.
            // The predecessor just revealed, so the pinned merge snapshot
            // is exactly the preceding version and its size.
            let redo = self
                .merge_boundaries(
                    blob,
                    ticket.offset,
                    data,
                    ticket.prev_size,
                    (ticket.version.prev(), ticket.prev_size),
                )
                .and_then(|merged| {
                    let first_block = merged.start / bs;
                    self.store_blocks(merged.payload, first_block)
                });
            match redo {
                Ok(leaves) => leaves.into_iter().collect(),
                Err(e) => {
                    let _ = self.repair_aborted(&ticket);
                    return Err(e);
                }
            }
        };
        self.publish_and_commit(ProtocolOp::Append, &ticket, leaves)?;
        Ok((ticket.offset, ticket.version))
    }
}
