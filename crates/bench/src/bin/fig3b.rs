//! Regenerates Fig. 3(b): load-balancing quality (Manhattan distance to
//! the ideal layout) as the file grows 1→16 GB (§V-D).

use experiments::{fig3b, Constants};

fn main() {
    let c = Constants::default();
    let sizes = if bench::quick_mode() {
        vec![2.0, 8.0, 16.0]
    } else {
        fig3b::paper_sizes()
    };
    bench::print_figure(&fig3b::run(&c, &sizes));
}
