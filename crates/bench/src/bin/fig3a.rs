//! Regenerates Fig. 3(a): single writer, single file — write throughput as
//! the file grows 1→16 GB (§V-D).

use experiments::{fig3a, Constants};

fn main() {
    let c = Constants::default();
    let sizes = if bench::quick_mode() {
        vec![1.0, 8.0, 16.0]
    } else {
        fig3a::paper_sizes()
    };
    bench::print_figure(&fig3a::run(&c, &sizes));
}
