//! The paper's flagship application pipeline (§V-G): generate text with
//! RandomTextWriter, then run distributed grep over it — on BSFS *and* on
//! the HDFS baseline, comparing locality and I/O behaviour.
//!
//! ```text
//! cargo run --example mapreduce_grep
//! ```

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, HdfsConfig, NodeId};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::read_fully;
use hdfs_sim::HdfsCluster;
use mapreduce::apps::{DistributedGrep, RandomTextWriter};
use mapreduce::{JobTracker, TaskTracker};

const NODES: usize = 8;
const BLOCK: u64 = 16 * 1024;

fn run_pipeline(name: &str, trackers: JobTracker, fs: &dyn FileSystem) {
    // Stage 1: RandomTextWriter — map-only, one output file per mapper.
    let rtw = RandomTextWriter {
        bytes_per_mapper: 4 * BLOCK,
        seed: 2026,
    };
    let report = trackers
        .run_map_only(&RandomTextWriter::job(4, "/gen"), &rtw)
        .unwrap();
    println!(
        "[{name}] RandomTextWriter: {} mappers wrote {} records in {:.1} ms",
        report.map_tasks,
        report.output_records,
        report.duration_micros as f64 / 1000.0
    );

    // Stage 2: distributed grep over all generated files.
    let inputs: Vec<String> = (0..4).map(|i| format!("/gen/part-m-{i:05}")).collect();
    let job = mapreduce::JobSpec::new("grep", mapreduce::InputSpec::Files(inputs), "/grepped", 1);
    let grep = DistributedGrep::new("hookworm");
    let report = trackers.run_job(&job, &grep, &grep).unwrap();
    let out = read_fully(fs, "/grepped/part-r-00000").unwrap();
    println!(
        "[{name}] grep: {} maps ({} local / {} remote), result: {}",
        report.map_tasks,
        report.local_maps,
        report.remote_maps,
        String::from_utf8_lossy(&out).trim()
    );
}

fn main() {
    // --- BSFS ---------------------------------------------------------
    let system = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(BLOCK)
            .with_metadata_providers(4),
        NODES,
    );
    let cluster = BsfsCluster::new(system);
    let trackers = JobTracker::new(
        (0..NODES)
            .map(|i| {
                TaskTracker::new(
                    NodeId::new(i as u64),
                    Box::new(cluster.mount(NodeId::new(i as u64))),
                )
            })
            .collect(),
    );
    let fs = cluster.mount(NodeId::new(0));
    run_pipeline("BSFS", trackers, &fs);

    // --- HDFS baseline: identical job code, different storage ----------
    let hdfs = HdfsCluster::new(HdfsConfig::default().with_chunk_size(BLOCK), NODES);
    let trackers = JobTracker::new(
        (0..NODES)
            .map(|i| {
                TaskTracker::new(
                    NodeId::new(i as u64),
                    Box::new(hdfs.mount(NodeId::new(i as u64))),
                )
            })
            .collect(),
    );
    let fs = hdfs.mount(NodeId::new(0));
    run_pipeline("HDFS", trackers, &fs);

    println!("\nsame binaries, two storage backends — the paper's methodology (§V-B)");
}
