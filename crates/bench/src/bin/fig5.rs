//! Regenerates Fig. 5: concurrent appends to a shared file — aggregated
//! throughput for 1→250 clients (§V-F). BSFS only: "we could not perform
//! the same experiment for HDFS, since it does not implement the append
//! operation".
//!
//! Pass `--writes` for the §V-F closing ablation: the same harness running
//! block-aligned `write`s at random offsets next to the append curve —
//! "the same experiment performed with writes instead of appends leads to
//! very similar results".

use experiments::{fig5, Constants};

fn main() {
    let c = Constants::default();
    let counts = if bench::quick_mode() {
        vec![1, 100, 250]
    } else {
        fig5::paper_counts()
    };
    let fig = if std::env::args().any(|a| a == "--writes") {
        fig5::run_writes(&c, &counts)
    } else {
        fig5::run(&c, &counts)
    };
    bench::print_figure(&fig);
}
