//! `blobseer-repro` — umbrella crate of the BlobSeer reproduction.
//!
//! Re-exports every workspace crate so the examples in `examples/` and the
//! integration tests in `tests/` can reach the whole stack through one
//! dependency. See the README for the architecture map and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.
#![forbid(unsafe_code)]

pub use blobseer_control;
pub use blobseer_core;
pub use blobseer_disk;
pub use blobseer_rpc;
pub use blobseer_types;
pub use bsfs;
pub use dfs;
pub use experiments;
pub use hdfs_sim;
pub use mapreduce;
pub use simnet;
