//! Calibrated constants of the figure-scale models.
//!
//! Two kinds of numbers live here:
//!
//! * **Measured/stated by the paper** (§V-A): NIC throughput, latency,
//!   block size, cluster sizes. These are not tunable knobs.
//! * **Calibrated**: hardware rates of the 2009-era testbed and software
//!   path costs of Hadoop 0.20 / BlobSeer that the paper does not state.
//!   Each is documented with its physical justification; EXPERIMENTS.md
//!   discusses sensitivity, and `bench/benches/ablations.rs` sweeps the
//!   influential ones. The *shapes* of the reproduced figures come from
//!   the modeled mechanisms (placement policies, disk queueing, max-min
//!   NIC sharing, centralized-service serialization); the constants set
//!   absolute levels.

use simnet::SimDuration;

/// MiB in bytes, the unit of most rates below.
pub const MIB: f64 = 1024.0 * 1024.0;

/// All model constants.
#[derive(Clone, Debug)]
pub struct Constants {
    // --- stated by the paper (§V-A) ------------------------------------
    /// Measured TCP throughput of the 1 Gbit/s NICs: 117.5 MB/s.
    pub nic_bps: f64,
    /// Intra-cluster one-way latency: 0.1 ms.
    pub latency: SimDuration,
    /// Block/chunk size: 64 MB.
    pub block_bytes: u64,

    // --- 2009 hardware, calibrated ---------------------------------------
    /// Sequential disk write rate. Commodity SATA of the era sustained
    /// 60–80 MB/s; HDFS additionally writes per-block checksum files.
    pub disk_write_bps: f64,
    /// Sequential disk read rate.
    pub disk_read_bps: f64,

    // --- BlobSeer/BSFS software path ------------------------------------
    /// Client-side cost per 64 MB block (BSFS cache memcpy, chunking,
    /// serialization).
    pub bsfs_block_overhead: SimDuration,
    /// Per-block client cost on reads (the 4 KB read loop through the
    /// prefetch cache).
    pub bsfs_read_overhead: SimDuration,
    /// Version-manager service time per assignment: append a log entry,
    /// update the in-flight table (§III-A.4: the only serialized step).
    pub vm_assign_svc: SimDuration,
    /// Version-manager service time per read-side lookup ("the special
    /// call that allows the client to find out the latest version",
    /// §III-A.1). Calibrated to the namenode's base RPC cost — both are a
    /// small table lookup behind one RPC queue.
    pub vm_lookup_svc: SimDuration,
    /// Metadata-provider service time per tree-node put/get.
    pub meta_svc: SimDuration,
    /// Provider request-handling cost per block.
    pub provider_svc: SimDuration,
    /// Metadata providers deployed in the microbenchmarks (§V-C: 20).
    pub meta_shards: usize,

    // --- Hadoop 0.20 software path ----------------------------------------
    /// Per-chunk write-pipeline cost over the network: pipeline setup,
    /// 64 KB packet ack stalls, block finalize (0.20's DataStreamer).
    pub hdfs_chunk_overhead: SimDuration,
    /// Same, for a writer co-located with the target datanode (loopback:
    /// no packet stalls, cheaper pipeline).
    pub hdfs_chunk_overhead_local: SimDuration,
    /// Per-block read-path cost: connection setup plus CRC32 checksum
    /// verification (HDFS stores and verifies .meta checksums; BlobSeer
    /// has no checksum layer — a real protocol difference).
    pub hdfs_read_overhead: SimDuration,
    /// Namenode base service time per RPC.
    pub nn_svc: SimDuration,
    /// Namenode edit-log fsync on block allocation (0.20 logs OP_ADD
    /// synchronously).
    pub nn_editlog_fsync: SimDuration,
    /// 0.20's OP_ADD rewrites the file's *entire* block list on every
    /// allocation — O(chunks) namenode work per chunk, the mechanism
    /// behind HDFS's declining single-writer curve (Fig. 3(a)).
    pub nn_blocklist_per_chunk: SimDuration,
    /// HDFS placement session affinity for remote writers, in percent
    /// (DESIGN.md §3.4).
    pub hdfs_stickiness: u8,

    // --- Map/Reduce job model (Fig. 6) -----------------------------------
    /// Fixed job overhead: job setup/cleanup tasks and jobtracker
    /// bookkeeping in 0.20.
    pub job_overhead: SimDuration,
    /// Tasktracker heartbeat interval (0.20 assigns one task per tracker
    /// per heartbeat).
    pub heartbeat: SimDuration,
    /// Per-task launch cost: 0.20 spawns a fresh JVM for every task
    /// (`mapred.job.reuse.jvm.num.tasks = 1`), plus task init and commit.
    pub task_overhead: SimDuration,
    /// Random-text generation rate of one mapper (Java string handling).
    pub textgen_bps: f64,
    /// Grep scan rate of one mapper. Hadoop's grep example applies
    /// java.util.regex to every line — measured rates in the single-digit
    /// MB/s were typical for 0.20-era clusters.
    pub grep_scan_bps: f64,
    /// Cost of the tiny reduce phase of grep (fetch + sum + write).
    pub reduce_phase: SimDuration,
}

impl Default for Constants {
    fn default() -> Self {
        Self {
            nic_bps: 117.5 * MIB,
            latency: SimDuration::from_micros(100),
            block_bytes: 64 * 1024 * 1024,

            disk_write_bps: 66.0 * MIB,
            disk_read_bps: 80.0 * MIB,

            bsfs_block_overhead: SimDuration::from_millis(60),
            bsfs_read_overhead: SimDuration::from_millis(250),
            vm_assign_svc: SimDuration::from_millis(4),
            vm_lookup_svc: SimDuration::from_millis(1),
            meta_svc: SimDuration::from_micros(150),
            provider_svc: SimDuration::from_millis(10),
            meta_shards: 20,

            hdfs_chunk_overhead: SimDuration::from_millis(450),
            hdfs_chunk_overhead_local: SimDuration::from_millis(300),
            hdfs_read_overhead: SimDuration::from_millis(550),
            nn_svc: SimDuration::from_millis(1),
            nn_editlog_fsync: SimDuration::from_millis(60),
            nn_blocklist_per_chunk: SimDuration::from_micros(1200),
            hdfs_stickiness: 65,

            job_overhead: SimDuration::from_secs(15),
            heartbeat: SimDuration::from_secs(3),
            task_overhead: SimDuration::from_secs(3),
            textgen_bps: 52.0 * MIB,
            grep_scan_bps: 16.0 * MIB,
            reduce_phase: SimDuration::from_secs(5),
        }
    }
}

impl Constants {
    /// Round-trip latency for a small RPC.
    pub fn rtt(&self) -> SimDuration {
        self.latency + self.latency
    }

    /// Time to push one block through an uncontended NIC.
    pub fn block_net_secs(&self) -> f64 {
        self.block_bytes as f64 / self.nic_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_exact() {
        let c = Constants::default();
        assert_eq!(c.nic_bps, 117.5 * 1024.0 * 1024.0);
        assert_eq!(c.latency.as_nanos(), 100_000);
        assert_eq!(c.block_bytes, 64 * 1024 * 1024);
        assert_eq!(c.meta_shards, 20);
        assert_eq!(c.rtt().as_nanos(), 200_000);
    }

    #[test]
    fn derived_rates_are_sane() {
        let c = Constants::default();
        // A 64 MB block takes ~0.545 s on an idle NIC.
        assert!((c.block_net_secs() - 0.5447).abs() < 0.01);
        // Disk is the write bottleneck (the Fig. 3(a)/4 premise).
        assert!(c.disk_write_bps < c.nic_bps);
        assert!(c.disk_read_bps < c.nic_bps);
    }
}
