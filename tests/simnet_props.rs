//! Property-based tests of the discrete-event substrate: whatever random
//! flow pattern we throw at the network model, physics must hold.

use blobseer_types::NodeId;
use proptest::prelude::*;
use simnet::{
    start_flow, Disk, FifoServer, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime,
};

#[derive(Clone, Debug)]
struct FlowSpec {
    src: u8,
    dst: u8,
    kib: u16,
    start_ms: u16,
}

fn flow_strategy(nodes: u8) -> impl Strategy<Value = FlowSpec> {
    (0..nodes, 0..nodes, 1u16..2048, 0u16..500).prop_map(|(src, dst, kib, start_ms)| FlowSpec {
        src,
        dst,
        kib,
        start_ms,
    })
}

struct W {
    net: FlowNet<usize>,
    completions: Vec<(usize, SimTime)>,
}

impl NetWorld for W {
    type Token = usize;
    fn net_mut(&mut self) -> &mut FlowNet<usize> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, token: usize) {
        self.completions.push((token, sched.now()));
    }
}

const NODES: u8 = 6;
const CAP: f64 = 1_000_000.0; // 1 MB/s NICs

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every flow completes exactly once, never before its physical lower
    /// bound (its bytes at full NIC speed), and never slower than the
    /// worst case of sharing its NICs with every other flow.
    #[test]
    fn flows_complete_within_physical_bounds(specs in proptest::collection::vec(flow_strategy(NODES), 1..20)) {
        let specs: Vec<FlowSpec> = specs.into_iter().filter(|s| s.src != s.dst).collect();
        prop_assume!(!specs.is_empty());
        let world = W { net: FlowNet::new(NODES as usize, NicSpec::symmetric(CAP)), completions: vec![] };
        let mut sim = Sim::new(world);
        for (i, s) in specs.iter().enumerate() {
            let (src, dst, bytes) = (s.src, s.dst, s.kib as u64 * 1024);
            sim.schedule_in(SimDuration::from_millis(s.start_ms as u64), move |w: &mut W, sch| {
                start_flow(w, sch, NodeId::new(src as u64), NodeId::new(dst as u64), bytes, i);
            });
        }
        let end = sim.run_until_idle();
        prop_assert_eq!(sim.world.completions.len(), specs.len(), "every flow completes once");
        let mut seen = std::collections::HashSet::new();
        let n = specs.len() as f64;
        for &(token, at) in &sim.world.completions {
            prop_assert!(seen.insert(token), "duplicate completion {}", token);
            let s = &specs[token];
            let started = s.start_ms as f64 / 1000.0;
            let min_secs = s.kib as f64 * 1024.0 / CAP;
            let dur = at.as_secs_f64() - started;
            prop_assert!(dur + 1e-6 >= min_secs, "flow {} beat light speed: {} < {}", token, dur, min_secs);
            // Worst case: the flow shares both endpoints with all others
            // for its whole life.
            prop_assert!(dur <= min_secs * n + 1.0, "flow {} too slow: {} vs {}", token, dur, min_secs * n);
        }
        // Total bytes conserved.
        let expected: f64 = specs.iter().map(|s| s.kib as f64 * 1024.0).sum();
        let moved = sim.world.net.bytes_transferred();
        prop_assert!((moved - expected).abs() < 1.0, "bytes lost: {} vs {}", moved, expected);
        // Simulation ends exactly at the last completion.
        let last = sim.world.completions.iter().map(|&(_, t)| t).max().unwrap();
        prop_assert_eq!(end, last);
    }

    /// The flow model conserves work: aggregate throughput at any recompute
    /// point never exceeds the sum of NIC capacities, so the makespan is
    /// bounded below by total bytes / aggregate capacity.
    #[test]
    fn makespan_respects_aggregate_capacity(specs in proptest::collection::vec(flow_strategy(NODES), 1..24)) {
        let specs: Vec<FlowSpec> = specs.into_iter().filter(|s| s.src != s.dst).map(|mut s| { s.start_ms = 0; s }).collect();
        prop_assume!(!specs.is_empty());
        let world = W { net: FlowNet::new(NODES as usize, NicSpec::symmetric(CAP)), completions: vec![] };
        let mut sim = Sim::new(world);
        for (i, s) in specs.iter().enumerate() {
            let (src, dst, bytes) = (s.src, s.dst, s.kib as u64 * 1024);
            sim.schedule_in(SimDuration::ZERO, move |w: &mut W, sch| {
                start_flow(w, sch, NodeId::new(src as u64), NodeId::new(dst as u64), bytes, i);
            });
        }
        let end = sim.run_until_idle().as_secs_f64();
        let total_bytes: f64 = specs.iter().map(|s| s.kib as f64 * 1024.0).sum();
        // Egress is the binding aggregate limit.
        let min_time = total_bytes / (NODES as f64 * CAP);
        prop_assert!(end + 1e-9 >= min_time);
    }

    /// FIFO servers: completion times are ordered, spacing ≥ service time,
    /// and total busy time equals requests × service.
    #[test]
    fn fifo_server_discipline(arrivals in proptest::collection::vec(0u32..10_000, 1..64)) {
        let svc = SimDuration::from_micros(500);
        let mut server = FifoServer::new(svc);
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut last_done = SimTime::ZERO;
        for &a in &sorted {
            let done = server.submit(SimTime::from_nanos(a as u64 * 1000));
            prop_assert!(done > last_done, "FIFO order violated");
            prop_assert!(done.as_nanos() >= a as u64 * 1000 + svc.as_nanos());
            last_done = done;
        }
        prop_assert_eq!(server.served(), sorted.len() as u64);
    }

    /// Disks: completions are monotone, and a busy disk finishes exactly
    /// total_bytes/rate after its first idle start.
    #[test]
    fn disk_work_conservation(jobs in proptest::collection::vec(1u32..100_000, 1..32)) {
        let rate = 1_000_000.0;
        let mut disk = Disk::new(rate);
        let mut last = SimTime::ZERO;
        for &bytes in &jobs {
            let done = disk.submit(SimTime::ZERO, bytes as u64);
            prop_assert!(done >= last);
            last = done;
        }
        let total: f64 = jobs.iter().map(|&b| b as f64).sum();
        let expect = total / rate;
        // All submitted at t=0: the queue drains back-to-back.
        prop_assert!((last.as_secs_f64() - expect).abs() < 1e-3 * jobs.len() as f64);
    }
}

/// Determinism across runs is load-bearing for the figure reproduction:
/// byte-identical completion schedules for identical inputs.
#[test]
fn identical_runs_produce_identical_schedules() {
    let run = || {
        let world = W {
            net: FlowNet::new(5, NicSpec::symmetric(CAP)),
            completions: vec![],
        };
        let mut sim = Sim::new(world);
        for i in 0..12usize {
            let src = (i % 4) as u64;
            let dst = 4u64;
            sim.schedule_in(
                SimDuration::from_millis(i as u64 * 7),
                move |w: &mut W, s| {
                    start_flow(
                        w,
                        s,
                        NodeId::new(src),
                        NodeId::new(dst),
                        100_000 + i as u64 * 13,
                        i,
                    );
                },
            );
        }
        sim.run_until_idle();
        sim.world
            .completions
            .iter()
            .map(|&(t, at)| (t, at.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
