//! Fig. 3(a): throughput of a single remote writer as the file grows from
//! 1 to 16 GB (§V-D).
//!
//! * **BSFS** — runs the **real client protocol** end-to-end through the
//!   concurrent harness ([`crate::concurrent`], here with one client on a
//!   non-colocated node, §V-D): every `BlobClient::append` performs the
//!   genuine data phase (provider-manager allocation + block put), version
//!   assignment, segment-tree publish and commit, while the adapters
//!   charge the §V cost model — cache-flush overhead and PM RPC, a 64 MB
//!   flow absorbed by the provider's disk, serialized version-manager
//!   service, parallel tree-node puts to the metadata DHT, commit
//!   round-trip. Every provider sees at most a couple of blocks, so disks
//!   never queue: the curve is flat.
//! * **HDFS** — per 64 MB chunk on the discrete-event world: pipeline
//!   overhead → namenode allocation, whose cost *grows with the file's
//!   chunk count* (0.20's OP_ADD rewrote the file's entire block list into
//!   the synchronously-fsynced edit log on every allocation) → bulk flow to
//!   the sticky-random datanode → finalize. The O(chunks) namenode term
//!   bends the curve downward as the file grows — the decline the paper
//!   attributes to HDFS's weaker write path.

use crate::concurrent::{self, ClientTask};
use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::{Backend, Services};
use blobseer_core::placement::Placer;
use blobseer_core::BlobClient;
use blobseer_types::NodeId;
use simnet::{start_flow, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime};

/// Real engine block size behind each modeled 64 MB block of the BSFS leg:
/// big enough to hold real content, small enough that a modeled 16 GB file
/// costs only 256 KB of actual memory.
const BSFS_REAL_BLOCK: u64 = 1024;

/// The BSFS leg: the real client driving the harness-backed deployment
/// (one writer on the dedicated non-colocated node past the providers,
/// §V-D: "we chose to always deploy clients on nodes where no datanode
/// has previously been deployed").
fn bsfs_throughput_via_ports(c: &Constants, n_blocks: usize, seed: u64) -> f64 {
    let providers = Backend::Bsfs.microbench_storage_nodes();
    let dep = concurrent::deploy(
        c,
        providers,
        providers + 1,
        policy_for(c, Backend::Bsfs),
        seed,
        BSFS_REAL_BLOCK,
    );
    let writer_node = blobseer_types::NodeId::new(providers as u64);
    let blob = dep.sys.client(writer_node).create();
    dep.set_charging(true);
    let clients: Vec<ClientTask<'_>> = vec![(
        writer_node,
        Box::new(move |cl: BlobClient| {
            let payload = vec![0u8; BSFS_REAL_BLOCK as usize];
            for _ in 0..n_blocks {
                // Block-aligned appends: the paper's workload, and the
                // fast path that never waits on a predecessor's reveal.
                cl.append(blob, &payload).unwrap();
            }
        }),
    )];
    dep.run_clients(clients);
    assert_eq!(
        dep.sys.providers().total_block_count(),
        n_blocks,
        "every modeled block must be really stored"
    );
    let bytes = n_blocks as f64 * c.block_bytes as f64;
    bytes / (1024.0 * 1024.0) / dep.now().as_secs_f64()
}

// --- the HDFS discrete-event world ------------------------------------------

#[derive(Clone, Copy)]
struct Tok {
    started: SimTime,
    provider: usize,
}

struct World {
    net: FlowNet<Tok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    services: Services,
    targets: Vec<usize>,
    n_blocks: usize,
    next_block: usize,
    client_node: NodeId,
    finished: Option<SimTime>,
}

impl NetWorld for World {
    type Token = Tok;
    fn net_mut(&mut self) -> &mut FlowNet<Tok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: Tok) {
        // Stream hit the datanode: its disk has been absorbing it since the
        // flow started; the ack returns when both network and disk are done.
        let disk_done = self.disks[tok.provider].submit(tok.started, self.c.block_bytes);
        let ack = disk_done.max(sched.now()) + self.c.provider_svc;
        sched.schedule_at(ack, |w: &mut World, s| w.after_data(s));
    }
}

impl World {
    fn new(c: Constants, n_blocks: usize, seed: u64) -> Self {
        let providers = Backend::Hdfs.microbench_storage_nodes();
        // Nodes: 0..P datanodes, node P = the (dedicated, non-colocated)
        // client (§V-D: "we chose to always deploy clients on nodes where
        // no datanode has previously been deployed").
        let net = FlowNet::new(providers + 1, NicSpec::symmetric(c.nic_bps));
        let disks = (0..providers)
            .map(|_| simnet::Disk::new(c.disk_write_bps))
            .collect();
        let mut placer = Placer::new(policy_for(&c, Backend::Hdfs), seed);
        let loads = vec![0u64; providers];
        let targets = (0..n_blocks).map(|_| placer.pick(&loads, &[])).collect();
        let services = Services::new(&c, Backend::Hdfs, 0);
        Self {
            net,
            disks,
            c,
            services,
            targets,
            n_blocks,
            next_block: 0,
            client_node: NodeId::new(providers as u64),
            finished: None,
        }
    }

    /// Starts the next chunk's cycle: pipeline overhead + namenode
    /// allocation, then the bulk transfer.
    fn start_block(&mut self, sched: &mut Scheduler<Self>) {
        if self.next_block == self.n_blocks {
            self.finished = Some(sched.now());
            return;
        }
        let now = sched.now();
        let k = self.next_block as u64;
        // Pipeline overhead, then the namenode block allocation:
        // base + edit-log fsync + O(chunk-count) block-list rewrite.
        let svc = self.c.nn_svc
            + self.c.nn_editlog_fsync
            + SimDuration::from_nanos(self.c.nn_blocklist_per_chunk.as_nanos() * k);
        let t = now + self.c.hdfs_chunk_overhead;
        let flow_at = self.services.central_call(t, svc, self.c.latency);
        sched.schedule_at(flow_at, |w: &mut World, s| {
            let provider = w.targets[w.next_block];
            let tok = Tok {
                started: s.now(),
                provider,
            };
            start_flow(
                w,
                s,
                w.client_node,
                NodeId::new(provider as u64),
                w.c.block_bytes,
                tok,
            );
        });
    }

    /// Data phase done; the chunk is finished (the namenode was charged up
    /// front).
    fn after_data(&mut self, sched: &mut Scheduler<Self>) {
        self.next_block += 1;
        let now = sched.now();
        sched.schedule_at(now, |w: &mut World, s| w.start_block(s));
    }
}

fn hdfs_throughput_des(c: &Constants, n_blocks: usize, seed: u64) -> f64 {
    let mut sim = Sim::new(World::new(c.clone(), n_blocks, seed));
    sim.schedule_in(SimDuration::ZERO, |w: &mut World, s| w.start_block(s));
    let end = sim.run_until_idle();
    assert!(sim.world.finished.is_some(), "writer did not finish");
    let bytes = n_blocks as f64 * c.block_bytes as f64;
    bytes / (1024.0 * 1024.0) / end.as_secs_f64()
}

/// Simulates one single-writer run; returns throughput in MB/s.
pub fn throughput_mbps(c: &Constants, backend: Backend, n_blocks: usize, seed: u64) -> f64 {
    match backend {
        Backend::Bsfs => bsfs_throughput_via_ports(c, n_blocks, seed),
        Backend::Hdfs => hdfs_throughput_des(c, n_blocks, seed),
    }
}

/// Reproduces Fig. 3(a): write throughput vs file size (GB), averaged over
/// the paper's 5 repetitions.
pub fn run(c: &Constants, sizes_gb: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 3(a)",
        "Single writer, single file: write throughput vs file size",
        "file size (GB)",
        "throughput (MB/s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &gb in sizes_gb {
            let n_blocks =
                ((gb * 1024.0 * 1024.0 * 1024.0) / c.block_bytes as f64).round() as usize;
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| throughput_mbps(c, backend, n_blocks, 0xF163A + rep))
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(gb, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's x grid: 1 → 16 GB.
pub fn paper_sizes() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::config::PlacementPolicy;

    #[test]
    fn bsfs_is_faster_and_flat() {
        let c = Constants::default();
        let fig = run(&c, &[1.0, 8.0, 16.0]);
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        for (&(x, h), &(_, b)) in hdfs.points.iter().zip(&bsfs.points) {
            assert!(
                b > h * 1.3,
                "BSFS should lead clearly at {x} GB: bsfs={b:.1} hdfs={h:.1}"
            );
        }
        // BSFS sustains its throughput as the file grows (±10%).
        let (b1, b16) = (bsfs.y_at(1.0).unwrap(), bsfs.y_at(16.0).unwrap());
        assert!(
            (b16 - b1).abs() / b1 < 0.10,
            "BSFS flat: {b1:.1} → {b16:.1}"
        );
        // HDFS declines with file size.
        let (h1, h16) = (hdfs.y_at(1.0).unwrap(), hdfs.y_at(16.0).unwrap());
        assert!(h16 < h1 * 0.93, "HDFS declines: {h1:.1} → {h16:.1}");
    }

    #[test]
    fn absolute_levels_are_in_the_paper_band() {
        // Paper: BSFS ≈ 60–70 MB/s; HDFS ≈ 35–47 MB/s.
        let c = Constants::default();
        let bsfs = throughput_mbps(&c, Backend::Bsfs, 128, 1);
        let hdfs = throughput_mbps(&c, Backend::Hdfs, 128, 1);
        assert!((55.0..75.0).contains(&bsfs), "BSFS at 8 GB: {bsfs:.1}");
        assert!((33.0..50.0).contains(&hdfs), "HDFS at 8 GB: {hdfs:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Constants::default();
        let a = throughput_mbps(&c, Backend::Hdfs, 32, 9);
        let b = throughput_mbps(&c, Backend::Hdfs, 32, 9);
        assert_eq!(a, b);
        let a = throughput_mbps(&c, Backend::Bsfs, 32, 9);
        let b = throughput_mbps(&c, Backend::Bsfs, 32, 9);
        assert_eq!(a, b, "ports-backed BSFS leg is deterministic too");
    }

    #[test]
    fn bsfs_leg_exercises_the_real_metadata_path() {
        // The figure run must leave behind genuine engine state: segment
        // trees in the DHT and a readable BLOB history — proof the trait
        // calls went through the real client, not bespoke glue.
        let c = Constants::default();
        let dep = concurrent::deploy(&c, 16, 17, PlacementPolicy::RoundRobin, 3, 256);
        let client = dep.sys.client(blobseer_types::NodeId::new(16));
        let blob = client.create();
        for _ in 0..8 {
            client.append(blob, &vec![9u8; 256]).unwrap();
        }
        assert_eq!(client.history(blob).unwrap().len(), 8);
        assert!(dep.sys.dht().node_count() > 8, "tree nodes were published");
        let data = client.read(blob, None, 0, 8 * 256).unwrap();
        assert!(data.iter().all(|&b| b == 9));
    }
}
