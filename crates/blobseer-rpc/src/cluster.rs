//! [`LoopbackCluster`]: an N-process-shaped BlobSeer deployment over real
//! loopback sockets.
//!
//! Boots the paper's service decomposition as separate server thread
//! groups — one listener per data provider, one for the metadata DHT, one
//! for the version manager — and wires client deployments to them through
//! the RPC adapters. Every `BlobClient` obtained from such a deployment
//! drives the *unchanged* protocol of `blobseer_core::client` end to end
//! over TCP: data phase, version assignment, metadata publish, commit,
//! reads, GC.
//!
//! Two pieces of a full deployment intentionally stay client-side, as
//! they do in the in-memory adapters:
//!
//! * the **provider manager** (placement + load accounting) — a separate
//!   service in the paper, but not yet behind a port trait; each client
//!   deployment runs its own; and
//! * the **GC refcount tracker**, which `BlobSeer` owns per deployment.
//!   GC *effects* (DHT deletes, block deletes) do cross the wire.

use crate::client::{RpcBlockStore, RpcMetaStore, RpcVersionService};
use crate::server::{InFlight, RpcServer, RpcService};
use blobseer_core::block_store::ProviderSet;
use blobseer_core::dht::MetaDht;
use blobseer_core::ports::{BlockStore, MetaStore};
use blobseer_core::provider_manager::ProviderManager;
use blobseer_core::version_manager::VersionManager;
use blobseer_core::{
    BlobSeer, CachedBlockStore, CachedMetaStore, EnginePorts, EngineStats, NoopObserver,
};
use blobseer_disk::frame::FrameLog;
use blobseer_disk::volume::volume_path;
use blobseer_disk::{DiskMetaStore, DiskProviderSet, DiskVolume, DurableVersionService};
use blobseer_types::{BlobSeerConfig, Error, NodeId, Result};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A booted loopback cluster: the server processes of Fig. 2, each behind
/// its own TCP listener. Dropping the cluster shuts every server down and
/// joins its threads; client deployments outliving the cluster observe
/// [`Error::Transport`] on their next call.
pub struct LoopbackCluster {
    cfg: BlobSeerConfig,
    pm_seed: u64,
    servers: Vec<RpcServer>,
    block_addrs: Vec<SocketAddr>,
    meta_addr: SocketAddr,
    vm_addr: SocketAddr,
    server_stats: Arc<EngineStats>,
    /// Cluster-wide in-flight request tracker shared by every server.
    in_flight: Arc<InFlight>,
    /// Client deployments wired so far — each gets a disjoint block-id
    /// range (see [`Self::deploy`]).
    deployments: AtomicU64,
    /// Disk-backed clusters persist the deployment count (one frame per
    /// deployment) so a rebooted cluster keeps handing out disjoint
    /// block-id ranges; `None` for RAM-backed clusters.
    deploy_log: Option<Mutex<FrameLog>>,
}

/// Block-id range width reserved per client deployment: ~10^12 blocks
/// each, with room for 2^24 deployments.
const BLOCK_ID_RANGE: u64 = 1 << 40;

impl LoopbackCluster {
    /// Boots `n_providers` single-provider block servers (provider `i`
    /// hosted on node `i`), one metadata-DHT server and one
    /// version-manager server, all on loopback ephemeral ports.
    pub fn boot(cfg: BlobSeerConfig, n_providers: usize) -> Result<Self> {
        Self::boot_seeded(cfg, n_providers, 0x5EED_0001)
    }

    /// [`Self::boot`] with an explicit provider-manager seed for the
    /// client deployments.
    pub fn boot_seeded(cfg: BlobSeerConfig, n_providers: usize, pm_seed: u64) -> Result<Self> {
        assert!(n_providers > 0, "need at least one data provider");
        // Worker-pool shape from the deployment config: N dispatcher
        // threads over a bounded queue per server.
        let workers = cfg.rpc_server_workers;
        let queue = cfg.rpc_server_queue_depth;
        // One tracker across all servers: its high watermark observes
        // requests overlapping *anywhere* in the cluster, which is what
        // client-side fan-out produces and a serial client cannot.
        let in_flight = Arc::new(InFlight::new());
        let spawn = {
            let in_flight = Arc::clone(&in_flight);
            move |svc: RpcService| {
                RpcServer::spawn_tracked(svc, workers, queue, Arc::clone(&in_flight))
                    .map_err(|e| Error::Transport(format!("spawn loopback server: {e}")))
            }
        };
        let mut servers = Vec::with_capacity(n_providers + 2);
        let mut block_addrs = Vec::with_capacity(n_providers);
        // Backend selection: `data_dir = None` hosts the in-memory
        // adapters (state dies with the cluster); `Some(dir)` hosts the
        // append-only disk stores of `blobseer-disk`, so booting again
        // with the same directory resumes exactly where the previous
        // cluster stopped. Same wire protocol, same client code, either
        // way. Note the disk metadata store keeps a single durable copy
        // per node — `metadata_replication` is an in-memory concern (its
        // durability comes from shard record logs, not replica shards).
        let server_stats = Arc::new(EngineStats::new());
        for i in 0..n_providers {
            let node = NodeId::new(i as u64);
            let set: Arc<dyn BlockStore> = match &cfg.data_dir {
                None => Arc::new(ProviderSet::new(1, |_| node)),
                Some(dir) => Arc::new(DiskProviderSet::from_volumes(vec![DiskVolume::open(
                    volume_path(&dir.join("block"), i),
                    node,
                )?])),
            };
            let server = spawn(RpcService::Block(set))?;
            block_addrs.push(server.addr());
            servers.push(server);
        }
        let dht: Arc<dyn MetaStore> = match &cfg.data_dir {
            None => Arc::new(MetaDht::new(
                cfg.metadata_providers,
                cfg.metadata_replication,
            )),
            Some(dir) => Arc::new(DiskMetaStore::open(
                dir.join("meta"),
                cfg.metadata_providers,
            )?),
        };
        let meta_server = spawn(RpcService::Meta(dht))?;
        let meta_addr = meta_server.addr();
        servers.push(meta_server);
        let vm: Arc<dyn blobseer_core::ports::VersionService> = match &cfg.data_dir {
            None => Arc::new(VersionManager::new(
                cfg.block_size,
                Arc::clone(&server_stats),
            )),
            Some(dir) => Arc::new(DurableVersionService::open(
                dir.join("version.log"),
                cfg.block_size,
            )?),
        };
        let vm_server = spawn(RpcService::Version(vm))?;
        let vm_addr = vm_server.addr();
        servers.push(vm_server);
        // Resume the deployment counter from the persisted log: every
        // past deployment claimed a block-id range, so a rebooted cluster
        // must start allocating above all of them.
        let (deployments, deploy_log) = match &cfg.data_dir {
            None => (0, None),
            Some(dir) => {
                let mut past = 0u64;
                let log = FrameLog::open_with(dir.join("deployments.log"), |_, _| {
                    past += 1;
                    Ok(())
                })?;
                (past, Some(Mutex::named(log, "cluster.deployments_log")))
            }
        };
        Ok(Self {
            cfg,
            pm_seed,
            servers,
            block_addrs,
            meta_addr,
            vm_addr,
            server_stats,
            in_flight,
            deployments: AtomicU64::new(deployments),
            deploy_log,
        })
    }

    /// Wires a fresh client deployment to the cluster: RPC adapters for
    /// all three ports behind the unchanged [`BlobSeer::deploy_ports`].
    /// Call it once per simulated client process.
    ///
    /// Each deployment runs its own (client-side) provider manager against
    /// the *shared* remote providers, so each receives a disjoint block-id
    /// range — colliding ids from two deployments would trip the
    /// providers' immutable-put check. Blob ids come from the shared
    /// version-manager server, so blobs written through one deployment are
    /// readable through any other.
    pub fn deploy(&self) -> Result<Arc<BlobSeer>> {
        let idx = self.deployments.fetch_add(1, Ordering::Relaxed);
        if let Some(log) = &self.deploy_log {
            // One frame per deployment, ever: the frame count is the next
            // deployment index after a reboot (the payload is only for
            // humans reading the log).
            let mut w = blobseer_types::wire::WireWriter::new();
            w.put_u64(idx);
            log.lock().append(&w.into_vec())?;
        }
        // The adapters account their round trips (`port_round_trips`) and
        // vectored items (`batched_items`) on this deployment's stats.
        let stats = Arc::new(EngineStats::new());
        let budget = self.cfg.rpc_client_connections;
        let mut providers: Arc<dyn BlockStore> = Arc::new(RpcBlockStore::connect_with(
            &self.block_addrs,
            Arc::clone(&stats),
            budget,
        )?);
        let mut dht: Arc<dyn MetaStore> = Arc::new(RpcMetaStore::connect_with(
            self.meta_addr,
            Arc::clone(&stats),
            budget,
        )?);
        // Opt-in hot-read cache tier: LRU decorators over both read-path
        // ports, safe because revealed blocks and published tree nodes
        // are immutable. `read_cache_bytes == 0` (the default, and the
        // figure-reproduction setting) leaves the wire paths untouched.
        if self.cfg.read_cache_bytes > 0 {
            providers = Arc::new(CachedBlockStore::new(
                providers,
                self.cfg.read_cache_bytes,
                Arc::clone(&stats),
            ));
            dht = Arc::new(CachedMetaStore::new(
                dht,
                self.cfg.read_cache_bytes,
                Arc::clone(&stats),
            ));
        }
        let ports = EnginePorts {
            providers,
            dht,
            vm: Arc::new(RpcVersionService::connect_with(
                self.vm_addr,
                Arc::clone(&stats),
                budget,
            )?),
            pm: Arc::new(ProviderManager::with_block_base(
                self.block_addrs.len(),
                self.cfg.placement,
                self.pm_seed,
                1 + idx * BLOCK_ID_RANGE,
            )),
            stats,
            observer: Arc::new(NoopObserver),
        };
        Ok(BlobSeer::deploy_ports(self.cfg.clone(), ports))
    }

    /// The deployment configuration the cluster was booted with.
    pub fn config(&self) -> &BlobSeerConfig {
        &self.cfg
    }

    /// Number of server processes (listeners): one per provider, plus the
    /// DHT, plus the version manager.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total request frames served across every server of the cluster —
    /// the server-side view of the round trips the client adapters count
    /// in their deployment's `port_round_trips`.
    pub fn frames_served(&self) -> u64 {
        self.servers.iter().map(|s| s.frames_served()).sum()
    }

    /// Total TCP connections accepted across every server of the cluster.
    /// With muxed clients this is bounded by `deployments × endpoints ×
    /// rpc_client_connections` no matter how many requests are in flight
    /// — the mux tests assert on it.
    pub fn connections_accepted(&self) -> u64 {
        self.servers.iter().map(|s| s.connections_accepted()).sum()
    }

    /// Highest number of simultaneously in-flight requests ever observed
    /// across the whole cluster — the structural proof of client-side
    /// fan-out. A deployment with `client_io_threads = Some(1)` can never
    /// push this above 1 per client thread; the fan-out executor can.
    pub fn in_flight_high_watermark(&self) -> u64 {
        self.in_flight.high_watermark()
    }

    /// Addresses of the per-provider block services.
    pub fn block_addrs(&self) -> &[SocketAddr] {
        &self.block_addrs
    }

    /// Address of the metadata-DHT service.
    pub fn meta_addr(&self) -> SocketAddr {
        self.meta_addr
    }

    /// Address of the version-manager service.
    pub fn vm_addr(&self) -> SocketAddr {
        self.vm_addr
    }

    /// Server-side engine counters (the hosted version manager's, e.g.
    /// `versions_assigned`). Client-side counters live on each
    /// deployment's own [`BlobSeer::stats`].
    pub fn server_stats(&self) -> &Arc<EngineStats> {
        &self.server_stats
    }

    /// Shuts every server down and joins its threads. Also runs on drop.
    pub fn shutdown(&mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
