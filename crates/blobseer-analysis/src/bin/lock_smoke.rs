//! CI smoke for the shim's deadlock detector: force-enables lock
//! checking, acquires two named locks in one order and then in the
//! opposite order, and exits 0 **only if the detector panicked**. A
//! silently green run here would mean the `static-analysis` CI job can no
//! longer fail on a real lock-order inversion.

use parking_lot::{check, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

fn main() -> ExitCode {
    check::force_enable();
    let a = Mutex::named(0u32, "smoke.a");
    let b = Mutex::named(0u32, "smoke.b");
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Keep the detector's panic message off stderr: it is the expected
    // outcome, not a failure.
    std::panic::set_hook(Box::new(|_| {}));
    let inverted = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }));
    let _ = std::panic::take_hook();
    match inverted {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            if msg.contains("lock-order cycle detected") {
                println!("lock_smoke: OK — inversion caught:");
                println!(
                    "  {}",
                    msg.lines().next().unwrap_or("lock-order cycle detected")
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("lock_smoke: panicked, but not with a cycle report: {msg}");
                ExitCode::FAILURE
            }
        }
        Ok(()) => {
            eprintln!("lock_smoke: FAILED — inverted acquisition was not detected");
            ExitCode::FAILURE
        }
    }
}
