//! Integration tests spanning the whole stack: storage engines, file
//! systems, Map/Reduce, and the experiment models must agree with each
//! other.

use blobseer_core::meta::key::BlockRange;
use blobseer_core::meta::log::LogEntry;
use blobseer_core::meta::shape;
use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, HdfsConfig, NodeId, Version};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};
use hdfs_sim::HdfsCluster;
use mapreduce::apps::WordCount;
use mapreduce::{JobTracker, TaskTracker, TextGen};
use std::sync::Arc;

const BLOCK: u64 = 4096;

/// The shape arithmetic the figure-scale simulator uses must match the
/// exact number of metadata nodes the live engine writes — the "shared
/// protocol logic" guarantee of DESIGN.md §3.1.
#[test]
fn shape_math_matches_live_engine_node_counts() {
    let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 8);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();

    // A history with appends, overwrites, growth and holes.
    let script: Vec<(u64, u64)> = vec![
        (0, 4 * BLOCK),          // v1: initial 4 blocks
        (0, 2 * BLOCK),          // v2: overwrite front
        (4 * BLOCK, BLOCK),      // v3: append (grows 4 → 8)
        (10 * BLOCK, 2 * BLOCK), // v4: far write (hole + growth to 16)
        (3 * BLOCK, 5 * BLOCK),  // v5: wide middle overwrite
    ];
    let mut cap_before = 0u64;
    let mut size = 0u64;
    for (i, &(offset, len)) in script.iter().enumerate() {
        let before = sys.stats().snapshot().meta_nodes_written;
        client
            .write(blob, offset, &vec![i as u8 + 1; len as usize])
            .unwrap();
        let actual = sys.stats().snapshot().meta_nodes_written - before;

        size = size.max(offset + len);
        let cap_after = size.div_ceil(BLOCK).next_power_of_two();
        let entry = LogEntry {
            version: Version::new(i as u64 + 1),
            blocks: BlockRange::of_bytes(offset, len, BLOCK),
            cap_before,
            cap_after,
            size_after: size,
        };
        assert_eq!(
            actual,
            shape::nodes_created(&entry),
            "live vs shape mismatch at step {i} {entry:?}"
        );
        cap_before = cap_after;
    }
}

/// The shape read-visit arithmetic matches the live descent's DHT gets.
#[test]
fn shape_math_matches_live_read_visits() {
    let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 8);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client
        .write(blob, 0, &vec![1u8; (16 * BLOCK) as usize])
        .unwrap();
    for (offset, len) in [(0u64, BLOCK), (5 * BLOCK, 3 * BLOCK), (0, 16 * BLOCK)] {
        let before = sys.stats().snapshot().meta_nodes_read;
        client.read(blob, None, offset, len).unwrap();
        let actual = sys.stats().snapshot().meta_nodes_read - before;
        let expected = shape::nodes_visited(16, BlockRange::of_bytes(offset, len, BLOCK));
        assert_eq!(
            actual, expected,
            "read visit mismatch for [{offset}, +{len})"
        );
    }
}

/// Identical workloads through both FileSystem backends produce identical
/// bytes — the substitution property the paper's methodology rests on.
#[test]
fn backends_agree_byte_for_byte() {
    let bsfs_sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 6);
    let bsfs = BsfsCluster::new(bsfs_sys);
    let hdfs = HdfsCluster::new(HdfsConfig::small_for_tests().with_chunk_size(BLOCK), 6);
    let b = bsfs.mount(NodeId::new(0));
    let h = hdfs.mount(NodeId::new(0));

    let payload = TextGen::new(77).text(5 * BLOCK as usize + 321);
    for fs in [&b as &dyn FileSystem, &h as &dyn FileSystem] {
        fs.mkdirs("/a/b").unwrap();
        write_file(fs, "/a/b/data", &payload).unwrap();
        fs.rename("/a/b/data", "/a/data").unwrap();
    }
    assert_eq!(
        read_fully(&b, "/a/data").unwrap(),
        read_fully(&h, "/a/data").unwrap()
    );
    assert_eq!(
        b.status("/a/data").unwrap().len,
        h.status("/a/data").unwrap().len
    );
    // Block location tiling agrees structurally (offsets and lengths).
    let bl = b.block_locations("/a/data", 0, u64::MAX).unwrap();
    let hl = h.block_locations("/a/data", 0, u64::MAX).unwrap();
    assert_eq!(bl.len(), hl.len());
    for (x, y) in bl.iter().zip(&hl) {
        assert_eq!((x.offset, x.length), (y.offset, y.length));
    }
}

/// A full WordCount runs on both backends with identical results, while
/// HDFS serves strictly more centralized-metadata RPCs than BSFS's
/// namespace manager (the decentralization claim, §IV-A).
#[test]
fn wordcount_parity_and_metadata_centralization() {
    let nodes = 4usize;
    let bsfs_sys = BlobSeer::deploy(
        BlobSeerConfig::small_for_tests().with_block_size(BLOCK),
        nodes,
    );
    let bsfs = BsfsCluster::new(bsfs_sys);
    let hdfs = HdfsCluster::new(HdfsConfig::small_for_tests().with_chunk_size(BLOCK), nodes);

    let data = TextGen::new(3).text(4 * BLOCK as usize);
    let mut outputs = Vec::new();
    let mut central_ops = Vec::new();

    {
        let jt = JobTracker::new(
            (0..nodes)
                .map(|i| {
                    TaskTracker::new(
                        NodeId::new(i as u64),
                        Box::new(bsfs.mount(NodeId::new(i as u64))),
                    )
                })
                .collect(),
        );
        let fs = bsfs.mount(NodeId::new(0));
        write_file(&fs, "/in.txt", &data).unwrap();
        jt.run_job(
            &WordCount::job("/in.txt", "/out", 2),
            &WordCount,
            &WordCount,
        )
        .unwrap();
        let mut all = Vec::new();
        for r in 0..2 {
            all.extend(read_fully(&fs, &format!("/out/part-r-{r:05}")).unwrap());
        }
        outputs.push(all);
        central_ops.push(bsfs.namespace().op_count());
    }
    {
        let jt = JobTracker::new(
            (0..nodes)
                .map(|i| {
                    TaskTracker::new(
                        NodeId::new(i as u64),
                        Box::new(hdfs.mount(NodeId::new(i as u64))),
                    )
                })
                .collect(),
        );
        let fs = hdfs.mount(NodeId::new(0));
        write_file(&fs, "/in.txt", &data).unwrap();
        jt.run_job(
            &WordCount::job("/in.txt", "/out", 2),
            &WordCount,
            &WordCount,
        )
        .unwrap();
        let mut all = Vec::new();
        for r in 0..2 {
            all.extend(read_fully(&fs, &format!("/out/part-r-{r:05}")).unwrap());
        }
        outputs.push(all);
        central_ops.push(hdfs.namenode().op_count());
    }
    // Same input → same sorted word counts, regardless of backend.
    let parse = |bytes: &[u8]| {
        let mut v: Vec<String> = String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        v.sort();
        v
    };
    assert_eq!(parse(&outputs[0]), parse(&outputs[1]));
    // BSFS's centralized namespace sees far fewer calls than HDFS's
    // namenode, which also mediates every chunk allocation.
    assert!(
        central_ops[1] > central_ops[0],
        "namenode ops {} should exceed namespace-manager ops {}",
        central_ops[1],
        central_ops[0]
    );
}

/// Versioned reads through the BSFS layer: a reader opened before an
/// overwrite keeps its snapshot while new readers see new data — and the
/// old version remains explicitly addressable.
#[test]
fn bsfs_exposes_blobseer_versioning() {
    let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 4);
    let cluster = BsfsCluster::new(sys);
    let fs = cluster.mount(NodeId::new(0));
    write_file(&fs, "/f", &vec![1u8; BLOCK as usize]).unwrap();
    let mut pinned = fs.open("/f").unwrap();
    // Append more data through a second handle.
    let mut out = fs.append("/f").unwrap();
    out.write(&vec![2u8; BLOCK as usize]).unwrap();
    out.close().unwrap();
    // The pinned reader still sees only the original block.
    assert_eq!(pinned.len(), BLOCK);
    let mut buf = vec![0u8; BLOCK as usize];
    pinned.read_exact(&mut buf).unwrap();
    assert!(buf.iter().all(|&x| x == 1));
    // A fresh reader sees both.
    assert_eq!(fs.status("/f").unwrap().len, 2 * BLOCK);
    // And the explicit version API reaches the past.
    let mut old = fs.open_version("/f", Version::new(1)).unwrap();
    assert_eq!(old.len(), BLOCK);
    old.read_exact(&mut buf).unwrap();
    assert!(buf.iter().all(|&x| x == 1));
}

/// Deleting files through BSFS reclaims provider storage even with
/// replication enabled.
#[test]
fn delete_reclaims_replicated_storage() {
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_replication(2);
    let sys = BlobSeer::deploy(cfg, 4);
    let cluster = BsfsCluster::new(Arc::clone(&sys));
    let fs = cluster.mount(NodeId::new(0));
    write_file(&fs, "/r", &vec![5u8; (3 * BLOCK) as usize]).unwrap();
    let stored: u64 = sys.providers().total_bytes_stored();
    assert_eq!(stored, 2 * 3 * BLOCK, "two replicas of three blocks");
    fs.delete("/r", false).unwrap();
    let stored: u64 = sys.providers().total_bytes_stored();
    assert_eq!(stored, 0);
    assert_eq!(sys.dht().node_count(), 0, "metadata fully reclaimed too");
}
