//! Live-engine I/O benchmarks: the paper's three microbenchmark access
//! patterns (§V-C) executed for real — real bytes, real threads — at
//! laptop scale (256 KB blocks instead of 64 MB). The comparative *shapes*
//! (BSFS concurrency vs HDFS serialization) are visible even at this
//! scale; absolute figure-scale numbers come from the `fig*` binaries.

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, HdfsConfig, NodeId};
use bsfs::BsfsCluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfs::api::FileSystem;
use dfs::util::write_file;
use hdfs_sim::HdfsCluster;
use std::hint::black_box;
use std::sync::Arc;

const BLOCK: u64 = 256 * 1024;
const PROVIDERS: usize = 8;

fn bsfs() -> Arc<BsfsCluster> {
    let sys = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(BLOCK)
            .with_metadata_providers(4),
        PROVIDERS,
    );
    BsfsCluster::new(sys)
}

fn hdfs() -> Arc<HdfsCluster> {
    HdfsCluster::new(HdfsConfig::default().with_chunk_size(BLOCK), PROVIDERS)
}

/// Scenario 1 (§V-D): a single writer streaming a multi-block file.
fn bench_single_writer(c: &mut Criterion) {
    let data = vec![0xABu8; (8 * BLOCK) as usize];
    let mut g = c.benchmark_group("live_io/single_writer_8_blocks");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("bsfs", |b| {
        let cl = bsfs();
        let fs = cl.mount(NodeId::new(100));
        let mut i = 0;
        b.iter(|| {
            i += 1;
            write_file(&fs, &format!("/w{i}"), &data).unwrap();
        });
    });
    g.bench_function("hdfs", |b| {
        let cl = hdfs();
        let fs = cl.mount(NodeId::new(100));
        let mut i = 0;
        b.iter(|| {
            i += 1;
            write_file(&fs, &format!("/w{i}"), &data).unwrap();
        });
    });
    g.finish();
}

/// Scenario 2 (§V-E): concurrent readers of a shared file, 4 KB records.
fn bench_concurrent_readers(c: &mut Criterion) {
    let mut g = c.benchmark_group("live_io/concurrent_readers_shared_file");
    g.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        let data: Vec<u8> = (0..(threads as u64 * BLOCK)).map(|i| i as u8).collect();
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("bsfs", threads),
            &threads,
            |b, &threads| {
                let cl = bsfs();
                write_file(&cl.mount(NodeId::new(100)), "/shared", &data).unwrap();
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let fs = cl.mount(NodeId::new(t as u64));
                            std::thread::spawn(move || {
                                let mut input = fs.open("/shared").unwrap();
                                input.seek(t as u64 * BLOCK).unwrap();
                                let mut buf = vec![0u8; 4096];
                                for _ in 0..(BLOCK / 4096) {
                                    input.read_exact(&mut buf).unwrap();
                                }
                                black_box(buf[0])
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("hdfs", threads),
            &threads,
            |b, &threads| {
                let cl = hdfs();
                write_file(&cl.mount(NodeId::new(100)), "/shared", &data).unwrap();
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let fs = cl.mount(NodeId::new(t as u64));
                            std::thread::spawn(move || {
                                let mut input = fs.open("/shared").unwrap();
                                input.seek(t as u64 * BLOCK).unwrap();
                                let mut buf = vec![0u8; 4096];
                                for _ in 0..(BLOCK / 4096) {
                                    input.read_exact(&mut buf).unwrap();
                                }
                                black_box(buf[0])
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

/// Scenario 3 (§V-F): concurrent appenders to one file — BSFS only, by
/// design: the HDFS baseline refuses the operation.
fn bench_concurrent_appenders(c: &mut Criterion) {
    let mut g = c.benchmark_group("live_io/concurrent_appenders_shared_file");
    g.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        g.throughput(Throughput::Bytes(threads as u64 * BLOCK));
        g.bench_with_input(
            BenchmarkId::new("bsfs", threads),
            &threads,
            |b, &threads| {
                let cl = bsfs();
                let payload = Arc::new(vec![7u8; BLOCK as usize]);
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    let path = format!("/log{round}");
                    write_file(&cl.mount(NodeId::new(100)), &path, b"seed").unwrap();
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let fs = cl.mount(NodeId::new(t as u64));
                            let payload = Arc::clone(&payload);
                            let path = path.clone();
                            std::thread::spawn(move || {
                                let mut out = fs.append(&path).unwrap();
                                out.write(&payload).unwrap();
                                out.close().unwrap();
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

/// Version GC throughput: reclaiming 32 superseded snapshots.
fn bench_gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("live_io/gc_32_versions");
    g.sample_size(10);
    g.bench_function("bsfs", |b| {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::default()
                .with_block_size(4096)
                .with_metadata_providers(4),
            4,
        );
        let client = sys.client(NodeId::new(0));
        b.iter(|| {
            let blob = client.create();
            for i in 0..32u64 {
                client
                    .write(blob, (i % 4) * 4096, &[i as u8; 4096])
                    .unwrap();
            }
            let report = client
                .gc_before(blob, blobseer_types::Version::new(32))
                .unwrap();
            black_box(report.nodes_deleted)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_writer,
    bench_concurrent_readers,
    bench_concurrent_appenders,
    bench_gc
);
criterion_main!(benches);
