//! A serialized RPC server: single FIFO queue, per-request service time.
//!
//! Models the centralized entities whose serialization the paper singles
//! out: HDFS's namenode ("a centralized namenode is responsible to maintain
//! both chunk layout and directory structure metadata", §II-B) and
//! BlobSeer's version manager ("the assignment of versions is the only step
//! in the writing process where concurrent requests are serialized",
//! §III-A.4). Under N concurrent clients the queueing delay of this server
//! is what bends the scaling curves.

use crate::time::{SimDuration, SimTime};

/// A single-threaded server processing requests FIFO.
#[derive(Clone, Debug)]
pub struct FifoServer {
    service_time: SimDuration,
    busy_until: SimTime,
    served: u64,
    total_queue_delay: SimDuration,
}

impl FifoServer {
    /// A server taking `service_time` per request.
    pub fn new(service_time: SimDuration) -> Self {
        Self {
            service_time,
            busy_until: SimTime::ZERO,
            served: 0,
            total_queue_delay: SimDuration::ZERO,
        }
    }

    /// Enqueues one request at `now` with the default service time; returns
    /// the completion instant.
    pub fn submit(&mut self, now: SimTime) -> SimTime {
        self.submit_with(now, self.service_time)
    }

    /// Enqueues one request at `now` with an explicit service time; returns
    /// the completion instant.
    pub fn submit_with(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.total_queue_delay += start - now;
        self.busy_until = start + service;
        self.served += 1;
        self.busy_until
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay (excludes service) across all requests so far.
    pub fn mean_queue_delay(&self) -> SimDuration {
        match self.total_queue_delay.as_nanos().checked_div(self.served) {
            Some(mean) => SimDuration::from_nanos(mean),
            None => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_serialize() {
        let mut s = FifoServer::new(SimDuration::from_millis(10));
        let a = s.submit(SimTime::ZERO);
        let b = s.submit(SimTime::ZERO);
        let c = s.submit(SimTime::ZERO);
        assert_eq!(a.as_millis(), 10);
        assert_eq!(b.as_millis(), 20);
        assert_eq!(c.as_millis(), 30);
        assert_eq!(s.served(), 3);
        // Queue delays: 0, 10, 20 → mean 10 ms.
        assert_eq!(s.mean_queue_delay().as_millis(), 10);
    }

    #[test]
    fn idle_server_has_no_queueing() {
        let mut s = FifoServer::new(SimDuration::from_millis(10));
        s.submit(SimTime::ZERO);
        let b = s.submit(SimTime::from_nanos(50_000_000));
        assert_eq!(b.as_millis(), 60);
        assert_eq!(s.mean_queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn explicit_service_time() {
        let mut s = FifoServer::new(SimDuration::from_millis(1));
        let t = s.submit_with(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(t.as_millis(), 2000);
    }
}
