//! Minimal, API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no access to a crates.io registry,
//! so the workspace vendors the thin slice of the API it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with *non-poisoning* guards
//! (`lock()`/`read()`/`write()` return guards directly, not `Result`s).
//!
//! Poisoning is deliberately swallowed (`unwrap_or_else(PoisonError::into_inner)`)
//! to match parking_lot semantics: a panicking thread does not wedge every
//! other thread, which the fault-tolerance tests rely on.
//!
//! On top of the vanilla API the shim carries two extensions:
//!
//! * **lock-order / deadlock checking** (see [`check`]): locks constructed
//!   with [`Mutex::named`] / [`Mutex::ranked`] (and the `RwLock`
//!   equivalents) declare their place in the repo's lock hierarchy, and
//!   with `BLOBSEER_LOCK_CHECK=1` (or `--cfg lock_check`, or
//!   [`check::force_enable`]) every blocking acquisition is validated
//!   against a global lock-order graph — cycles, re-entrant acquisition
//!   and condvar-waits-while-holding-a-second-lock panic at the
//!   acquisition site instead of deadlocking. Disabled, each hook is a
//!   single relaxed atomic load.
//! * **contention counters** (always on, see [`lock_stats`]): acquisitions
//!   that fail the initial `try_lock` fast path and have to block bump a
//!   process-wide counter and a max-wait-time gauge, surfaced by the
//!   engine's `EngineStats`.
//!
//! This crate is the only one in the workspace allowed `unsafe`: the
//! single exception is `take_guard`, which bridges std's by-value
//! condvar-guard API to parking_lot's `&mut guard` API.

#![deny(unsafe_code)]

pub mod check;

use check::{HoldKind, LockMeta};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Contention counters (always on; fed only by the contended slow path).
// ---------------------------------------------------------------------------

static CONTENDED_ACQUIRES: AtomicU64 = AtomicU64::new(0);
static MAX_WAIT_NS: AtomicU64 = AtomicU64::new(0);

/// Process-wide lock-contention counters. Cheap to read; reset never.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Acquisitions (mutex lock, rwlock read/write) that found the lock
    /// held and had to block.
    pub contended_acquires: u64,
    /// Longest time any single acquisition spent blocked, in nanoseconds.
    pub max_wait_ns: u64,
}

/// Snapshot of the process-wide [`LockStats`].
pub fn lock_stats() -> LockStats {
    LockStats {
        contended_acquires: CONTENDED_ACQUIRES.load(Ordering::Relaxed),
        max_wait_ns: MAX_WAIT_NS.load(Ordering::Relaxed),
    }
}

/// Runs the blocking acquisition `acquire`, accounting the wait.
fn contended<G>(acquire: impl FnOnce() -> G) -> G {
    let start = Instant::now();
    let guard = acquire();
    let waited = start.elapsed().as_nanos() as u64;
    CONTENDED_ACQUIRES.fetch_add(1, Ordering::Relaxed);
    MAX_WAIT_NS.fetch_max(waited, Ordering::Relaxed);
    guard
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    meta: &'a LockMeta,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            meta: LockMeta::unnamed(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A mutex with a declared place in the lock hierarchy (rank 0). See
    /// [`check`] for what the name buys under lock checking.
    pub const fn named(value: T, name: &'static str) -> Self {
        Self::ranked(value, name, 0)
    }

    /// A named mutex with an explicit rank: instances sharing a name form
    /// a family that must be acquired in ascending rank order and never
    /// two-at-a-rank (e.g. striped locks ranked by stripe index).
    pub const fn ranked(value: T, name: &'static str, rank: u32) -> Self {
        Self {
            meta: LockMeta::named(name, rank),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        check::before_blocking_acquire(&self.meta, HoldKind::Mutex);
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                contended(|| self.inner.lock().unwrap_or_else(PoisonError::into_inner))
            }
        };
        MutexGuard {
            meta: &self.meta,
            inner,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        check::on_try_acquire(&self.meta, HoldKind::Mutex);
        Some(MutexGuard {
            meta: &self.meta,
            inner,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Pop the held record; the `inner` field's own drop then releases
        // the lock.
        check::on_release(self.meta);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    meta: &'a LockMeta,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    meta: &'a LockMeta,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            meta: LockMeta::unnamed(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// A reader-writer lock with a declared place in the lock hierarchy
    /// (rank 0). See [`check`].
    pub const fn named(value: T, name: &'static str) -> Self {
        Self::ranked(value, name, 0)
    }

    /// A named lock with an explicit rank; see [`Mutex::ranked`].
    pub const fn ranked(value: T, name: &'static str, rank: u32) -> Self {
        Self {
            meta: LockMeta::named(name, rank),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        check::before_blocking_acquire(&self.meta, HoldKind::Read);
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                contended(|| self.inner.read().unwrap_or_else(PoisonError::into_inner))
            }
        };
        RwLockReadGuard {
            meta: &self.meta,
            inner,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        check::before_blocking_acquire(&self.meta, HoldKind::Write);
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                contended(|| self.inner.write().unwrap_or_else(PoisonError::into_inner))
            }
        };
        RwLockWriteGuard {
            meta: &self.meta,
            inner,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        check::on_release(self.meta);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        check::on_release(self.meta);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`Mutex`].
pub struct Condvar {
    name: Option<&'static str>,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            name: None,
            inner: std::sync::Condvar::new(),
        }
    }

    /// A condvar with a name used in lock-check diagnostics.
    pub const fn named(name: &'static str) -> Self {
        Self {
            name: Some(name),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified. Mirrors parking_lot's in-place guard API.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let token = check::before_condvar_wait(guard.meta, self.name);
        take_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
        check::after_condvar_wait(token);
    }

    /// Blocks until notified or `deadline` passes. A deadline already in
    /// the past reports a timeout immediately, without parking (callers
    /// poll with zero timeouts; parking would cost them a syscall round
    /// per poll).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        let timeout = deadline - now;
        let token = check::before_condvar_wait(guard.meta, self.name);
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        check::after_condvar_wait(token);
        WaitTimeoutResult(timed_out)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the owned guard behind `&mut`, restoring the returned guard.
///
/// std's condvar consumes the guard by value while parking_lot takes
/// `&mut guard`; bridging the two requires a brief move out of the slot.
/// This is the workspace's single `unsafe` exception (see ANALYSIS.md).
#[allow(unsafe_code)]
fn take_guard<'a, T>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid, initialized guard. We move it out, pass it
    // through `f` (which returns a guard for the same mutex), and write the
    // result back before anyone can observe the hole. Should `f` ever
    // unwind, the caller would drop the bitwise-duplicated guard a second
    // time, so the bomb turns that path into an abort instead of UB.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let owned = std::ptr::read(slot);
        let back = f(owned);
        std::ptr::write(slot, back);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wait_until_expired_deadline_returns_without_parking() {
        // The satellite fix: a deadline already in the past must not park
        // for a syscall round — and, notably, must not run the
        // wait-while-holding check (pollers with zero timeouts legally
        // hold outer locks; they never actually park).
        check::force_enable();
        let outer = Mutex::named((), "shimtest.expired.outer");
        let m = Mutex::named(false, "shimtest.expired.inner");
        let cv = Condvar::new();
        let _o = outer.lock();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(5));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn contended_acquire_is_counted() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            *m2.lock() += 1; // blocks until the main thread releases
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(g);
        t.join().unwrap();
        let stats = lock_stats();
        assert!(stats.contended_acquires >= 1);
        assert!(stats.max_wait_ns > 0);
    }

    // --- detector tests -------------------------------------------------
    //
    // All detector tests run in one process; `force_enable` is sticky and
    // the lock-order graph is global, so each test uses lock names unique
    // to itself to keep the graph slices independent.

    #[test]
    fn blessed_order_passes() {
        check::force_enable();
        let a = Mutex::named(1, "shimtest.ok.a");
        let b = Mutex::named(2, "shimtest.ok.b");
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(check::graph_edges()
            .contains(&("`shimtest.ok.a`".to_string(), "`shimtest.ok.b`".to_string())));
        assert!(check::registered_locks().contains(&"shimtest.ok.a".to_string()));
    }

    #[test]
    #[should_panic(expected = "lock-order cycle detected")]
    fn inverted_order_panics() {
        check::force_enable();
        let a = Mutex::named(1, "shimtest.inv.a");
        let b = Mutex::named(2, "shimtest.inv.b");
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let _ga = a.lock(); // reverse order: must panic, not deadlock-later
    }

    #[test]
    #[should_panic(expected = "re-entrant lock acquisition")]
    fn reentrant_mutex_panics() {
        check::force_enable();
        let m = Mutex::named(0, "shimtest.reent.m");
        let _g1 = m.lock();
        let _g2 = m.lock();
    }

    #[test]
    #[should_panic(expected = "re-entrant lock acquisition")]
    fn write_while_read_held_panics() {
        check::force_enable();
        let l = RwLock::named(0, "shimtest.upgrade.l");
        let _r = l.read();
        let _w = l.write();
    }

    #[test]
    fn read_after_read_is_allowed() {
        check::force_enable();
        let l = RwLock::named(5, "shimtest.rr.l");
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn rank_inversion_panics() {
        check::force_enable();
        let hi = RwLock::ranked(0, "shimtest.stripe", 7);
        let lo = RwLock::ranked(0, "shimtest.stripe", 3);
        let _g_hi = hi.write();
        let _g_lo = lo.write(); // descending rank within the family
    }

    #[test]
    #[should_panic(expected = "two locks of class")]
    fn same_rank_twice_panics() {
        check::force_enable();
        let x = Mutex::named(0, "shimtest.samerank");
        let y = Mutex::named(0, "shimtest.samerank");
        let _gx = x.lock();
        let _gy = y.lock();
    }

    #[test]
    #[should_panic(expected = "wait while holding")]
    fn condvar_wait_holding_second_lock_panics() {
        check::force_enable();
        let outer = Mutex::named((), "shimtest.cv.outer");
        let m = Mutex::named(false, "shimtest.cv.inner");
        let cv = Condvar::named("shimtest.cv");
        let _o = outer.lock();
        let mut g = m.lock();
        let _ = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(1));
    }

    #[test]
    fn condvar_wait_drops_held_record_while_parked() {
        // While parked the waited mutex is released, so another thread
        // must be able to acquire it in an order that would otherwise
        // conflict — and after wakeup the record must be back (dropping
        // the guard pops it without underflow).
        check::force_enable();
        let pair = Arc::new((Mutex::named(false, "shimtest.park.m"), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn try_lock_failure_leaves_no_record() {
        check::force_enable();
        let m = Arc::new(Mutex::named(0, "shimtest.try.m"));
        let other = Mutex::named(0, "shimtest.try.other");
        let g = m.lock();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            // A failed try_lock must not leave a phantom held record that
            // would order later acquisitions.
            let _o = other.lock();
        })
        .join()
        .unwrap();
        drop(g);
    }
}
