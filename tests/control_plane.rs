//! Mid-storm failover of the replicated version manager, end to end.
//!
//! The version manager is the one serialization point of the protocol —
//! every append storm funnels through its version assignment — and the
//! companion design paper leaves its fault tolerance open. These tests
//! pin down what `blobseer_control::ReplicatedVersionService` buys a
//! cluster booted with `version_replicas = 3`:
//!
//! * the leader is killed **at every protocol phase boundary** (the
//!   §III-D write phases and the read phases, via a `ProtocolObserver`
//!   wired into the deployment) while a 16-appender storm runs over
//!   real loopback RPC — and no appender observes a failure;
//! * the surviving replicas hand out a **gap-free, duplicate-free**
//!   version sequence: exactly `1..=N` for `N` successful appends, every
//!   snapshot readable, the final bytes a permutation of exactly the
//!   payloads written;
//! * a disk-backed replica group replays the same history after a full
//!   cluster reboot that follows the storm.

use blobseer_control::ReplicatedVersionService;
use blobseer_core::ports::{ProtocolObserver, ProtocolOp, ProtocolPhase};
use blobseer_rpc::LoopbackCluster;
use blobseer_types::{BlobSeerConfig, NodeId, Version};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const BLOCK: u64 = 256;
const APPENDERS: usize = 16;
const APPENDS_EACH: usize = 12;

/// Every append-path phase boundary of §III-D, in protocol order.
const APPEND_TARGETS: [(ProtocolOp, ProtocolPhase); 5] = [
    (ProtocolOp::Append, ProtocolPhase::Start),
    (ProtocolOp::Append, ProtocolPhase::DataDone),
    (ProtocolOp::Append, ProtocolPhase::VersionAssigned),
    (ProtocolOp::Append, ProtocolPhase::MetadataPublished),
    (ProtocolOp::Append, ProtocolPhase::Committed),
];

/// Every read-path phase boundary.
const READ_TARGETS: [(ProtocolOp, ProtocolPhase); 3] = [
    (ProtocolOp::Read, ProtocolPhase::Start),
    (ProtocolOp::Read, ProtocolPhase::Located),
    (ProtocolOp::Read, ProtocolPhase::Done),
];

struct KillSchedule {
    /// The phase boundaries to kill at, cycled in order.
    targets: Vec<(ProtocolOp, ProtocolPhase)>,
    /// Index of the next target in the cycle.
    next: usize,
    /// Event count at the last kill (cooldown reference).
    last_kill_at: u64,
    /// The replica killed last, revived just before the next kill so the
    /// group never drops below its majority quorum (2 of 3).
    downed: Option<usize>,
    /// Every (op, phase) boundary a kill actually landed on.
    kills: Vec<(ProtocolOp, ProtocolPhase)>,
}

/// A `ProtocolObserver` that assassinates the version-manager leader at
/// protocol phase boundaries. It cycles through a target list so every
/// boundary gets hit, and throttles kills (one per `cooldown` observed
/// events) so elections settle between them.
///
/// Uses `std::sync::Mutex` for its own state: the observer runs on client
/// threads and must stay invisible to the workspace lock-order checker
/// while it calls into the `ctl.*` lock classes of the replica group.
struct LeaderKiller {
    vm: Arc<ReplicatedVersionService>,
    events: AtomicU64,
    cooldown: u64,
    sched: Mutex<KillSchedule>,
}

impl LeaderKiller {
    fn new(vm: Arc<ReplicatedVersionService>, cooldown: u64) -> Self {
        Self {
            vm,
            events: AtomicU64::new(0),
            cooldown,
            sched: Mutex::new(KillSchedule {
                targets: Vec::new(),
                next: 0,
                last_kill_at: 0,
                downed: None,
                kills: Vec::new(),
            }),
        }
    }

    /// Arms the killer with a fresh target cycle (kills accumulate).
    fn arm(&self, targets: &[(ProtocolOp, ProtocolPhase)]) {
        let mut s = self.sched.lock().unwrap();
        s.targets = targets.to_vec();
        s.next = 0;
    }

    /// Disarms the killer and revives any still-downed replica, returning
    /// every boundary that got a kill.
    fn stand_down(&self) -> Vec<(ProtocolOp, ProtocolPhase)> {
        let mut s = self.sched.lock().unwrap();
        s.targets = Vec::new();
        if let Some(i) = s.downed.take() {
            self.vm.revive(i).expect("revive downed replica");
        }
        s.kills.clone()
    }
}

impl ProtocolObserver for LeaderKiller {
    fn phase(&self, _node: NodeId, op: ProtocolOp, phase: ProtocolPhase) {
        let now = self.events.fetch_add(1, Ordering::SeqCst);
        let mut s = self.sched.lock().unwrap();
        if s.targets.is_empty() {
            return;
        }
        let want = s.targets[s.next % s.targets.len()];
        if (op, phase) != want {
            return;
        }
        if !s.kills.is_empty() && now < s.last_kill_at + self.cooldown {
            return;
        }
        // Bring the previous victim back first: the group stays at 2-of-3
        // (quorum) through the kill, never 1-of-3.
        if let Some(i) = s.downed.take() {
            self.vm.revive(i).expect("revive downed replica");
        }
        if let Some(victim) = self.vm.kill_leader() {
            s.downed = Some(victim);
            s.kills.push(want);
            s.next += 1;
            s.last_kill_at = now;
        }
    }
}

/// The storm: 16 appenders over loopback RPC, each appending one block at
/// a time with a unique fill byte, while the observer kills the leader at
/// every append-phase boundary. Then a read storm over every snapshot with
/// kills at every read-phase boundary. No client ever sees an error.
#[test]
fn leader_kills_at_every_phase_boundary_leave_a_gap_free_history() {
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_version_replicas(3);
    let cluster = LoopbackCluster::boot(cfg, 4).unwrap();
    let vm = Arc::clone(cluster.replicated_vm().expect("replicated group"));
    assert_eq!(vm.replica_count(), 3);
    let killer = Arc::new(LeaderKiller::new(Arc::clone(&vm), 30));
    let sys = cluster.deploy_observed(Arc::clone(&killer) as _).unwrap();

    // A bystander BLOB written before the storm: it must stay readable
    // through every failover.
    let c0 = sys.client(NodeId::new(99));
    let bystander = c0.create();
    let bystander_bytes = vec![0xB5u8; 2 * BLOCK as usize];
    c0.write(bystander, 0, &bystander_bytes).unwrap();

    let blob = c0.create();
    let term_before = vm.term();
    killer.arm(&APPEND_TARGETS);

    let handles: Vec<_> = (0..APPENDERS)
        .map(|t| {
            let sys = Arc::clone(&sys);
            std::thread::spawn(move || {
                let c = sys.client(NodeId::new(t as u64));
                let mut fills = Vec::with_capacity(APPENDS_EACH);
                for k in 0..APPENDS_EACH {
                    // Unique fill byte per append (16 * 12 = 192 <= 255):
                    // the final bytes identify exactly which append landed
                    // in each block.
                    let fill = (t * APPENDS_EACH + k) as u8;
                    let (_, v) = c.append(blob, &[fill; BLOCK as usize]).unwrap();
                    assert!(v >= Version::new(1), "appender {t} got version {v:?}");
                    fills.push(fill);
                }
                fills
            })
        })
        .collect();
    let mut written: Vec<u8> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let append_kills = killer.stand_down();
    for target in APPEND_TARGETS {
        assert!(
            append_kills.contains(&target),
            "no leader kill landed on {target:?} (kills: {append_kills:?})"
        );
    }
    assert!(
        vm.term() > term_before,
        "leader kills must have forced re-elections"
    );

    // Gap-free and duplicate-free: N successful appends produced versions
    // exactly 1..=N — every version exists with the size of its position
    // in the sequence, and the newest covers all bytes.
    let n = (APPENDERS * APPENDS_EACH) as u64;
    let (latest, size) = c0.latest(blob).unwrap();
    assert_eq!(latest, Version::new(n), "lost or duplicated versions");
    assert_eq!(size, n * BLOCK);

    // The read storm: every snapshot of the storm BLOB is read back while
    // the killer cycles the read-phase boundaries.
    killer.arm(&READ_TARGETS);
    let readers: Vec<_> = (0..8u64)
        .map(|r| {
            let sys = Arc::clone(&sys);
            std::thread::spawn(move || {
                let c = sys.client(NodeId::new(200 + r));
                for v in 1..=n {
                    // Version v's newest block is its v-th segment; its
                    // size grew by exactly one block per version.
                    assert_eq!(c.size(blob, Version::new(v)).unwrap(), v * BLOCK);
                    let seg = c
                        .read(blob, Some(Version::new(v)), (v - 1) * BLOCK, BLOCK)
                        .unwrap();
                    assert!(
                        seg.iter().all(|&b| b == seg[0]),
                        "torn append block in v{v}"
                    );
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    let all_kills = killer.stand_down();
    for target in READ_TARGETS {
        assert!(
            all_kills.contains(&target),
            "no leader kill landed on {target:?} (kills: {all_kills:?})"
        );
    }

    // Duplicate-free at the byte level: the final content is a
    // permutation of exactly the 192 payloads the appenders wrote — no
    // block lost, none applied twice.
    let data = c0.read(blob, None, 0, n * BLOCK).unwrap();
    let mut got: Vec<u8> = (0..n)
        .map(|i| {
            let seg = &data[(i * BLOCK) as usize..((i + 1) * BLOCK) as usize];
            assert!(seg.iter().all(|&b| b == seg[0]), "torn block {i}");
            seg[0]
        })
        .collect();
    got.sort_unstable();
    written.sort_unstable();
    assert_eq!(got, written, "final bytes are not the appended payloads");

    // The bystander BLOB survived every failover untouched.
    let back = c0
        .read(bystander, None, 0, bystander_bytes.len() as u64)
        .unwrap();
    assert_eq!(&back[..], &bystander_bytes[..]);

    // The group converged: everyone alive again, identical log lengths.
    for i in 0..vm.replica_count() {
        assert!(vm.is_alive(i), "replica {i} still down after the storm");
    }
    assert_eq!(vm.log_len(0), vm.log_len(1));
    assert_eq!(vm.log_len(1), vm.log_len(2));
}

/// A smaller storm against a *disk-backed* replica group, then a full
/// cluster reboot from the same data directory: the replayed group serves
/// the identical history.
#[test]
fn disk_backed_replica_group_survives_a_storm_then_a_reboot() {
    let tmp = blobseer_disk::testutil::TempDir::new("control-plane-reboot");
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_version_replicas(3)
        .with_data_dir(tmp.path());

    let (blob, n, mut written) = {
        let cluster = LoopbackCluster::boot(cfg.clone(), 2).unwrap();
        let vm = Arc::clone(cluster.replicated_vm().expect("replicated group"));
        let killer = Arc::new(LeaderKiller::new(Arc::clone(&vm), 12));
        let sys = cluster.deploy_observed(Arc::clone(&killer) as _).unwrap();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        killer.arm(&APPEND_TARGETS);
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let sys = Arc::clone(&sys);
                std::thread::spawn(move || {
                    let c = sys.client(NodeId::new(t as u64));
                    let mut fills = Vec::new();
                    for k in 0..6usize {
                        let fill = (t * 6 + k) as u8;
                        c.append(blob, &[fill; BLOCK as usize]).unwrap();
                        fills.push(fill);
                    }
                    fills
                })
            })
            .collect();
        let written: Vec<u8> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let kills = killer.stand_down();
        assert!(!kills.is_empty(), "the storm must have killed a leader");
        vm.sync().unwrap();
        (blob, written.len() as u64, written)
    };

    // Second life: the replica logs replay into the same history.
    let cluster = LoopbackCluster::boot(cfg, 2).unwrap();
    let vm = cluster.replicated_vm().expect("replicated group");
    for i in 0..vm.replica_count() {
        assert_eq!(
            vm.log_len(i),
            vm.log_len(0),
            "replica {i} replayed a different log"
        );
    }
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(7));
    let (latest, size) = c.latest(blob).unwrap();
    assert_eq!(latest, Version::new(n));
    assert_eq!(size, n * BLOCK);
    let data = c.read(blob, None, 0, n * BLOCK).unwrap();
    let mut got: Vec<u8> = (0..n).map(|i| data[(i * BLOCK) as usize]).collect();
    got.sort_unstable();
    written.sort_unstable();
    assert_eq!(got, written, "rebooted history differs from the storm's");

    // The rebooted group still issues fresh versions.
    let v = c.write(blob, 0, &[0xEEu8; BLOCK as usize]).unwrap();
    assert_eq!(v, Version::new(n + 1));
}
