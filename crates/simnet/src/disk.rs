//! A work-conserving FIFO disk model.
//!
//! Each node's disk drains submitted work in order at a fixed rate. The model
//! deliberately ignores seek time and request reordering: the paper's
//! workloads are large sequential block transfers (64 MB), for which a rate
//! server is an accurate abstraction. What matters for the figures is the
//! *queueing*: when HDFS's random placement lands several blocks on the same
//! datanode, readers of those blocks serialize behind one another on this
//! queue (Fig. 4), while BlobSeer's round-robin keeps queues short.

use crate::time::{SimDuration, SimTime};

/// A single-node disk: fixed drain rate, FIFO completion order.
#[derive(Clone, Debug)]
pub struct Disk {
    rate_bps: f64,
    busy_until: SimTime,
    bytes_total: f64,
    jobs_total: u64,
}

impl Disk {
    /// A disk draining at `rate_bps` bytes per second.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "disk rate must be positive");
        Self {
            rate_bps,
            busy_until: SimTime::ZERO,
            bytes_total: 0.0,
            jobs_total: 0,
        }
    }

    /// Drain rate in bytes per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Submits `bytes` of sequential work at time `now`; returns the
    /// completion instant. Work starts when the previous job finishes
    /// (work-conserving FIFO).
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.rate_bps);
        self.busy_until = start + dur;
        self.bytes_total += bytes as f64;
        self.jobs_total += 1;
        self.busy_until
    }

    /// The instant the disk goes idle given current queue.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Length of the backlog at `now`, in seconds of work.
    pub fn backlog_secs(&self, now: SimTime) -> f64 {
        (self.busy_until - now).as_secs_f64()
    }

    /// Total (bytes, jobs) ever submitted.
    pub fn stats(&self) -> (f64, u64) {
        (self.bytes_total, self.jobs_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_jobs_queue() {
        let mut d = Disk::new(100.0);
        let t1 = d.submit(SimTime::ZERO, 100); // 1 s
        assert_eq!(t1.as_secs_f64(), 1.0);
        // Submitted while busy: starts at t1.
        let t2 = d.submit(SimTime::from_nanos(500_000_000), 100);
        assert_eq!(t2.as_secs_f64(), 2.0);
        assert_eq!(d.stats(), (200.0, 2));
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(100.0);
        d.submit(SimTime::ZERO, 100);
        // Submit after the first job finished: no queueing.
        let t = d.submit(SimTime::from_nanos(3_000_000_000), 50);
        assert_eq!(t.as_secs_f64(), 3.5);
        assert_eq!(d.backlog_secs(SimTime::from_nanos(3_000_000_000)), 0.5);
    }

    #[test]
    fn backlog_never_negative() {
        let d = Disk::new(10.0);
        assert_eq!(d.backlog_secs(SimTime::from_nanos(99)), 0.0);
    }

    #[test]
    #[should_panic(expected = "disk rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Disk::new(0.0);
    }
}
