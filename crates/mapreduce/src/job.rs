//! Job definitions: mapper/reducer traits, input specs, splits, reports.
//!
//! The programming model mirrors Hadoop's: mappers consume records (lines
//! of text, keyed by byte offset) from input splits sized like storage
//! blocks ("usually Hadoop assigns a single mapper to process such a data
//! block", §V-G); reducers receive sorted, grouped key/value lists.

use blobseer_types::NodeId;

/// Emits intermediate or output key/value pairs.
pub type Emit<'a> = dyn FnMut(&[u8], &[u8]) + 'a;

/// A map function. Must be shareable across tasktracker threads.
pub trait Mapper: Send + Sync {
    /// Processes one record. For file inputs, `key` is the byte offset of
    /// the line and `value` is the line (without trailing newline). For
    /// generated inputs (e.g. RandomTextWriter), `key` is the split index
    /// and `value` is empty.
    fn map(&self, key: u64, value: &[u8], out: &mut Emit<'_>);
}

/// A reduce function.
pub trait Reducer: Send + Sync {
    /// Processes one key with all its values (sorted by key).
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], out: &mut Emit<'_>);
}

/// Where a job's input comes from.
#[derive(Clone, Debug)]
pub enum InputSpec {
    /// Files split along block boundaries, with locality hints.
    Files(Vec<String>),
    /// Synthetic splits with no input data (one map invocation each) —
    /// how Hadoop's RandomTextWriter drives its mappers (§V-G).
    Generated { splits: usize },
}

/// A job description.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Input source.
    pub input: InputSpec,
    /// Output directory; part files are created inside.
    pub output_dir: String,
    /// Number of reduce tasks; 0 makes a map-only job whose mappers write
    /// `part-m-*` files directly (the RandomTextWriter pattern: "the output
    /// of each of the mappers is stored as a separate file", §V-G).
    pub reducers: usize,
}

impl JobSpec {
    /// Convenience constructor.
    pub fn new(name: &str, input: InputSpec, output_dir: &str, reducers: usize) -> Self {
        Self {
            name: name.to_string(),
            input,
            output_dir: output_dir.to_string(),
            reducers,
        }
    }
}

/// One unit of map work.
#[derive(Clone, Debug)]
pub struct InputSplit {
    /// Split ordinal.
    pub id: usize,
    /// Source file (`None` for generated splits).
    pub file: Option<String>,
    /// Byte range `[offset, offset + len)` of the split.
    pub offset: u64,
    pub len: u64,
    /// Nodes holding the split's block — the affinity hint (§IV-C).
    pub hosts: Vec<NodeId>,
}

/// Statistics of a finished job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Backend that served the I/O ("BSFS"/"HDFS").
    pub backend: String,
    /// Total map tasks executed.
    pub map_tasks: usize,
    /// Maps scheduled on a node holding their input block ("local maps",
    /// §V-E).
    pub local_maps: usize,
    /// Maps that read their input over the network ("remote maps").
    pub remote_maps: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Input records consumed by all mappers.
    pub map_input_records: u64,
    /// Intermediate records emitted by all mappers.
    pub map_output_records: u64,
    /// Records that entered the shuffle (less than `map_output_records`
    /// when a combiner compacted them; 0 for map-only jobs).
    pub shuffle_records: u64,
    /// Records written by reducers (or mappers, for map-only jobs).
    pub output_records: u64,
    /// Wall-clock duration in microseconds (live engine runs).
    pub duration_micros: u128,
    /// Output part files produced.
    pub output_files: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_builds() {
        let job = JobSpec::new("grep", InputSpec::Files(vec!["/in/a".into()]), "/out", 2);
        assert_eq!(job.name, "grep");
        assert_eq!(job.reducers, 2);
        match &job.input {
            InputSpec::Files(f) => assert_eq!(f.len(), 1),
            _ => panic!("wrong input kind"),
        }
    }

    #[test]
    fn closures_can_serve_as_mappers() {
        struct Upper;
        impl Mapper for Upper {
            fn map(&self, _k: u64, v: &[u8], out: &mut Emit<'_>) {
                out(&v.to_ascii_uppercase(), b"");
            }
        }
        let m = Upper;
        let mut seen = Vec::new();
        m.map(0, b"abc", &mut |k, _| seen.push(k.to_vec()));
        assert_eq!(seen, vec![b"ABC".to_vec()]);
    }
}
