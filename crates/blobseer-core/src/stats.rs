//! Engine-wide counters.
//!
//! All counters are relaxed atomics: they are monitoring data, never used
//! for synchronization. The experiment drivers read them to report e.g. the
//! number of metadata RPCs a write generates, and the load-balance figures
//! read per-provider block counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global counters for one BlobSeer deployment.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Data blocks stored on providers (each replica counts once).
    pub blocks_written: AtomicU64,
    /// Payload bytes stored on providers (each replica counts once).
    pub bytes_written: AtomicU64,
    /// Payload bytes served by providers to readers.
    pub bytes_read: AtomicU64,
    /// Metadata tree nodes written to the DHT (each replica counts once).
    pub meta_nodes_written: AtomicU64,
    /// Metadata tree node lookups served by the DHT.
    pub meta_nodes_read: AtomicU64,
    /// Version assignments performed by the version manager.
    pub versions_assigned: AtomicU64,
    /// Writes that were aborted and repaired.
    pub writes_aborted: AtomicU64,
    /// Tree nodes deleted by the garbage collector.
    pub meta_nodes_collected: AtomicU64,
    /// Data blocks deleted by the garbage collector.
    pub blocks_collected: AtomicU64,
    /// GC releases of nodes the tracker never counted a reference for —
    /// refcount bugs that would otherwise surface only as permanent leaks
    /// (see `GcReport::untracked_releases`). Always 0 in a healthy engine.
    pub gc_untracked_releases: AtomicU64,
    /// Network round trips issued by remote port adapters (one per request
    /// frame). With the vectored port API a 64-block write costs
    /// O(tree levels + providers touched) round trips, not
    /// O(blocks + nodes) — asserted in `tests/rpc_cluster.rs`.
    pub port_round_trips: AtomicU64,
    /// Items carried by vectored port calls (`put_many`/`get_many`/
    /// `delete_many`) on remote adapters; `batched_items /
    /// port_round_trips` approximates the achieved batch size.
    pub batched_items: AtomicU64,
    /// Control-plane round trips issued by remote placement/GC adapters
    /// (one per request frame to the hosted provider manager or GC
    /// service). Kept separate from `port_round_trips` so the data-path
    /// frame invariants (14 frames per 64-block write, 13 per read —
    /// `tests/rpc_cluster.rs`) stay meaningful: a clean write costs
    /// exactly 3 control frames (allocate, child refcounts, root
    /// registration) and a read costs 0.
    pub control_round_trips: AtomicU64,
    /// Hot-read cache hits (blocks + metadata tree nodes served from the
    /// client-side [`crate::cache`] decorators without touching the
    /// backend).
    pub cache_hits: AtomicU64,
    /// Hot-read cache misses (requests the decorators forwarded).
    pub cache_misses: AtomicU64,
    /// Entries evicted from the hot-read cache to stay within its byte
    /// budget.
    pub cache_evictions: AtomicU64,
    /// Diagnostic port calls (non-`Result` methods: counts, sizes, op
    /// counters) that a remote adapter answered with a zero/empty default
    /// because the backend was unreachable. Always 0 in a healthy
    /// deployment — a growing value means monitoring data is silently
    /// understating a half-dead cluster.
    pub rpc_degraded_diagnostics: AtomicU64,
    /// Fan-out dispatch groups issued by the client (one per multi-provider
    /// phase step: a data-phase store, a fetch wave, a tree level, a GC
    /// delete wave). Structural — counted whether the executor runs the
    /// group inline or across its pool.
    pub fanout_batches: AtomicU64,
    /// Widest fan-out group dispatched (jobs issued concurrently in one
    /// group). For a W-provider striped write this reaches W — asserted in
    /// `tests/rpc_cluster.rs` alongside the frame-count invariants.
    pub fanout_max_width: AtomicU64,
    /// Read-path block fetches recovered (or attempted) through a replica
    /// other than the deterministic first choice, after that replica's
    /// batch reported a per-item failure.
    pub read_replica_fallbacks: AtomicU64,
}

impl EngineStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (relaxed). Public so out-of-crate adapters
    /// (e.g. the RPC GC client mirroring server-side reports) account on
    /// the same counters the in-process engine uses.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-watermark counter to `n` if it is below.
    #[inline]
    pub(crate) fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// Records one fan-out dispatch group of `width` jobs.
    #[inline]
    pub(crate) fn record_fanout(&self, width: usize) {
        Self::add(&self.fanout_batches, 1);
        Self::raise(&self.fanout_max_width, width as u64);
    }

    /// Snapshot of all counters as plain integers, for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let locks = parking_lot::lock_stats();
        StatsSnapshot {
            blocks_written: g(&self.blocks_written),
            bytes_written: g(&self.bytes_written),
            bytes_read: g(&self.bytes_read),
            meta_nodes_written: g(&self.meta_nodes_written),
            meta_nodes_read: g(&self.meta_nodes_read),
            versions_assigned: g(&self.versions_assigned),
            writes_aborted: g(&self.writes_aborted),
            meta_nodes_collected: g(&self.meta_nodes_collected),
            blocks_collected: g(&self.blocks_collected),
            gc_untracked_releases: g(&self.gc_untracked_releases),
            port_round_trips: g(&self.port_round_trips),
            batched_items: g(&self.batched_items),
            control_round_trips: g(&self.control_round_trips),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
            cache_evictions: g(&self.cache_evictions),
            rpc_degraded_diagnostics: g(&self.rpc_degraded_diagnostics),
            fanout_batches: g(&self.fanout_batches),
            fanout_max_width: g(&self.fanout_max_width),
            read_replica_fallbacks: g(&self.read_replica_fallbacks),
            lock_contended_acquires: locks.contended_acquires,
            lock_max_wait_ns: locks.max_wait_ns,
        }
    }
}

/// A point-in-time copy of [`EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub blocks_written: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub meta_nodes_written: u64,
    pub meta_nodes_read: u64,
    pub versions_assigned: u64,
    pub writes_aborted: u64,
    pub meta_nodes_collected: u64,
    pub blocks_collected: u64,
    pub gc_untracked_releases: u64,
    pub port_round_trips: u64,
    pub batched_items: u64,
    pub control_round_trips: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rpc_degraded_diagnostics: u64,
    pub fanout_batches: u64,
    pub fanout_max_width: u64,
    pub read_replica_fallbacks: u64,
    /// Lock acquisitions that had to block (process-wide, from the
    /// instrumented `parking_lot` shim — not scoped to this engine).
    pub lock_contended_acquires: u64,
    /// Longest observed wait for any single lock acquisition, in
    /// nanoseconds (process-wide, from the shim).
    pub lock_max_wait_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = EngineStats::new();
        EngineStats::add(&s.blocks_written, 3);
        EngineStats::add(&s.blocks_written, 2);
        EngineStats::add(&s.bytes_read, 10);
        let snap = s.snapshot();
        assert_eq!(snap.blocks_written, 5);
        assert_eq!(snap.bytes_read, 10);
        assert_eq!(snap.versions_assigned, 0);
    }

    #[test]
    fn fanout_recording_counts_batches_and_keeps_the_widest() {
        let s = EngineStats::new();
        s.record_fanout(4);
        s.record_fanout(1);
        s.record_fanout(8);
        s.record_fanout(2);
        let snap = s.snapshot();
        assert_eq!(snap.fanout_batches, 4);
        assert_eq!(snap.fanout_max_width, 8);
    }

    #[test]
    fn snapshot_is_detached() {
        let s = EngineStats::new();
        let before = s.snapshot();
        EngineStats::add(&s.meta_nodes_written, 1);
        assert_eq!(before.meta_nodes_written, 0);
        assert_eq!(s.snapshot().meta_nodes_written, 1);
    }
}
