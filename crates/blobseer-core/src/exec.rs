//! The client-side fan-out executor behind every multi-provider hot path.
//!
//! The paper's throughput claims (§III-B, figs 3–4) assume a client
//! stripes its blocks across providers **in parallel**: a write to 8
//! providers costs ~1 round trip of latency, not 8. The vectored ports
//! (PR 5) and the multiplexed transport (PR 6) made concurrent in-flight
//! batches cheap at the wire level; [`FanoutExecutor`] is the piece that
//! actually issues them concurrently from the protocol layer.
//!
//! Design constraints, in order:
//!
//! * **Degrade to inline at 1 thread.** `client_io_threads = 1` spawns no
//!   worker threads at all and runs every job on the caller, in order —
//!   byte-identical behaviour and identical frame counts to the serial
//!   client. This is also what makes the executor safe under
//!   `simnet::SimGate`, whose cooperative virtual-time scheduling cannot
//!   tolerate ungated OS threads (the charging adapters model the overlap
//!   analytically instead; see `experiments::concurrent`).
//! * **Callers help.** A thread waiting on [`FanoutExecutor::fanout`]
//!   drains the shared queue while it waits, so nested fan-outs (a bsfs
//!   read-ahead job whose `read()` fans out its own fetch phase) can
//!   never deadlock the pool: every waiter is also a worker.
//! * **Jobs are `'static`.** Call sites clone the `Arc<dyn …>` ports and
//!   move owned batches into each job — no scoped-lifetime tricks, no
//!   unsafe.
//!
//! Results come back in job-submission order, so call sites keep their
//! deterministic first-error and accounting semantics regardless of
//! completion order.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A queued unit of work. Each wraps one caller job plus the bookkeeping
/// that stores its result slot and wakes the waiting fan-out caller.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the workers and every fan-out caller.
struct Pool {
    /// FIFO of pending jobs. All parking — workers waiting for work and
    /// callers waiting for their group — goes through this one mutex and
    /// [`Self::signal`], which is notified on every push *and* every
    /// group-job completion.
    queue: Mutex<VecDeque<Job>>,
    signal: Condvar,
    stop: AtomicBool,
}

impl Pool {
    /// Blocks until a job is available (running it is the caller's duty)
    /// or the pool is stopped.
    fn next_job(&self) -> Option<Job> {
        let mut q = self.queue.lock();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            self.signal.wait(&mut q);
        }
    }
}

/// One fan-out call's completion state: a result slot per job plus the
/// count of jobs still outstanding.
struct Group<T> {
    slots: Mutex<Vec<Option<std::thread::Result<T>>>>,
    remaining: AtomicUsize,
}

/// A small shared thread pool issuing per-provider batches concurrently.
///
/// Sized by `BlobSeerConfig::client_io_threads` (default: `min(8,
/// providers)`); see the module docs for the 1-thread inline guarantee.
pub struct FanoutExecutor {
    /// `None` at 1 thread: no pool, no workers, inline execution.
    pool: Option<Arc<Pool>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for FanoutExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutExecutor")
            .field("threads", &self.threads)
            .finish()
    }
}

impl FanoutExecutor {
    /// An executor with `threads` I/O threads. `1` means *inline*: no
    /// worker threads are spawned and every job runs on the caller.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one I/O thread");
        if threads == 1 {
            return Self {
                pool: None,
                workers: Vec::new(),
                threads,
            };
        }
        let pool = Arc::new(Pool {
            queue: Mutex::named(VecDeque::new(), "exec.queue"),
            signal: Condvar::named("exec.signal"),
            stop: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("blobseer-io-{i}"))
                    .spawn(move || {
                        while let Some(job) = pool.next_job() {
                            job();
                        }
                    })
                    .expect("spawn fan-out worker") // lint:allow(no-unwrap): thread-spawn failure at pool construction is unrecoverable
            })
            .collect();
        Self {
            pool: Some(pool),
            workers,
            threads,
        }
    }

    /// The configured thread count (1 = inline).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job, returning their results in submission order.
    ///
    /// With a pool, jobs run concurrently across the workers *and* the
    /// calling thread (which helps drain the queue while it waits). At 1
    /// thread — or for 0/1 jobs — everything runs inline on the caller in
    /// submission order. A panicking job is re-raised on the caller once
    /// the whole group has settled.
    pub fn fanout<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let pool = match &self.pool {
            Some(pool) if n > 1 => pool,
            _ => return jobs.into_iter().map(|job| job()).collect(),
        };
        let group = Arc::new(Group {
            slots: Mutex::named((0..n).map(|_| None).collect(), "exec.group.slots"),
            remaining: AtomicUsize::new(n),
        });
        {
            let mut q = pool.queue.lock();
            for (i, job) in jobs.into_iter().enumerate() {
                q.push_back(group_job(pool, &group, i, job));
            }
            pool.signal.notify_all();
        }
        // Help: run queued jobs (ours or anyone's) until our group is done.
        let mut q = pool.queue.lock();
        while group.remaining.load(Ordering::Acquire) != 0 {
            if let Some(job) = q.pop_front() {
                drop(q);
                job();
                q = pool.queue.lock();
            } else {
                pool.signal.wait(&mut q);
            }
        }
        drop(q);
        collect(&group)
    }

    /// Queues one job for asynchronous execution, returning a handle to
    /// claim its result later ([`Pending::wait`]). At 1 thread the job
    /// runs inline *now* — the handle is already resolved. Used by the
    /// bsfs read-ahead path to overlap the next block's fetch with the
    /// caller's compute.
    pub fn spawn<T, F>(&self, job: F) -> Pending<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let Some(pool) = &self.pool else {
            return Pending(PendingState::Ready(job()));
        };
        let group = Arc::new(Group {
            slots: Mutex::named(vec![None], "exec.group.slots"),
            remaining: AtomicUsize::new(1),
        });
        {
            let mut q = pool.queue.lock();
            q.push_back(group_job(pool, &group, 0, job));
            pool.signal.notify_one();
        }
        Pending(PendingState::Queued {
            pool: Arc::clone(pool),
            group,
        })
    }
}

/// Wraps a caller job into a queue [`Job`]: run (catching panics), store
/// the result in the group's slot, then wake everyone parked on the pool.
fn group_job<T, F>(pool: &Arc<Pool>, group: &Arc<Group<T>>, index: usize, job: F) -> Job
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let pool = Arc::clone(pool);
    let group = Arc::clone(group);
    Box::new(move || {
        let out = catch_unwind(AssertUnwindSafe(job));
        group.slots.lock()[index] = Some(out);
        group.remaining.fetch_sub(1, Ordering::Release);
        // Taking the queue lock before notifying pairs with waiters that
        // re-check `remaining` under the same lock: no lost wakeups.
        let _q = pool.queue.lock();
        pool.signal.notify_all();
    })
}

/// Drains a settled group into results, re-raising the first panic.
fn collect<T>(group: &Group<T>) -> Vec<T> {
    let mut slots = group.slots.lock();
    slots
        .drain(..)
        // lint:allow(no-unwrap): collect runs only after the group latch settles every slot
        .map(|slot| match slot.expect("group settled with empty slot") {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        })
        .collect()
}

impl Drop for FanoutExecutor {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.stop.store(true, Ordering::Relaxed);
            let _q = pool.queue.lock();
            pool.signal.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A handle to one [`FanoutExecutor::spawn`]ed job.
///
/// Outstanding handles stay valid even if the executor is dropped first:
/// [`Pending::wait`] helps drain the shared queue, so it completes the
/// job itself if no worker got to it.
pub struct Pending<T>(PendingState<T>);

enum PendingState<T> {
    /// Resolved at spawn time (inline executor).
    Ready(T),
    /// Queued on the pool; resolved by a worker or by the waiter.
    Queued {
        pool: Arc<Pool>,
        group: Arc<Group<T>>,
    },
}

impl<T: Send + 'static> Pending<T> {
    /// Blocks until the job's result is available, helping run queued
    /// jobs while waiting. Re-raises the job's panic, if any.
    pub fn wait(self) -> T {
        match self.0 {
            PendingState::Ready(value) => value,
            PendingState::Queued { pool, group } => {
                let mut q = pool.queue.lock();
                while group.remaining.load(Ordering::Acquire) != 0 {
                    if let Some(job) = q.pop_front() {
                        drop(q);
                        job();
                        q = pool.queue.lock();
                    } else {
                        pool.signal.wait(&mut q);
                    }
                }
                drop(q);
                collect(&group).pop().expect("single-slot group") // lint:allow(no-unwrap): single-slot group settled by the wait above
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    #[test]
    fn inline_executor_runs_in_order_without_threads() {
        let exec = FanoutExecutor::new(1);
        assert_eq!(exec.threads(), 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                let order = Arc::clone(&order);
                move || {
                    order.lock().push(i);
                    i * 10
                }
            })
            .collect();
        let results = exec.fanout(jobs);
        assert_eq!(results, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_fanout_preserves_submission_order_of_results() {
        let exec = FanoutExecutor::new(4);
        for _ in 0..20 {
            let jobs: Vec<_> = (0..16u64).map(|i| move || i * 3).collect();
            let results = exec.fanout(jobs);
            assert_eq!(results, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_genuinely_overlap() {
        // 4 jobs rendezvous on one barrier: only possible if they run
        // concurrently (3 workers + the helping caller).
        let exec = FanoutExecutor::new(4);
        let barrier = Arc::new(Barrier::new(4));
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                move || barrier.wait().is_leader()
            })
            .collect();
        let results = exec.fanout(jobs);
        assert_eq!(results.iter().filter(|&&leader| leader).count(), 1);
    }

    #[test]
    fn nested_fanout_does_not_deadlock() {
        // Every outer job fans out again: with 2 threads this can only
        // complete because waiters help drain the queue.
        let exec = Arc::new(FanoutExecutor::new(2));
        let inner_exec = Arc::clone(&exec);
        let jobs: Vec<_> = (0..4u64)
            .map(|i| {
                let exec = Arc::clone(&inner_exec);
                move || {
                    let inner: Vec<_> = (0..4u64).map(|j| move || i * 100 + j).collect();
                    exec.fanout(inner).into_iter().sum::<u64>()
                }
            })
            .collect();
        let results = Arc::clone(&exec).fanout(jobs);
        let expected: Vec<u64> = (0..4).map(|i| 4 * i * 100 + 6).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn spawn_resolves_inline_and_pooled() {
        let inline = FanoutExecutor::new(1);
        assert_eq!(inline.spawn(|| 7u64).wait(), 7);
        let pooled = FanoutExecutor::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let pendings: Vec<_> = (0..8u64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pooled.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let got: Vec<u64> = pendings.into_iter().map(Pending::wait).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn pending_survives_executor_drop() {
        let exec = FanoutExecutor::new(2);
        let pending = exec.spawn(|| 41u64 + 1);
        drop(exec);
        assert_eq!(pending.wait(), 42);
    }

    #[test]
    fn empty_fanout_is_a_noop() {
        let exec = FanoutExecutor::new(4);
        let results: Vec<u64> = exec.fanout(Vec::<fn() -> u64>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn panicking_job_propagates_after_group_settles() {
        let exec = FanoutExecutor::new(2);
        let survived = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&survived);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.fanout(vec![
                Box::new(|| -> u64 { panic!("boom") }) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || {
                    s.fetch_add(1, Ordering::Relaxed);
                    1
                }),
            ]);
        }));
        assert!(caught.is_err());
        assert_eq!(survived.load(Ordering::Relaxed), 1, "group fully settled");
        // The pool is still usable afterwards.
        assert_eq!(exec.fanout(vec![|| 5u64]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "need at least one I/O thread")]
    fn zero_threads_rejected() {
        let _ = FanoutExecutor::new(0);
    }
}
