//! Per-op vs vectored port traffic over the RPC loopback cluster.
//!
//! The vectored port API exists so the data phase, tree publish and
//! descent pay one wire frame per batch instead of one per item. This
//! bench measures that directly at the port boundary: storing and
//! fetching a 64-block write's worth of blocks through the
//! `RpcBlockStore` adapter, once as 64 single-op round trips and once as
//! one `put_many`/`get_many` per provider — real sockets, real frames,
//! laptop-scale 4 KB blocks (the round trips under comparison are
//! size-independent; the paper's 64 MB blocks only add stream time on
//! both sides).

use blobseer_rpc::LoopbackCluster;
use blobseer_types::{BlobSeerConfig, BlockId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const PROVIDERS: usize = 4;
const BLOCKS: u64 = 64;
const BLOCK_BYTES: usize = 4096;

/// The provider each block of the "write" lands on (round-robin, like the
/// provider manager's default placement).
fn provider_of(block: u64) -> usize {
    (block % PROVIDERS as u64) as usize
}

fn bench_rpc_batching(c: &mut Criterion) {
    let cluster = LoopbackCluster::boot(
        BlobSeerConfig::small_for_tests().with_block_size(BLOCK_BYTES as u64),
        PROVIDERS,
    )
    .unwrap();
    let sys = cluster.deploy().unwrap();
    let store = sys.providers();
    let payload = Bytes::from(vec![0xB1u8; BLOCK_BYTES]);

    // --- write side: 64 blocks to 4 providers ------------------------------
    let mut g = c.benchmark_group("rpc_batching/store_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    let mut round = 0u64;
    g.bench_function("per_op", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            for k in 0..BLOCKS {
                store
                    .put(provider_of(k), BlockId::new(base + k), payload.clone())
                    .unwrap();
            }
            // Keep the servers from growing without bound across samples.
            for p in 0..PROVIDERS {
                let ids: Vec<BlockId> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| BlockId::new(base + k))
                    .collect();
                let _ = store.delete_many(p, &ids);
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            for p in 0..PROVIDERS {
                let items: Vec<(BlockId, Bytes)> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| (BlockId::new(base + k), payload.clone()))
                    .collect();
                for result in store.put_many(p, &items) {
                    result.unwrap();
                }
                let ids: Vec<BlockId> = items.iter().map(|&(id, _)| id).collect();
                let _ = store.delete_many(p, &ids);
            }
        });
    });
    g.finish();

    // --- read side: fetch the same 64 blocks back --------------------------
    let base = u64::MAX / 2;
    for k in 0..BLOCKS {
        store
            .put(provider_of(k), BlockId::new(base + k), payload.clone())
            .unwrap();
    }
    let mut g = c.benchmark_group("rpc_batching/fetch_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    g.bench_function("per_op", |b| {
        b.iter(|| {
            for k in 0..BLOCKS {
                black_box(store.get(provider_of(k), BlockId::new(base + k)).unwrap());
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            for p in 0..PROVIDERS {
                let ids: Vec<BlockId> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| BlockId::new(base + k))
                    .collect();
                for result in store.get_many(p, &ids) {
                    black_box(result.unwrap());
                }
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_rpc_batching);
criterion_main!(benches);
