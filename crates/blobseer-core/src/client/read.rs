//! The read path: snapshot resolution, segment-tree descent and block
//! fetches (§III-C), plus the data-location primitive behind Hadoop's
//! affinity scheduling (§IV-C).

use crate::meta::key::BlockRange;
use crate::meta::tree::LocatedBlock;
use crate::ports::{ProtocolOp, ProtocolPhase};
use crate::stats::EngineStats;
use crate::version_manager::SnapshotInfo;
use blobseer_types::{BlobId, BlockId, ByteRange, Error, Result, Version};
use bytes::{Bytes, BytesMut};
use std::sync::Arc;

use super::write::push_grouped;
use super::{BlobClient, BlockLocation};

impl BlobClient {
    /// Reads `size` bytes at `offset` from the given snapshot
    /// (`None` = latest revealed). Fails with [`Error::OutOfBounds`] when
    /// the range exceeds the snapshot and [`Error::VersionNotRevealed`]
    /// when an explicit version is not yet visible (§III-A.5: readers only
    /// access revealed snapshots).
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        size: u64,
    ) -> Result<Bytes> {
        self.observe(ProtocolOp::Read, ProtocolPhase::Start);
        let info = self.resolve(blob, version)?;
        self.check_bounds(offset, size, info.size)?;
        if size == 0 {
            return Ok(Bytes::new());
        }
        let bs = self.sys.cfg.block_size;
        let query = BlockRange::of_bytes(offset, size, bs);
        let located = self
            .sys
            .tree()
            .locate(info.root_blob, info.version, info.cap, query)?;
        self.observe(ProtocolOp::Read, ProtocolPhase::Located);
        // Fetch phase, vectored and fanned out: group the needed blocks by
        // the replica provider chosen for each (deterministically by block
        // index, to spread load) and issue one `get_many` per provider —
        // concurrently, through the deployment's fan-out executor. Items
        // that fail are retried in batched waves against their surviving
        // replicas before the read surfaces an error.
        let mut fetched: Vec<Option<Bytes>> = vec![None; located.len()];
        let mut batches: Vec<(usize, Vec<(usize, BlockId)>)> = Vec::new();
        for (i, loc) in located.iter().enumerate() {
            if let Some(desc) = &loc.desc {
                let replica = (loc.index as usize) % desc.providers.len();
                let pidx = desc.providers[replica] as usize;
                push_grouped(&mut batches, pidx, (i, desc.block_id));
            }
        }
        let jobs: Vec<_> = batches
            .into_iter()
            .map(|(provider, items)| {
                let providers = Arc::clone(&self.sys.providers);
                move || {
                    let ids: Vec<BlockId> = items.iter().map(|&(_, id)| id).collect();
                    let results = providers.get_many(provider, &ids);
                    (provider, items, results)
                }
            })
            .collect();
        // `(item, failed primary, its error)` of every miss, in item order.
        let mut failures: Vec<(usize, usize, Error)> = Vec::new();
        if !jobs.is_empty() {
            self.sys.stats.record_fanout(jobs.len());
            for (provider, items, results) in self.sys.exec.fanout(jobs) {
                for (&(i, _), result) in items.iter().zip(results) {
                    match result {
                        Ok(block) => fetched[i] = Some(block),
                        Err(e) => failures.push((i, provider, e)),
                    }
                }
            }
        }
        if !failures.is_empty() {
            failures.sort_by_key(|&(i, _, _)| i);
            self.fetch_fallback_replicas(&located, failures, &mut fetched)?;
        }
        let mut out = BytesMut::with_capacity(size as usize);
        let spans = ByteRange::new(offset, size).block_spans(bs);
        for ((span, loc), block) in spans.zip(located.iter()).zip(fetched) {
            debug_assert_eq!(span.block_index, loc.index);
            match block {
                None => out.resize(out.len() + span.len as usize, 0),
                Some(block) => {
                    let lo = span.offset_in_block as usize;
                    let hi = (span.offset_in_block + span.len) as usize;
                    let avail = block.len();
                    if lo < avail {
                        out.extend_from_slice(&block[lo..hi.min(avail)]);
                    }
                    // Stored tail blocks may be shorter than the span when a
                    // later write extended the BLOB past them: zero-fill.
                    if hi > avail.max(lo) {
                        out.resize(out.len() + (hi - avail.max(lo)), 0);
                    }
                }
            }
        }
        debug_assert_eq!(out.len() as u64, size);
        EngineStats::add(&self.sys.stats.bytes_read, size);
        self.observe(ProtocolOp::Read, ProtocolPhase::Done);
        Ok(out.freeze())
    }

    /// Replica failover for the blocks whose deterministically chosen
    /// replica refused or lost them: retry against the descriptors'
    /// remaining replicas (the replication the paper relies on for fault
    /// tolerance, §VI-B — `desc.providers` lists healthy replicas the read
    /// would otherwise ignore). The retries are **batched per surviving
    /// provider** (`get_many`, fanned out) instead of one blocking `get`
    /// per block, and each attempt is counted in
    /// `EngineStats::read_replica_fallbacks`. Fails with the lowest-index
    /// unrecovered item's *last* replica error once all are exhausted.
    fn fetch_fallback_replicas(
        &self,
        located: &[LocatedBlock],
        failures: Vec<(usize, usize, Error)>,
        fetched: &mut [Option<Bytes>],
    ) -> Result<()> {
        // Per failed item: remaining replica candidates, in descriptor
        // order with the already-failed primary skipped.
        let mut states: Vec<(usize, Vec<usize>, Error)> = failures
            .into_iter()
            .map(|(i, failed, err)| {
                let desc = located[i]
                    .desc
                    .as_ref()
                    .expect("fallback only runs for fetched descriptors"); // lint:allow(no-unwrap): fallback waves only enumerate fetched descriptors
                let mut candidates: Vec<usize> = desc
                    .providers
                    .iter()
                    .map(|&p| p as usize)
                    .filter(|&p| p != failed)
                    .collect();
                candidates.reverse(); // pop() yields descriptor order
                (i, candidates, err)
            })
            .collect();
        loop {
            // One wave: each unresolved item tries its next candidate;
            // attempts are grouped by provider and issued concurrently.
            let mut wave: Vec<(usize, Vec<(usize, BlockId)>)> = Vec::new();
            for (s, (i, candidates, _)) in states.iter_mut().enumerate() {
                if fetched[*i].is_some() {
                    continue;
                }
                if let Some(p) = candidates.pop() {
                    let id = located[*i].desc.as_ref().expect("checked above").block_id; // lint:allow(no-unwrap): same descriptor unwrapped at wave setup
                    push_grouped(&mut wave, p, (s, id));
                }
            }
            if wave.is_empty() {
                break;
            }
            let attempts: usize = wave.iter().map(|(_, items)| items.len()).sum();
            EngineStats::add(&self.sys.stats.read_replica_fallbacks, attempts as u64);
            self.sys.stats.record_fanout(wave.len());
            let jobs: Vec<_> = wave
                .into_iter()
                .map(|(provider, items)| {
                    let providers = Arc::clone(&self.sys.providers);
                    move || {
                        let ids: Vec<BlockId> = items.iter().map(|&(_, id)| id).collect();
                        let results = providers.get_many(provider, &ids);
                        (items, results)
                    }
                })
                .collect();
            for (items, results) in self.sys.exec.fanout(jobs) {
                for (&(s, _), result) in items.iter().zip(results) {
                    let (i, _, last_err) = &mut states[s];
                    match result {
                        Ok(block) => fetched[*i] = Some(block),
                        Err(e) => *last_err = e,
                    }
                }
            }
        }
        // `states` is in item order, so the surfaced error is the lowest
        // unrecovered index's — deterministic, like the serial path's.
        for (i, _, last_err) in states {
            if fetched[i].is_none() {
                return Err(last_err);
            }
        }
        Ok(())
    }

    /// The data-location primitive backing Hadoop's affinity scheduling
    /// (§IV-C). Returns one entry per block overlapping the range, with the
    /// nodes hosting its replicas.
    pub fn locations(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        size: u64,
    ) -> Result<Vec<BlockLocation>> {
        let info = self.resolve(blob, version)?;
        self.check_bounds(offset, size, info.size)?;
        if size == 0 {
            return Ok(Vec::new());
        }
        let bs = self.sys.cfg.block_size;
        let query = BlockRange::of_bytes(offset, size, bs);
        let located = self
            .sys
            .tree()
            .locate(info.root_blob, info.version, info.cap, query)?;
        let spans = ByteRange::new(offset, size).block_spans(bs);
        Ok(spans
            .zip(located)
            .map(|(span, loc)| BlockLocation {
                range: span.absolute(bs),
                block_index: loc.index,
                nodes: loc
                    .desc
                    .map(|d| {
                        d.providers
                            .iter()
                            .map(|&p| self.sys.providers.node(p as usize))
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect())
    }

    /// Overflow-safe range check: `offset + size` saturates instead of
    /// wrapping, so a huge offset fails with [`Error::OutOfBounds`] rather
    /// than slipping past the guard (release) or panicking (debug).
    fn check_bounds(&self, offset: u64, size: u64, snapshot_size: u64) -> Result<()> {
        match offset.checked_add(size) {
            Some(end) if end <= snapshot_size => Ok(()),
            _ => Err(Error::OutOfBounds {
                requested_end: offset.saturating_add(size),
                snapshot_size,
            }),
        }
    }

    pub(crate) fn resolve(&self, blob: BlobId, version: Option<Version>) -> Result<SnapshotInfo> {
        match version {
            None => {
                let (v, _) = self.sys.vm.latest(blob)?;
                self.sys.vm.snapshot_info(blob, v)
            }
            Some(v) => {
                let info = self.sys.vm.snapshot_info(blob, v)?;
                if !info.revealed {
                    return Err(Error::VersionNotRevealed {
                        blob: blob.raw(),
                        version: v.raw(),
                    });
                }
                Ok(info)
            }
        }
    }
}
