//! Convenience helpers over the FileSystem API.

use crate::api::{DfsInput, FileSystem};
use blobseer_types::Result;

/// Reads an entire file into memory.
pub fn read_fully(fs: &dyn FileSystem, path: &str) -> Result<Vec<u8>> {
    let mut input = fs.open(path)?;
    let mut out = vec![0u8; input.len() as usize];
    input.read_exact(&mut out)?;
    Ok(out)
}

/// Creates (overwriting) a file with the given contents.
pub fn write_file(fs: &dyn FileSystem, path: &str, data: &[u8]) -> Result<()> {
    let mut out = fs.create(path, true)?;
    out.write(data)?;
    out.close()
}

/// An iterator over `\n`-terminated lines of a [`DfsInput`], reading the
/// underlying stream in small records the way Hadoop's text input format
/// does ("Hadoop manipulates data sequentially in small chunks of a few KB
/// … at a time", §IV-B). The stream's own block cache absorbs the small
/// reads.
pub struct LineReader<I> {
    input: I,
    buf: Vec<u8>,
    buf_pos: usize,
    buf_len: usize,
    chunk: usize,
    /// Byte offset within the file where the *next* line starts.
    next_line_offset: u64,
    done: bool,
}

impl<I: DfsInput> LineReader<I> {
    /// Wraps `input`, issuing reads of `chunk` bytes (Hadoop uses 4 KB).
    pub fn with_chunk_size(input: I, chunk: usize) -> Self {
        assert!(chunk > 0);
        Self {
            next_line_offset: input.pos(),
            input,
            buf: vec![0; chunk],
            buf_pos: 0,
            buf_len: 0,
            chunk,
            done: false,
        }
    }

    /// Wraps `input` with the conventional 4 KB record read size.
    pub fn new(input: I) -> Self {
        Self::with_chunk_size(input, 4 * 1024)
    }

    /// Offset within the file at which the next returned line starts.
    pub fn next_offset(&self) -> u64 {
        self.next_line_offset
    }

    /// Reads the next line (without the trailing `\n`) into `line`.
    /// Returns `false` at end of stream. The final line needs no trailing
    /// newline.
    pub fn read_line(&mut self, line: &mut Vec<u8>) -> Result<bool> {
        line.clear();
        if self.done {
            return Ok(false);
        }
        loop {
            if self.buf_pos == self.buf_len {
                self.buf_len = self.input.read(&mut self.buf[..self.chunk])?;
                self.buf_pos = 0;
                if self.buf_len == 0 {
                    self.done = true;
                    let produced = !line.is_empty();
                    if produced {
                        self.next_line_offset += line.len() as u64;
                    }
                    return Ok(produced);
                }
            }
            let rest = &self.buf[self.buf_pos..self.buf_len];
            match rest.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&rest[..i]);
                    self.buf_pos += i + 1;
                    self.next_line_offset += line.len() as u64 + 1;
                    return Ok(true);
                }
                None => {
                    line.extend_from_slice(rest);
                    self.buf_pos = self.buf_len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{Error, Result};

    /// A trivial in-memory DfsInput for testing the helpers.
    struct MemInput {
        data: Vec<u8>,
        pos: u64,
    }

    impl DfsInput for MemInput {
        fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
            let rest = &self.data[self.pos as usize..];
            let n = rest.len().min(buf.len());
            buf[..n].copy_from_slice(&rest[..n]);
            self.pos += n as u64;
            Ok(n)
        }
        fn seek(&mut self, pos: u64) -> Result<()> {
            if pos > self.data.len() as u64 {
                return Err(Error::OutOfBounds {
                    requested_end: pos,
                    snapshot_size: self.data.len() as u64,
                });
            }
            self.pos = pos;
            Ok(())
        }
        fn pos(&self) -> u64 {
            self.pos
        }
        fn len(&self) -> u64 {
            self.data.len() as u64
        }
    }

    fn mem(data: &[u8]) -> MemInput {
        MemInput {
            data: data.to_vec(),
            pos: 0,
        }
    }

    #[test]
    fn lines_split_on_newline() {
        let mut r = LineReader::with_chunk_size(mem(b"alpha\nbeta\ngamma\n"), 4);
        let mut line = Vec::new();
        let mut seen = Vec::new();
        while r.read_line(&mut line).unwrap() {
            seen.push(String::from_utf8(line.clone()).unwrap());
        }
        assert_eq!(seen, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn final_line_without_newline() {
        let mut r = LineReader::with_chunk_size(mem(b"one\ntwo"), 3);
        let mut line = Vec::new();
        assert!(r.read_line(&mut line).unwrap());
        assert_eq!(line, b"one");
        assert!(r.read_line(&mut line).unwrap());
        assert_eq!(line, b"two");
        assert!(!r.read_line(&mut line).unwrap());
        assert!(!r.read_line(&mut line).unwrap(), "stays done");
    }

    #[test]
    fn empty_lines_and_empty_stream() {
        let mut r = LineReader::new(mem(b"\n\nx\n"));
        let mut line = Vec::new();
        assert!(r.read_line(&mut line).unwrap());
        assert!(line.is_empty());
        assert!(r.read_line(&mut line).unwrap());
        assert!(line.is_empty());
        assert!(r.read_line(&mut line).unwrap());
        assert_eq!(line, b"x");
        assert!(!r.read_line(&mut line).unwrap());

        let mut r = LineReader::new(mem(b""));
        assert!(!r.read_line(&mut line).unwrap());
    }

    #[test]
    fn next_offset_tracks_line_starts() {
        let mut r = LineReader::with_chunk_size(mem(b"ab\ncdef\ng"), 2);
        let mut line = Vec::new();
        assert_eq!(r.next_offset(), 0);
        r.read_line(&mut line).unwrap();
        assert_eq!(r.next_offset(), 3);
        r.read_line(&mut line).unwrap();
        assert_eq!(r.next_offset(), 8);
        r.read_line(&mut line).unwrap();
        assert_eq!(r.next_offset(), 9);
    }

    #[test]
    fn read_exact_past_end_errors() {
        let mut input = mem(b"abc");
        let mut buf = [0u8; 4];
        assert!(input.read_exact(&mut buf).is_err());
    }
}
