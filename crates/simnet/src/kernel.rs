//! The event loop: clock, ordered queue, `FnOnce` handlers.
//!
//! The simulator is generic over a user-supplied *world* type `W`. Handlers
//! receive `(&mut W, &mut Scheduler<W>)`, so they can freely mutate world
//! state and schedule further events without fighting the borrow checker.
//! Events with equal timestamps fire in scheduling order (a monotonically
//! increasing sequence number breaks ties), which makes every run
//! deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Boxed event handler.
type Handler<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// Handle to a scheduled event, usable with [`Scheduler::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventId(u64);

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    handler: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The clock plus the pending-event queue.
///
/// Handlers receive a `&mut Scheduler<W>` so they can schedule follow-up
/// events; the world itself lives in [`Sim`].
pub struct Scheduler<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    /// Seqs of every event still in `queue` and not canceled. Keeping this
    /// alongside the tombstone set makes [`cancel`](Self::cancel) a safe
    /// no-op for already-fired ids and keeps `events_pending` exact.
    pending: HashSet<u64>,
    canceled: HashSet<u64>,
    seq: u64,
    processed: u64,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            pending: HashSet::new(),
            canceled: HashSet::new(),
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (canceled ones excluded).
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.pending.len()
    }

    /// Schedules `handler` to run `delay` from now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, handler: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now + delay, handler)
    }

    /// Schedules `handler` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — time travel would break
    /// causality and determinism.
    pub fn schedule_at<F>(&mut self, at: SimTime, handler: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?}, now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            handler: Box::new(handler),
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a pending event. A canceled event neither runs nor advances
    /// the clock — as if it was never scheduled — which keeps
    /// `run_until_idle`'s final time equal to the last *effectful* event
    /// (the flow pump re-arms its wake-up on every rate change and cancels
    /// the superseded one through this).
    ///
    /// Canceling an event that already fired or was already canceled is a
    /// no-op; returns whether the event was actually pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let was_pending = self.pending.remove(&id.0);
        if was_pending {
            self.canceled.insert(id.0);
        }
        was_pending
    }

    /// Drops canceled events sitting at the front of the queue so `peek`
    /// only ever observes live events.
    fn skip_canceled(&mut self) {
        while let Some(ev) = self.queue.peek() {
            if self.canceled.remove(&ev.seq) {
                self.queue.pop();
            } else {
                break;
            }
        }
    }
}

/// A simulation: a world plus its scheduler.
pub struct Sim<W> {
    /// The user world. Public so drivers can inspect/modify state between
    /// `run_*` calls.
    pub world: W,
    sched: Scheduler<W>,
}

impl<W> Sim<W> {
    /// Creates a simulation at time zero over `world`.
    pub fn new(world: W) -> Self {
        Self {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Access to the scheduler (for scheduling from outside handlers).
    #[inline]
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.sched.events_processed()
    }

    /// Schedules `handler` to run `delay` from now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, handler: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.sched.schedule_in(delay, handler);
    }

    /// Schedules `handler` at the absolute instant `at`.
    pub fn schedule_at<F>(&mut self, at: SimTime, handler: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.sched.schedule_at(at, handler);
    }

    /// Runs a single event if one is pending. Returns `true` if an event ran.
    pub fn step(&mut self) -> bool {
        self.sched.skip_canceled();
        let Some(ev) = self.sched.queue.pop() else {
            return false;
        };
        self.sched.pending.remove(&ev.seq);
        debug_assert!(ev.at >= self.sched.now);
        self.sched.now = ev.at;
        self.sched.processed += 1;
        (ev.handler)(&mut self.world, &mut self.sched);
        true
    }

    /// Runs until the event queue drains. Returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Runs events with timestamps `<= horizon`; the clock then advances to
    /// `horizon` (even if idle earlier). Later events stay queued.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        loop {
            self.sched.skip_canceled();
            match self.sched.queue.peek() {
                Some(ev) if ev.at <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.sched.now < horizon {
            self.sched.now = horizon;
        }
        self.sched.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(W::default());
        sim.schedule_in(SimDuration::from_millis(20), |w: &mut W, s| {
            w.log.push((s.now().as_millis(), "late"))
        });
        sim.schedule_in(SimDuration::from_millis(10), |w: &mut W, s| {
            w.log.push((s.now().as_millis(), "early"))
        });
        sim.run_until_idle();
        assert_eq!(sim.world.log, vec![(10, "early"), (20, "late")]);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Sim::new(W::default());
        for name in ["a", "b", "c"] {
            sim.schedule_in(SimDuration::from_millis(5), move |w: &mut W, _| {
                w.log.push((0, name))
            });
        }
        sim.run_until_idle();
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn handlers_can_chain() {
        let mut sim = Sim::new(W::default());
        sim.schedule_in(SimDuration::from_secs(1), |w: &mut W, s| {
            w.log.push((s.now().as_millis(), "first"));
            s.schedule_in(SimDuration::from_secs(1), |w: &mut W, s| {
                w.log.push((s.now().as_millis(), "second"));
            });
        });
        let end = sim.run_until_idle();
        assert_eq!(end.as_millis(), 2000);
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Sim::new(W::default());
        sim.schedule_in(SimDuration::from_millis(10), |w: &mut W, _| {
            w.log.push((0, "in"))
        });
        sim.schedule_in(SimDuration::from_millis(100), |w: &mut W, _| {
            w.log.push((0, "out"))
        });
        sim.run_until(SimTime::from_nanos(50_000_000));
        assert_eq!(sim.world.log.len(), 1);
        assert_eq!(sim.now().as_millis(), 50, "clock advances to the horizon");
        sim.run_until_idle();
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(W::default());
        sim.schedule_in(SimDuration::from_secs(1), |_: &mut W, s| {
            s.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run_until_idle();
    }

    #[test]
    fn canceled_events_neither_run_nor_advance_the_clock() {
        let mut sim = Sim::new(W::default());
        let id = sim
            .scheduler()
            .schedule_in(SimDuration::from_millis(50), |w: &mut W, _| {
                w.log.push((0, "canceled"))
            });
        sim.schedule_in(SimDuration::from_millis(10), |w: &mut W, _| {
            w.log.push((0, "live"))
        });
        assert_eq!(sim.scheduler().events_pending(), 2);
        assert!(sim.scheduler().cancel(id));
        assert_eq!(sim.scheduler().events_pending(), 1);
        let end = sim.run_until_idle();
        assert_eq!(sim.world.log, vec![(0, "live")]);
        assert_eq!(end.as_millis(), 10, "clock stops at the last live event");
        // Cancel after the fact (fired or already-canceled id): safe no-op.
        assert!(!sim.scheduler().cancel(id));
        assert_eq!(sim.scheduler().events_pending(), 0);
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut sim = Sim::new(W::default());
        assert!(!sim.step());
        sim.schedule_in(SimDuration::ZERO, |_: &mut W, _| {});
        assert!(sim.step());
        assert!(!sim.step());
    }
}
