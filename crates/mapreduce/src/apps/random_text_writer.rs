//! RandomTextWriter (§V-G): "representative of a distributed job consisting
//! in a large number of tasks each of which needs to write a large amount
//! of output data (with no interaction among the tasks)".
//!
//! Map-only: each mapper generates `bytes_per_mapper` of random sentences
//! and the engine stores each mapper's output as a separate part file. The
//! access pattern is "concurrent, massively parallel writes, each of them
//! writing to a different file".

use crate::job::{Emit, InputSpec, JobSpec, Mapper};
use crate::textgen::TextGen;

/// The RandomTextWriter mapper.
pub struct RandomTextWriter {
    /// Output volume per mapper, in bytes (the paper sweeps 128 MB → 6.4 GB).
    pub bytes_per_mapper: u64,
    /// Base RNG seed; combined with the mapper id for distinct streams.
    pub seed: u64,
}

impl RandomTextWriter {
    /// A job spec running `mappers` generator tasks into `output_dir`.
    pub fn job(mappers: usize, output_dir: &str) -> JobSpec {
        JobSpec::new(
            "random-text-writer",
            InputSpec::Generated { splits: mappers },
            output_dir,
            0,
        )
    }
}

impl Mapper for RandomTextWriter {
    fn map(&self, split_id: u64, _value: &[u8], out: &mut Emit<'_>) {
        let mut gen = TextGen::new(self.seed ^ (split_id.wrapping_mul(0x9E37_79B9)));
        let mut produced = 0u64;
        let mut sentence = Vec::new();
        while produced < self.bytes_per_mapper {
            sentence.clear();
            let n = gen.sentence_into(&mut sentence);
            out(&sentence, b"");
            produced += n as u64 + 1; // +1 for the record separator
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_volume() {
        let app = RandomTextWriter {
            bytes_per_mapper: 10_000,
            seed: 1,
        };
        let mut total = 0usize;
        let mut records = 0usize;
        app.map(0, b"", &mut |k, v| {
            assert!(v.is_empty());
            total += k.len() + 1;
            records += 1;
        });
        assert!(total >= 10_000);
        assert!(total < 10_300, "overshoot bounded by one sentence");
        assert!(records > 50);
    }

    #[test]
    fn mappers_generate_distinct_streams() {
        let app = RandomTextWriter {
            bytes_per_mapper: 500,
            seed: 1,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        app.map(0, b"", &mut |k, _| a.extend_from_slice(k));
        app.map(1, b"", &mut |k, _| b.extend_from_slice(k));
        assert_ne!(a, b);
    }

    #[test]
    fn job_spec_is_map_only() {
        let job = RandomTextWriter::job(50, "/out");
        assert_eq!(job.reducers, 0);
        match job.input {
            InputSpec::Generated { splits } => assert_eq!(splits, 50),
            _ => panic!("expected generated input"),
        }
    }
}
