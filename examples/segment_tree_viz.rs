//! Reproduces Figure 1 of the paper: the evolution of the distributed
//! segment tree metadata across three operations on a BLOB —
//!
//!   (a) append four blocks to an empty BLOB,
//!   (b) overwrite the first two blocks,
//!   (c) append one more block (tree capacity grows 4 → 8).
//!
//! The example performs the real operations on the live engine and renders
//! which tree nodes each version *materialized* and which it shares with
//! earlier versions.
//!
//! ```text
//! cargo run --example segment_tree_viz
//! ```

use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::BlobSeer;
use blobseer_types::{BlobId, BlobSeerConfig, NodeId, Version};

const BLOCK: u64 = 64; // tiny blocks: content is irrelevant here

fn render_tree(sys: &BlobSeer, blob: BlobId, version: Version, cap: u64) {
    // Walk positions level by level; query the DHT for each (version,pos)
    // to see which version materialized the node reachable there.
    println!("  version {version} (capacity {cap} blocks):");
    let mut len = cap;
    while len >= 1 {
        let mut row = String::from("    ");
        let mut start = 0;
        while start + len <= cap {
            let pos = Pos::new(start, len);
            // Find the owning version by probing from `version` downward —
            // exactly what a woven child reference encodes.
            let owner = (1..=version.raw()).rev().find(|&v| {
                sys.dht()
                    .get(&NodeKey::new(blob, Version::new(v), pos))
                    .is_ok()
            });
            let cell = match owner {
                Some(v) if v == version.raw() => format!("[({start},{len}) NEW v{v}]"),
                Some(v) => format!("[({start},{len}) →v{v}]"),
                None => format!("[({start},{len}) hole]"),
            };
            row.push_str(&format!("{cell:^20}"));
            start += len;
        }
        println!("{row}");
        if len == 1 {
            break;
        }
        len /= 2;
    }
}

fn main() {
    let sys = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(BLOCK)
            .with_metadata_providers(4),
        4,
    );
    let client = sys.client(NodeId::new(0));
    let blob = client.create();

    println!("Fig. 1(a): append of four blocks to an empty BLOB\n");
    client
        .append(blob, &vec![1u8; (4 * BLOCK) as usize])
        .unwrap();
    render_tree(&sys, blob, Version::new(1), 4);

    println!("\nFig. 1(b): overwrite of the first two blocks\n");
    client
        .write(blob, 0, &vec![2u8; (2 * BLOCK) as usize])
        .unwrap();
    render_tree(&sys, blob, Version::new(2), 4);
    println!("  → the right subtree (2,2) is shared with v1, not rebuilt");

    println!("\nFig. 1(c): append of one more block (capacity 4 → 8)\n");
    client.append(blob, &vec![3u8; BLOCK as usize]).unwrap();
    render_tree(&sys, blob, Version::new(3), 8);
    println!("  → the old root (0,4) is shared with v2; only the new right");
    println!("    spine (4,4) → (4,2) → leaf (4,1) and the new root were built");

    let stats = sys.stats().snapshot();
    println!(
        "\ntotal metadata nodes written: {} (v1: 7, v2: 4, v3: 4 — matching Fig. 1)",
        stats.meta_nodes_written
    );
    assert_eq!(stats.meta_nodes_written, 15);
}
