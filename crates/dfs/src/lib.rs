//! `dfs` — the distributed-file-system API shared by BSFS and the HDFS
//! baseline.
//!
//! Hadoop accesses its storage "through a clean, specific Java API …
//! \[exposing\] the basic operations of a file system: read, write, append"
//! (§IV). The paper's whole methodology rests on swapping implementations
//! behind that API; this crate is the Rust equivalent. The Map/Reduce
//! engine is written exclusively against [`FileSystem`], so benchmarks and
//! applications run unmodified on either backend — just like Hadoop jobs
//! ran "out-of-the-box" on BSFS (§V-B).
#![forbid(unsafe_code)]

pub mod api;
pub mod conformance;
pub mod path;
pub mod util;

pub use api::{DfsInput, DfsOutput, FileStatus, FileSystem, FsBlockLocation};
pub use path::DfsPath;
pub use util::{read_fully, write_file, LineReader};
