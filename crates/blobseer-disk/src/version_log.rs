//! A durable version manager: the in-memory [`VersionManager`] behind a
//! replayable **operation log**.
//!
//! The version manager is the protocol's only serialization point
//! (§III-A.4), and that is exactly what makes it cheap to persist: its
//! state is a pure function of the sequence of successful mutating calls
//! it has served, and because blob ids and versions are handed out
//! sequentially, replaying that sequence against a fresh manager
//! reproduces the *identical* state — same ids, same versions, same
//! reveal order. So instead of snapshotting the manager's interior
//! (write logs, branch ancestry, collection watermarks), the wrapper
//! appends one small frame per successful mutation and rebuilds by
//! replay on open.
//!
//! Each recorded mutation carries the result the original call returned
//! (the assigned blob id or version), and replay *verifies* it: if a
//! replayed `create_blob` hands out a different id than the log recorded,
//! the log is from a different history than it claims and the open fails
//! with [`Error::Storage`] rather than serving diverged versions.
//!
//! The log lock is held **across** the inner call for mutating
//! operations, so log order always equals execution order — without
//! that, two racing `create_blob`s could log in the opposite order of
//! their id assignment and replay would verify-fail. Read-only calls
//! (`latest`, `snapshot_info`, `chain`, `wait_revealed`, …) bypass the
//! log entirely and keep the manager's native concurrency.

use crate::frame::FrameLog;
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::ports::VersionService;
use blobseer_core::version_manager::{SnapshotInfo, VersionManager, WriteIntent, WriteTicket};
use blobseer_core::EngineStats;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, Error, Result, Version};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const REC_HEADER: u8 = 0;
const REC_CREATE: u8 = 1;
const REC_BRANCH: u8 = 2;
const REC_ASSIGN: u8 = 3;
const REC_COMMIT: u8 = 4;
const REC_DELETE: u8 = 5;
const REC_COLLECT: u8 = 6;

const INTENT_WRITE: u8 = 0;
const INTENT_APPEND: u8 = 1;

fn put_intent(w: &mut WireWriter, intent: WriteIntent) {
    match intent {
        WriteIntent::Write { offset, size } => {
            w.put_u8(INTENT_WRITE);
            w.put_u64(offset);
            w.put_u64(size);
        }
        WriteIntent::Append { size } => {
            w.put_u8(INTENT_APPEND);
            w.put_u64(size);
        }
    }
}

fn get_intent(r: &mut WireReader<'_>) -> Result<WriteIntent> {
    match r.get_u8()? {
        INTENT_WRITE => Ok(WriteIntent::Write {
            offset: r.get_u64()?,
            size: r.get_u64()?,
        }),
        INTENT_APPEND => Ok(WriteIntent::Append { size: r.get_u64()? }),
        t => Err(Error::Storage(format!(
            "version log: unknown write-intent tag {t}"
        ))),
    }
}

fn replay_err(path: &Path, why: impl std::fmt::Display) -> Error {
    Error::Storage(format!("{}: version log replay: {why}", path.display()))
}

/// A [`VersionService`] whose state survives restart: an in-memory
/// [`VersionManager`] plus the operation log it is the replay of.
pub struct DurableVersionService {
    path: PathBuf,
    block_size: u64,
    inner: Mutex<(VersionManager, FrameLog)>,
}

fn fresh_manager(block_size: u64) -> VersionManager {
    VersionManager::new(block_size, Arc::new(EngineStats::new()))
}

fn load(path: &Path, block_size: u64) -> Result<(VersionManager, FrameLog)> {
    let vm = fresh_manager(block_size);
    let mut saw_header = false;
    let log = FrameLog::open_with(path, |_, payload| {
        let mut r = WireReader::new(payload);
        let tag = r.get_u8().map_err(|e| replay_err(path, e))?;
        if !saw_header {
            if tag != REC_HEADER {
                return Err(replay_err(path, "first record is not a header"));
            }
            let logged = r.get_u64().map_err(|e| replay_err(path, e))?;
            if logged != block_size {
                return Err(replay_err(
                    path,
                    format!(
                        "log was written with block size {logged}, deployment wants {block_size}"
                    ),
                ));
            }
            saw_header = true;
            return Ok(());
        }
        match tag {
            REC_CREATE => {
                let recorded = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let got = vm.create_blob();
                if got != recorded {
                    return Err(replay_err(
                        path,
                        format!("create_blob replayed to {got}, log recorded {recorded}"),
                    ));
                }
            }
            REC_BRANCH => {
                let parent = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let at = Version::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let recorded = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let got = vm.branch(parent, at).map_err(|e| replay_err(path, e))?;
                if got != recorded {
                    return Err(replay_err(
                        path,
                        format!("branch replayed to {got}, log recorded {recorded}"),
                    ));
                }
            }
            REC_ASSIGN => {
                let blob = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let intent = get_intent(&mut r).map_err(|e| replay_err(path, e))?;
                let recorded = Version::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let ticket = vm.assign(blob, intent).map_err(|e| replay_err(path, e))?;
                if ticket.version != recorded {
                    return Err(replay_err(
                        path,
                        format!(
                            "assign replayed to version {}, log recorded {recorded}",
                            ticket.version
                        ),
                    ));
                }
            }
            REC_COMMIT => {
                let blob = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let version = Version::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                vm.commit(blob, version).map_err(|e| replay_err(path, e))?;
            }
            REC_DELETE => {
                let blob = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                vm.delete_blob(blob).map_err(|e| replay_err(path, e))?;
            }
            REC_COLLECT => {
                let blob = BlobId::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                let keep_from = Version::new(r.get_u64().map_err(|e| replay_err(path, e))?);
                vm.collect_before(blob, keep_from)
                    .map_err(|e| replay_err(path, e))?;
            }
            t => return Err(replay_err(path, format!("unknown record tag {t}"))),
        }
        Ok(())
    })?;
    let mut log = log;
    if !saw_header {
        // Fresh (or fully torn) log: stamp the header now so a reopened
        // deployment can validate its block size against ours.
        let mut w = WireWriter::new();
        w.put_u8(REC_HEADER);
        w.put_u64(block_size);
        log.append(&w.into_vec())?;
    }
    Ok((vm, log))
}

impl DurableVersionService {
    /// Opens (or creates) the operation log at `path` and replays it into
    /// a fresh [`VersionManager`] configured for `block_size`.
    ///
    /// Fails with [`Error::Storage`] when the log was written under a
    /// different block size or replays to different ids/versions than it
    /// recorded.
    pub fn open(path: impl Into<PathBuf>, block_size: u64) -> Result<Self> {
        let path = path.into();
        let inner = load(&path, block_size)?;
        Ok(Self {
            path,
            block_size,
            inner: Mutex::named(inner, "disk.version_log.inner"),
        })
    }

    /// Simulates a restart in place: re-replays the log into a fresh
    /// manager. Pending (assigned-but-uncommitted) versions replay as
    /// pending again — commit order, not assignment order, decides what
    /// is revealed, exactly as before the restart.
    pub fn reopen(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        *inner = load(&self.path, self.block_size)?;
        Ok(())
    }

    /// The operation-log file (crash tests truncate it at chosen offsets).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Forces logged operations to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().1.sync()
    }

    /// Runs a mutating call and, on success, logs the frame `record`
    /// builds from the result — all under the log lock, so log order is
    /// execution order.
    fn mutate<T>(
        &self,
        call: impl FnOnce(&VersionManager) -> Result<T>,
        record: impl FnOnce(&T, &mut WireWriter),
    ) -> Result<T> {
        let mut inner = self.inner.lock();
        let (vm, log) = &mut *inner;
        let out = call(vm)?;
        let mut w = WireWriter::new();
        record(&out, &mut w);
        log.append(&w.into_vec())?;
        Ok(out)
    }
}

impl VersionService for DurableVersionService {
    fn block_size(&self) -> u64 {
        self.block_size
    }

    fn create_blob(&self) -> Result<BlobId> {
        self.mutate(
            |vm| Ok(vm.create_blob()),
            |id, w| {
                w.put_u8(REC_CREATE);
                w.put_u64(id.raw());
            },
        )
    }

    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        self.mutate(
            |vm| vm.branch(parent, at),
            |id, w| {
                w.put_u8(REC_BRANCH);
                w.put_u64(parent.raw());
                w.put_u64(at.raw());
                w.put_u64(id.raw());
            },
        )
    }

    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        self.mutate(
            |vm| vm.assign(blob, intent),
            |ticket, w| {
                w.put_u8(REC_ASSIGN);
                w.put_u64(blob.raw());
                put_intent(w, intent);
                w.put_u64(ticket.version.raw());
            },
        )
    }

    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        self.mutate(
            |vm| vm.commit(blob, version),
            |_, w| {
                w.put_u8(REC_COMMIT);
                w.put_u64(blob.raw());
                w.put_u64(version.raw());
            },
        )
    }

    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        self.inner.lock().0.latest(blob)
    }

    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        self.inner.lock().0.snapshot_info(blob, version)
    }

    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        self.inner.lock().0.chain(blob)
    }

    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        // Cloning the wait out from under the log lock is impossible with
        // the manager owned by the mutex; poll instead. Reveal latency in
        // the disk deployment is bounded by commit calls, which are fast.
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self
                .inner
                .lock()
                .0
                .wait_revealed(blob, version, Duration::ZERO)
            {
                Err(Error::Timeout(_)) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        self.inner.lock().0.pending_versions(blob)
    }

    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        self.mutate(
            |vm| vm.delete_blob(blob),
            |_, w| {
                w.put_u8(REC_DELETE);
                w.put_u64(blob.raw());
            },
        )
    }

    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        self.mutate(
            |vm| vm.collect_before(blob, keep_from),
            |_, w| {
                w.put_u8(REC_COLLECT);
                w.put_u64(blob.raw());
                w.put_u64(keep_from.raw());
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn log_path(tmp: &TempDir) -> PathBuf {
        tmp.path().join("version.log")
    }

    #[test]
    fn versions_survive_close_and_reopen() {
        let tmp = TempDir::new("vm-reopen");
        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        let blob = vm.create_blob().unwrap();
        let t1 = vm.assign(blob, WriteIntent::Append { size: 128 }).unwrap();
        vm.commit(blob, t1.version).unwrap();
        let t2 = vm
            .assign(
                blob,
                WriteIntent::Write {
                    offset: 0,
                    size: 64,
                },
            )
            .unwrap();
        vm.commit(blob, t2.version).unwrap();
        drop(vm);

        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        assert_eq!(vm.latest(blob).unwrap(), (Version::new(2), 128));
        assert_eq!(vm.snapshot_info(blob, Version::new(1)).unwrap().size, 128);
        // Sequential id allocation resumes where the log left off.
        assert_eq!(vm.create_blob().unwrap(), BlobId::new(2));
    }

    #[test]
    fn pending_versions_replay_as_pending() {
        let tmp = TempDir::new("vm-pending");
        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        let blob = vm.create_blob().unwrap();
        let t1 = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
        let t2 = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(blob, t1.version).unwrap();
        // t2 assigned but never committed before the "crash".
        vm.reopen().unwrap();
        assert_eq!(vm.latest(blob).unwrap().0, t1.version);
        assert_eq!(vm.pending_versions(blob).unwrap(), vec![t2.version]);
        // The writer can still finish after the restart.
        vm.commit(blob, t2.version).unwrap();
        assert_eq!(vm.latest(blob).unwrap(), (t2.version, 128));
    }

    #[test]
    fn branches_and_gc_survive_reopen() {
        let tmp = TempDir::new("vm-branch");
        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        let blob = vm.create_blob().unwrap();
        for _ in 0..3 {
            let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
            vm.commit(blob, t.version).unwrap();
        }
        let fork = vm.branch(blob, Version::new(2)).unwrap();
        let roots = vm.collect_before(blob, Version::new(2)).unwrap();
        vm.reopen().unwrap();
        assert_eq!(vm.latest(fork).unwrap(), (Version::new(2), 128));
        // Collected versions stay collected: a second sweep finds nothing.
        assert!(!roots.is_empty());
        assert!(vm.collect_before(blob, Version::new(2)).unwrap().is_empty());
        // And the fork still branches from live history.
        let t = vm.assign(fork, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(fork, t.version).unwrap();
        assert_eq!(vm.latest(fork).unwrap().1, 192);
    }

    #[test]
    fn deleted_blobs_stay_deleted() {
        let tmp = TempDir::new("vm-delete");
        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        let a = vm.create_blob().unwrap();
        let b = vm.create_blob().unwrap();
        let t = vm.assign(b, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(b, t.version).unwrap();
        vm.delete_blob(a).unwrap();
        vm.reopen().unwrap();
        assert!(vm.latest(a).is_err());
        assert_eq!(vm.latest(b).unwrap(), (Version::new(1), 64));
    }

    #[test]
    fn failed_mutations_are_not_logged() {
        let tmp = TempDir::new("vm-failed");
        let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
        let blob = vm.create_blob().unwrap();
        assert!(vm.assign(blob, WriteIntent::Append { size: 0 }).is_err());
        assert!(vm.branch(BlobId::new(99), Version::new(1)).is_err());
        // A log polluted with failed ops would fail this replay.
        vm.reopen().unwrap();
        assert_eq!(vm.latest(blob).unwrap().0, Version::ZERO);
    }

    #[test]
    fn block_size_mismatch_is_rejected() {
        let tmp = TempDir::new("vm-blocksize");
        {
            let vm = DurableVersionService::open(log_path(&tmp), 64).unwrap();
            vm.create_blob().unwrap();
        }
        let err = match DurableVersionService::open(log_path(&tmp), 128) {
            Err(e) => e,
            Ok(_) => panic!("block-size mismatch accepted"),
        };
        assert!(matches!(err, Error::Storage(_)), "{err}");
    }

    #[test]
    fn wait_revealed_crosses_threads() {
        let tmp = TempDir::new("vm-wait");
        let vm = Arc::new(DurableVersionService::open(log_path(&tmp), 64).unwrap());
        let blob = vm.create_blob().unwrap();
        let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
        let waiter = {
            let vm = Arc::clone(&vm);
            std::thread::spawn(move || vm.wait_revealed(blob, t.version, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        vm.commit(blob, t.version).unwrap();
        waiter.join().unwrap().unwrap();
    }
}
