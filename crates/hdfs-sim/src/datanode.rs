//! Datanodes: the chunk servers of HDFS (§II-B).
//!
//! Chunks are mutable while a file is under construction (the writer
//! streams into them and appends may fill a partial tail chunk) and frozen
//! once the namenode marks the file complete — "once written, data cannot
//! be altered" (§II-B). The freeze is enforced here with a sealed flag.

use blobseer_types::{Error, NodeId, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a chunk cluster-wide (allocated by the namenode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

struct Chunk {
    data: Vec<u8>,
    sealed: bool,
}

/// One datanode process.
pub struct DataNode {
    node: NodeId,
    chunks: RwLock<HashMap<ChunkId, Chunk>>,
    bytes_stored: AtomicU64,
}

impl DataNode {
    /// An empty datanode on `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            chunks: RwLock::named(HashMap::new(), "hdfs.datanode.chunks"),
            bytes_stored: AtomicU64::new(0),
        }
    }

    /// The hosting cluster node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stores a new chunk (under construction).
    pub fn put(&self, id: ChunkId, data: Vec<u8>) -> Result<()> {
        let mut chunks = self.chunks.write();
        if chunks.contains_key(&id) {
            return Err(Error::Internal(format!("chunk {id:?} already exists")));
        }
        self.bytes_stored
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        chunks.insert(
            id,
            Chunk {
                data,
                sealed: false,
            },
        );
        Ok(())
    }

    /// Appends bytes to an unsealed chunk (fills a partial tail chunk).
    pub fn extend(&self, id: ChunkId, data: &[u8]) -> Result<()> {
        let mut chunks = self.chunks.write();
        let chunk = chunks.get_mut(&id).ok_or(Error::MissingBlock(id.0))?;
        if chunk.sealed {
            return Err(Error::Internal(format!(
                "chunk {id:?} is sealed — completed HDFS data is immutable"
            )));
        }
        chunk.data.extend_from_slice(data);
        self.bytes_stored
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Seals a chunk when its file completes.
    pub fn seal(&self, id: ChunkId) {
        if let Some(c) = self.chunks.write().get_mut(&id) {
            c.sealed = true;
        }
    }

    /// Reopens a sealed tail chunk for appending (the block-recovery step
    /// an HDFS append performs when the feature is enabled).
    pub fn unseal(&self, id: ChunkId) {
        if let Some(c) = self.chunks.write().get_mut(&id) {
            c.sealed = false;
        }
    }

    /// Reads a whole chunk (copies — HDFS readers stream chunks over TCP).
    pub fn get(&self, id: ChunkId) -> Result<Bytes> {
        self.chunks
            .read()
            .get(&id)
            .map(|c| Bytes::copy_from_slice(&c.data))
            .ok_or(Error::MissingBlock(id.0))
    }

    /// Deletes a chunk; returns bytes freed.
    pub fn delete(&self, id: ChunkId) -> u64 {
        match self.chunks.write().remove(&id) {
            Some(c) => {
                let n = c.data.len() as u64;
                self.bytes_stored.fetch_sub(n, Ordering::Relaxed);
                n
            }
            None => 0,
        }
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.chunks.read().len()
    }

    /// Total payload bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_extend_roundtrip() {
        let dn = DataNode::new(NodeId::new(1));
        dn.put(ChunkId(1), b"abc".to_vec()).unwrap();
        dn.extend(ChunkId(1), b"def").unwrap();
        assert_eq!(&dn.get(ChunkId(1)).unwrap()[..], b"abcdef");
        assert_eq!(dn.bytes_stored(), 6);
        assert_eq!(dn.chunk_count(), 1);
    }

    #[test]
    fn sealed_chunks_are_immutable() {
        let dn = DataNode::new(NodeId::new(1));
        dn.put(ChunkId(1), b"abc".to_vec()).unwrap();
        dn.seal(ChunkId(1));
        assert!(dn.extend(ChunkId(1), b"x").is_err());
        assert_eq!(&dn.get(ChunkId(1)).unwrap()[..], b"abc");
    }

    #[test]
    fn duplicate_put_rejected() {
        let dn = DataNode::new(NodeId::new(1));
        dn.put(ChunkId(1), b"a".to_vec()).unwrap();
        assert!(dn.put(ChunkId(1), b"b".to_vec()).is_err());
    }

    #[test]
    fn delete_frees_space() {
        let dn = DataNode::new(NodeId::new(1));
        dn.put(ChunkId(1), vec![0; 100]).unwrap();
        assert_eq!(dn.delete(ChunkId(1)), 100);
        assert_eq!(dn.delete(ChunkId(1)), 0);
        assert_eq!(dn.bytes_stored(), 0);
        assert!(dn.get(ChunkId(1)).is_err());
    }
}
