//! Crash-consistency tests: the engine's behavior when puts are dropped,
//! delayed, duplicated or refused by the storage fabric — driven through
//! the fault-injecting port decorators (`blobseer_core::faults`).
//!
//! The paper handles writer failure with "minimal mechanisms" (§VI-B):
//! lost data shows up as missing blocks/metadata on read, never as silent
//! corruption, and the immutable versioned history keeps every *other*
//! snapshot readable. These tests pin that contract down.
//!
//! The second half extends the contract to **process crashes over the
//! disk backend** (`blobseer-disk`): a volume or record log truncated at
//! *every possible byte offset* — the image a kill at that exact write
//! offset leaves behind — must reopen to exactly the prefix of fully
//! committed frames, never a panic, never a garbage read.

use blobseer_core::faults::{FaultPlan, FaultyBlockStore, FaultyMetaStore, PutFault};
use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, TreeNode};
use blobseer_core::ports::{MetaStore, VersionService};
use blobseer_core::{BlobSeer, EnginePorts, WriteIntent};
use blobseer_disk::record_log::shard_path;
use blobseer_disk::testutil::TempDir;
use blobseer_disk::volume::volume_path;
use blobseer_disk::{DiskMetaStore, DiskVolume, DurableVersionService};
use blobseer_types::{BlobId, BlobSeerConfig, BlockId, Error, NodeId, Version};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BLOCK: u64 = 64;

struct Rig {
    sys: Arc<BlobSeer>,
    data_plan: Arc<FaultPlan>,
    meta_plan: Arc<FaultPlan>,
    data_store: Arc<FaultyBlockStore>,
    meta_store: Arc<FaultyMetaStore>,
}

/// A deployment whose block store and metadata store are wrapped in
/// independently scriptable fault decorators.
fn rig() -> Rig {
    let cfg = BlobSeerConfig::small_for_tests().with_block_size(BLOCK);
    let base = EnginePorts::in_memory(&cfg, (0..4).map(NodeId::new).collect(), 0x0BAD_5EED);
    let data_plan = FaultPlan::new();
    let meta_plan = FaultPlan::new();
    let data_store = Arc::new(FaultyBlockStore::new(
        Arc::clone(&base.providers),
        Arc::clone(&data_plan),
    ));
    let meta_store = Arc::new(FaultyMetaStore::new(
        Arc::clone(&base.dht),
        Arc::clone(&meta_plan),
    ));
    let ports = EnginePorts {
        providers: Arc::clone(&data_store) as Arc<dyn blobseer_core::BlockStore>,
        dht: Arc::clone(&meta_store) as Arc<dyn blobseer_core::MetaStore>,
        ..base
    };
    Rig {
        sys: BlobSeer::deploy_ports(cfg, ports),
        data_plan,
        meta_plan,
        data_store,
        meta_store,
    }
}

#[test]
fn dropped_data_put_is_detected_on_read_and_healed_by_rewrite() {
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 64]).unwrap();

    // The fabric silently loses the block after acking the put: the write
    // commits, but reading it surfaces MissingBlock — loss is loud, never
    // silent corruption.
    r.data_plan.set(PutFault::Drop);
    let v2 = c.write(blob, 0, &[2u8; 64]).unwrap();
    assert_eq!(r.data_plan.counters().0, 1, "one put dropped");
    assert!(matches!(
        c.read(blob, Some(v2), 0, 64),
        Err(Error::MissingBlock(_))
    ));
    // History before the loss stays fully readable.
    let v1 = c.read(blob, Some(Version::new(1)), 0, 64).unwrap();
    assert!(v1.iter().all(|&b| b == 1));

    // A healthy rewrite of the range heals the latest view.
    r.data_plan.set(PutFault::None);
    let v3 = c.write(blob, 0, &[3u8; 64]).unwrap();
    let data = c.read(blob, Some(v3), 0, 64).unwrap();
    assert!(data.iter().all(|&b| b == 3));
}

#[test]
fn refused_data_put_aborts_before_version_assignment() {
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 64]).unwrap();

    // The provider refuses the put: the data phase fails before the client
    // ever reaches the version manager, so the snapshot history is
    // untouched — no pending version, no stall.
    r.data_plan.set(PutFault::Fail);
    let err = c.write(blob, 0, &[9u8; 64]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert_eq!(c.latest(blob).unwrap().0, Version::new(1));
    assert!(r
        .sys
        .version_manager()
        .pending_versions(blob)
        .unwrap()
        .is_empty());

    // The very next healthy write takes version 2 as if nothing happened.
    r.data_plan.set(PutFault::None);
    assert_eq!(c.write(blob, 0, &[2u8; 64]).unwrap(), Version::new(2));
}

#[test]
fn delayed_metadata_becomes_visible_after_late_arrival() {
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 128]).unwrap();

    // The DHT buffers the writer's tree nodes (in-flight messages): the
    // version commits but its metadata is unreadable until the messages
    // land.
    r.meta_plan.set(PutFault::Delay);
    let v2 = c.write(blob, 64, &[2u8; 64]).unwrap();
    assert!(r.meta_plan.counters().2 > 0, "tree-node puts were delayed");
    assert!(matches!(
        c.read(blob, Some(v2), 0, 128),
        Err(Error::MissingMetadata(_))
    ));

    // Late arrival: the buffered puts apply cleanly (immutable nodes are
    // order-insensitive) and the snapshot becomes readable.
    r.meta_plan.set(PutFault::None);
    r.meta_store.flush_delayed().unwrap();
    let data = c.read(blob, Some(v2), 0, 128).unwrap();
    assert!(data[..64].iter().all(|&b| b == 1));
    assert!(data[64..].iter().all(|&b| b == 2));
}

#[test]
fn duplicated_puts_are_observationally_invisible() {
    let clean = rig();
    let dup = rig();
    for r in [&clean, &dup] {
        if std::ptr::eq(r, &dup) {
            r.data_plan.set(PutFault::Duplicate);
            r.meta_plan.set(PutFault::Duplicate);
        }
        let c = r.sys.client(NodeId::new(0));
        let blob = c.create();
        c.write(blob, 0, &[1u8; 256]).unwrap();
        c.append(blob, &[2u8; 64]).unwrap();
    }
    // Retried-but-delivered RPCs change nothing observable: same stored
    // bytes (no double counting), same node population, same reads.
    assert!(dup.data_plan.counters().3 > 0, "data puts were duplicated");
    assert!(dup.meta_plan.counters().3 > 0, "meta puts were duplicated");
    assert_eq!(
        clean.sys.providers().total_bytes_stored(),
        dup.sys.providers().total_bytes_stored()
    );
    assert_eq!(
        clean.sys.providers().total_block_count(),
        dup.sys.providers().total_block_count()
    );
    assert_eq!(clean.sys.dht().node_count(), dup.sys.dht().node_count());
    let c = dup.sys.client(NodeId::new(0));
    let data = c
        .read(blobseer_types::BlobId::new(1), None, 0, 320)
        .unwrap();
    assert!(data[..256].iter().all(|&b| b == 1));
    assert!(data[256..].iter().all(|&b| b == 2));
    // Sanity: the decorator really exercised the idempotent re-put path.
    let _ = &dup.data_store;
}

#[test]
fn transient_metadata_refusal_self_repairs_the_pipeline() {
    // The version was already assigned when the metadata phase failed: the
    // writer must repair its own version on the way out, or every later
    // write would commit without ever revealing.
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 64]).unwrap();

    r.meta_plan.set(PutFault::FailOnce);
    let err = c.write(blob, 0, &[2u8; 64]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert_eq!(r.meta_plan.counters().1, 1, "exactly one refused put");

    // The failed write's version (v2) was repaired: nothing pending, the
    // repaired snapshot reads as v1's content, and the next write reveals
    // normally as v3.
    assert!(r
        .sys
        .version_manager()
        .pending_versions(blob)
        .unwrap()
        .is_empty());
    assert_eq!(c.latest(blob).unwrap().0, Version::new(2));
    let repaired = c.read(blob, Some(Version::new(2)), 0, 64).unwrap();
    assert!(repaired.iter().all(|&b| b == 1), "repair aliases v1");
    let v3 = c.write(blob, 0, &[3u8; 64]).unwrap();
    assert_eq!(v3, Version::new(3));
    assert_eq!(c.latest(blob).unwrap().0, v3);
}

#[test]
fn conflicting_metadata_reput_is_refused_end_to_end() {
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    let v1 = c.write(blob, 0, &[1u8; 64]).unwrap();

    // A byzantine/diverged writer re-puts the committed root with different
    // content: the DHT refuses in every build profile (the seed silently
    // kept the old node in release builds), and readers keep seeing the
    // original.
    let root = r
        .sys
        .version_manager()
        .snapshot_info(blob, v1)
        .unwrap()
        .root_key();
    let forged = TreeNode::Leaf(BlockDescriptor {
        block_id: BlockId::new(0xDEAD),
        providers: vec![0],
        len: 64,
    });
    let err = r.sys.dht().put(root, forged).unwrap_err();
    assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
    let data = c.read(blob, Some(v1), 0, 64).unwrap();
    assert!(data.iter().all(|&b| b == 1));
}

#[test]
fn refused_data_put_releases_allocation_accounting() {
    // Regression: `allocate` charges provider-manager load for every block
    // up front; the seed's data phase leaked the whole allocation set when
    // a put was refused, skewing placement forever. The failed data phase
    // must undo itself — loads back to baseline, no stored orphans.
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 192]).unwrap(); // 3 blocks, healthy baseline
    let baseline_loads = r.sys.provider_manager().load_vector().unwrap();
    let baseline_blocks = r.sys.providers().total_block_count();

    r.data_plan.set(PutFault::Fail);
    let err = c.write(blob, 0, &[9u8; 256]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert_eq!(
        r.sys.provider_manager().load_vector().unwrap(),
        baseline_loads,
        "refused data phase must release its allocations"
    );
    assert_eq!(r.sys.providers().total_block_count(), baseline_blocks);

    // Same for a mid-payload refusal: the first put lands, the second is
    // refused, and the landed block is deleted with its load released.
    r.data_plan.set(PutFault::None);
    c.append(blob, &[2u8; 64]).unwrap(); // re-align the tail (192 + 64)
    let baseline_loads = r.sys.provider_manager().load_vector().unwrap();
    let baseline_blocks = r.sys.providers().total_block_count();
    r.data_plan.set(PutFault::FailOnce);
    // First put of this 4-block append fails; nothing may leak.
    let err = c.append(blob, &[9u8; 256]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    r.data_plan.set(PutFault::None);
    assert_eq!(
        r.sys.provider_manager().load_vector().unwrap(),
        baseline_loads
    );
    assert_eq!(r.sys.providers().total_block_count(), baseline_blocks);
}

#[test]
fn failed_metadata_publish_releases_orphaned_blocks() {
    // Regression: a write whose data phase stored its blocks but whose
    // metadata publish failed left the blocks (and their load accounting)
    // behind forever — repair republishes *aliases* to the previous
    // version, never these descriptors, so they were pure leaks.
    let r = rig();
    let c = r.sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 128]).unwrap();
    let baseline_loads = r.sys.provider_manager().load_vector().unwrap();
    let baseline_blocks = r.sys.providers().total_block_count();
    let baseline_bytes = r.sys.providers().total_bytes_stored();

    // Transient refusal: the publish fails, the writer self-repairs (the
    // repair's meta puts succeed), and the stored blocks are released.
    r.meta_plan.set(PutFault::FailOnce);
    let err = c.write(blob, 0, &[2u8; 128]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert_eq!(c.latest(blob).unwrap().0, Version::new(2), "repaired");
    assert_eq!(
        r.sys.provider_manager().load_vector().unwrap(),
        baseline_loads,
        "orphaned blocks must release their load accounting"
    );
    assert_eq!(r.sys.providers().total_block_count(), baseline_blocks);
    assert_eq!(r.sys.providers().total_bytes_stored(), baseline_bytes);

    // The repaired history still reads as v1's content and stays healthy
    // for later writes.
    let data = c.read(blob, None, 0, 128).unwrap();
    assert!(data.iter().all(|&b| b == 1));
    let v3 = c.write(blob, 0, &[3u8; 64]).unwrap();
    assert_eq!(v3, Version::new(3));

    // Appends leak-check too: same fault, same invariant.
    let baseline_loads = r.sys.provider_manager().load_vector().unwrap();
    let baseline_blocks = r.sys.providers().total_block_count();
    r.meta_plan.set(PutFault::FailOnce);
    let err = c.append(blob, &[4u8; 64]).unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert_eq!(
        r.sys.provider_manager().load_vector().unwrap(),
        baseline_loads
    );
    assert_eq!(r.sys.providers().total_block_count(), baseline_blocks);
}

#[test]
fn unaligned_append_timeout_is_configurable_and_repairs() {
    // Satellite check: the unaligned-append patience comes from the config
    // (the seed hard-coded 30 s), so a crashed predecessor only stalls an
    // unaligned appender for the configured window before self-repair.
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_unaligned_append_timeout(Duration::from_millis(50));
    let sys = BlobSeer::deploy(cfg, 4);
    let c = sys.client(NodeId::new(0));
    let blob = c.create();
    c.append(blob, &[1u8; 10]).unwrap(); // v1: unaligned tail at 10 bytes

    // v2 is assigned and abandoned (crashed writer).
    let _stuck = sys
        .version_manager()
        .assign(blob, WriteIntent::Append { size: 10 })
        .unwrap();

    // v3 is an unaligned append: it must wait for v2's reveal, give up
    // after ~50 ms, repair itself, and surface the timeout.
    let t0 = Instant::now();
    let err = c.append(blob, &[3u8; 10]).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    assert!(
        elapsed < Duration::from_secs(5),
        "configured 50 ms patience must beat the 30 s default: {elapsed:?}"
    );
    // v3 repaired itself: once v2 is also repaired, the pipeline reveals
    // v3 with v1's content preserved.
    c.repair_aborted(&_stuck).unwrap();
    assert_eq!(c.latest(blob).unwrap().0, Version::new(3));
    let data = c.read(blob, None, 0, 10).unwrap();
    assert!(data.iter().all(|&b| b == 1), "prefix preserved by repairs");
}

// ---------------------------------------------------------------------------
// Disk backend: kill-at-any-write-offset recovery (blobseer-disk)
// ---------------------------------------------------------------------------

/// Copies `src` to `dst` truncated at `cut` bytes — the on-disk image a
/// crash at exactly that write offset would leave behind.
fn crash_image(src: &Path, dst: &Path, cut: u64) {
    std::fs::copy(src, dst).unwrap();
    let f = std::fs::OpenOptions::new().write(true).open(dst).unwrap();
    f.set_len(cut).unwrap();
}

/// One step of a disk-store workload. The key space is tiny on purpose so
/// deletes, re-puts and delete-then-re-put interleavings actually happen.
#[derive(Clone, Debug)]
enum DiskOp {
    Put(u8),
    Delete(u8),
}

fn disk_ops() -> impl Strategy<Value = Vec<DiskOp>> {
    let op = prop_oneof![
        (0u8..6).prop_map(DiskOp::Put),
        (0u8..6).prop_map(DiskOp::Delete),
    ];
    proptest::collection::vec(op, 1..12)
}

/// Deterministic per-key content, so re-puts are always idempotent.
fn disk_content(key: u8) -> Vec<u8> {
    vec![key.wrapping_mul(17) ^ 0x5A; 1 + (key % 5) as usize]
}

fn meta_key(v: u8) -> NodeKey {
    NodeKey::new(BlobId::new(1), Version::new(1 + v as u64), Pos::new(0, 1))
}

fn meta_node(v: u8) -> TreeNode {
    TreeNode::Leaf(BlockDescriptor {
        block_id: BlockId::new(100 + v as u64),
        providers: vec![u32::from(v % 3)],
        len: 64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill-at-any-offset, block volume: after an arbitrary op script, a
    /// copy of the volume truncated at **every** byte offset of the file
    /// (which covers every offset of the final frame and of all earlier
    /// frames) reopens to exactly the state after the last fully committed
    /// op — index, contents and byte accounting all agree.
    #[test]
    fn volume_recovers_exact_committed_prefix_at_every_offset(ops in disk_ops()) {
        let tmp = TempDir::new("crash-vol");
        let live = volume_path(tmp.path(), 0);
        let vol = DiskVolume::open(&live, NodeId::new(0)).unwrap();
        let mut state: HashMap<u64, Vec<u8>> = HashMap::new();
        // (file length, committed state) after each op; ops that append
        // nothing (idempotent re-put, absent delete) repeat the pair.
        let mut snapshots = vec![(0u64, state.clone())];
        for op in &ops {
            match *op {
                DiskOp::Put(k) => {
                    vol.put(BlockId::new(k as u64), Bytes::from(disk_content(k)))
                        .unwrap();
                    state.insert(k as u64, disk_content(k));
                }
                DiskOp::Delete(k) => {
                    vol.delete(BlockId::new(k as u64)).unwrap();
                    state.remove(&(k as u64));
                }
            }
            snapshots.push((std::fs::metadata(&live).unwrap().len(), state.clone()));
        }
        drop(vol);

        let final_len = snapshots.last().unwrap().0;
        let scratch = tmp.path().join("scratch.vol");
        for cut in 0..=final_len {
            crash_image(&live, &scratch, cut);
            let recovered = DiskVolume::open(&scratch, NodeId::new(0)).unwrap();
            let expected = &snapshots.iter().rev().find(|(len, _)| *len <= cut).unwrap().1;
            prop_assert_eq!(
                recovered.block_count(),
                expected.len(),
                "cut at byte {cut} of {final_len}"
            );
            let mut expected_bytes = 0u64;
            for (id, content) in expected {
                expected_bytes += content.len() as u64;
                prop_assert_eq!(
                    recovered.get(BlockId::new(*id)).unwrap().as_ref(),
                    &content[..],
                    "block {id}, cut at byte {cut}"
                );
            }
            prop_assert_eq!(recovered.bytes_stored(), expected_bytes);
        }
    }

    /// Kill-at-any-offset, metadata record log: same property for a
    /// single-shard [`DiskMetaStore`] under put/delete scripts of tree
    /// nodes.
    #[test]
    fn record_log_recovers_exact_committed_prefix_at_every_offset(ops in disk_ops()) {
        let tmp = TempDir::new("crash-meta");
        let store = DiskMetaStore::open(tmp.path(), 1).unwrap();
        let live = shard_path(tmp.path(), 0);
        let mut state: HashMap<u8, TreeNode> = HashMap::new();
        let mut snapshots = vec![(0u64, state.clone())];
        for op in &ops {
            match *op {
                DiskOp::Put(v) => {
                    store.put(meta_key(v), meta_node(v)).unwrap();
                    state.insert(v, meta_node(v));
                }
                DiskOp::Delete(v) => {
                    store.delete(&meta_key(v));
                    state.remove(&v);
                }
            }
            snapshots.push((std::fs::metadata(&live).unwrap().len(), state.clone()));
        }
        drop(store);

        let final_len = snapshots.last().unwrap().0;
        let scratch_dir = TempDir::new("crash-meta-scratch");
        let scratch = shard_path(scratch_dir.path(), 0);
        for cut in 0..=final_len {
            crash_image(&live, &scratch, cut);
            let recovered = DiskMetaStore::open(scratch_dir.path(), 1).unwrap();
            let expected = &snapshots.iter().rev().find(|(len, _)| *len <= cut).unwrap().1;
            prop_assert_eq!(
                recovered.node_count(),
                expected.len(),
                "cut at byte {cut} of {final_len}"
            );
            for (v, node) in expected {
                prop_assert_eq!(
                    &recovered.get(&meta_key(*v)).unwrap(),
                    node,
                    "version {v}, cut at byte {cut}"
                );
            }
        }
    }
}

/// Kill-at-any-offset, version-manager operation log: a truncated copy
/// replays to the committed prefix's observables (latest version and size
/// per blob), and the blob-id sequence resumes without collisions.
#[test]
fn version_log_recovers_committed_prefix_at_every_offset() {
    let tmp = TempDir::new("crash-vm");
    let live = tmp.path().join("version.log");
    let vm = DurableVersionService::open(&live, 64).unwrap();
    type Snapshot = (u64, Vec<(BlobId, Option<(Version, u64)>)>);
    let mut blobs: Vec<BlobId> = Vec::new();
    let mut snapshots: Vec<Snapshot> = vec![(0, Vec::new())];
    let snap = |vm: &DurableVersionService, blobs: &[BlobId]| {
        (
            std::fs::metadata(&live).unwrap().len(),
            blobs.iter().map(|&b| (b, vm.latest(b).ok())).collect(),
        )
    };
    // A small deterministic history touching every op kind.
    for round in 0..3u64 {
        let blob = vm.create_blob().unwrap();
        blobs.push(blob);
        snapshots.push(snap(&vm, &blobs));
        for _ in 0..=round {
            let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
            snapshots.push(snap(&vm, &blobs));
            vm.commit(blob, t.version).unwrap();
            snapshots.push(snap(&vm, &blobs));
        }
    }
    let fork = vm.branch(blobs[2], Version::new(1)).unwrap();
    blobs.push(fork);
    snapshots.push(snap(&vm, &blobs));
    vm.delete_blob(blobs[0]).unwrap();
    snapshots.push(snap(&vm, &blobs));
    drop(vm);

    let final_len = snapshots.last().unwrap().0;
    let scratch = tmp.path().join("scratch.log");
    for cut in 0..=final_len {
        crash_image(&live, &scratch, cut);
        let recovered = DurableVersionService::open(&scratch, 64).unwrap();
        let expected = &snapshots
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .unwrap()
            .1;
        for (blob, latest) in expected {
            assert_eq!(
                recovered.latest(*blob).ok(),
                *latest,
                "blob {blob}, cut at byte {cut} of {final_len}"
            );
        }
        // New ids never collide with ids the committed prefix handed out.
        let next = recovered.create_blob().unwrap();
        assert_eq!(next.raw(), expected.len() as u64 + 1, "cut at byte {cut}");
    }
}

/// Corruption *inside* the committed prefix is not a torn tail: flipping a
/// payload byte of an early frame drops that frame and everything after it
/// (the log is a history, not a set — later frames may depend on earlier
/// ones), still without a panic or a garbage read.
#[test]
fn mid_log_corruption_truncates_history_from_that_point() {
    let tmp = TempDir::new("crash-corrupt");
    let live = volume_path(tmp.path(), 0);
    let vol = DiskVolume::open(&live, NodeId::new(0)).unwrap();
    for k in 0..8u8 {
        vol.put(BlockId::new(k as u64), Bytes::from(disk_content(k)))
            .unwrap();
    }
    let first_frame_end = {
        // Recompute frame 0's extent: header (8) + payload.
        let after_one = {
            let t = TempDir::new("crash-corrupt-probe");
            let p = volume_path(t.path(), 0);
            let v = DiskVolume::open(&p, NodeId::new(0)).unwrap();
            v.put(BlockId::new(0), Bytes::from(disk_content(0)))
                .unwrap();
            std::fs::metadata(&p).unwrap().len()
        };
        after_one
    };
    drop(vol);

    // Flip one payload byte inside the *second* frame.
    let mut bytes = std::fs::read(&live).unwrap();
    let victim = first_frame_end as usize + 8 + 1;
    bytes[victim] ^= 0xFF;
    std::fs::write(&live, &bytes).unwrap();

    let recovered = DiskVolume::open(&live, NodeId::new(0)).unwrap();
    assert_eq!(recovered.block_count(), 1, "only frame 0 survives");
    assert_eq!(
        recovered.get(BlockId::new(0)).unwrap().as_ref(),
        &disk_content(0)[..]
    );
    for k in 1..8u64 {
        assert!(matches!(
            recovered.get(BlockId::new(k)),
            Err(Error::MissingBlock(_))
        ));
    }
    // And the truncated volume accepts fresh writes immediately.
    recovered
        .put(BlockId::new(99), Bytes::from_static(b"post-recovery"))
        .unwrap();
    assert_eq!(recovered.block_count(), 2);
}
