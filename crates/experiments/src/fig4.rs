//! Fig. 4: average per-client read throughput as 1→250 clients
//! concurrently read *distinct* 64 MB chunks of one shared file (§V-E).
//!
//! Boot-up phase (modeled as precomputed layout): a dedicated client wrote
//! the N×64 MB file — round-robin for BSFS, sticky-random for HDFS (the
//! "fair" second experiment of §V-E where HDFS also spreads the file).
//!
//! Measurement: client *i*, co-located with a storage node (the paper
//! picks reader machines among the datanode/provider machines), reads
//! chunk *i* in 4 KB logical reads; the client cache turns that into one
//! 64 MB block fetch. What the model captures:
//!
//! * **Both backends**: one central-service query (version manager /
//!   namenode), a disk read streamed into a network flow, client overhead.
//! * **BSFS**: the balanced layout gives every reader its own provider —
//!   disks and NICs never queue; the tree descent costs `depth+1`
//!   sequential DHT hops, spread over 20 metadata providers.
//! * **HDFS**: sticky placement means several readers' chunks share a
//!   datanode; its disk queue and egress NIC serialize them (max-min fair
//!   sharing), and the per-block CRC verification of the 0.20 read path
//!   adds constant overhead. Average throughput falls as N grows.

use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::{Backend, Services};
use blobseer_core::meta::shape;
use blobseer_core::placement::Placer;
use blobseer_types::NodeId;
use simnet::{start_flow, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime};

#[derive(Clone, Copy)]
struct Tok {
    client: usize,
    provider: usize,
    started: SimTime,
}

struct World {
    net: FlowNet<Tok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    backend: Backend,
    services: Services,
    /// Provider index of each client's chunk.
    layout: Vec<usize>,
    durations: Vec<Option<SimDuration>>,
}

impl NetWorld for World {
    type Token = Tok;
    fn net_mut(&mut self) -> &mut FlowNet<Tok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: Tok) {
        // The provider's disk has been feeding the flow since it started.
        let disk_done = self.disks[tok.provider].submit(tok.started, self.c.block_bytes);
        let overhead = match self.backend {
            Backend::Bsfs => self.c.bsfs_read_overhead,
            Backend::Hdfs => self.c.hdfs_read_overhead,
        };
        let done = disk_done.max(sched.now()) + overhead;
        sched.schedule_at(done, move |w: &mut World, s| {
            w.durations[tok.client] = Some(s.now() - SimTime::ZERO);
        });
    }
}

impl World {
    fn new(c: Constants, backend: Backend, n_clients: usize, seed: u64) -> Self {
        let providers = backend.microbench_storage_nodes();
        // Nodes 0..P host providers; readers run on the first N machines
        // (§V-C: chosen among storage machines; when N exceeds the provider
        // count — BSFS has 247 — the last few readers land on the manager
        // machines).
        let net = FlowNet::new(providers.max(n_clients), NicSpec::symmetric(c.nic_bps));
        let disks = (0..providers)
            .map(|_| simnet::Disk::new(c.disk_read_bps))
            .collect();
        // Boot-up layout of the N-block file.
        let mut placer = Placer::new(policy_for(&c, backend), seed);
        let loads = vec![0u64; providers];
        let layout: Vec<usize> = match backend {
            // Round-robin from an arbitrary deployment offset: reader i and
            // chunk i land on unrelated nodes, as in a real deployment.
            Backend::Bsfs => (0..n_clients).map(|i| (i + 13) % providers).collect(),
            Backend::Hdfs => (0..n_clients).map(|_| placer.pick(&loads, &[])).collect(),
        };
        let meta_shards = if backend == Backend::Bsfs {
            c.meta_shards
        } else {
            0
        };
        let services = Services::new(&c, backend, meta_shards);
        Self {
            net,
            disks,
            c,
            backend,
            services,
            layout,
            durations: vec![None; n_clients],
        }
    }

    fn start_client(&mut self, sched: &mut Scheduler<Self>, client: usize) {
        let now = sched.now();
        // Central query: BSFS asks the version manager for the latest
        // version (§III-C); HDFS asks the namenode for block locations.
        let queried = self
            .services
            .central_call(now, self.c.nn_svc, self.c.latency);
        let fetch_at = match self.backend {
            Backend::Hdfs => queried,
            Backend::Bsfs => {
                // Root-to-leaf descent: depth+1 sequential DHT hops.
                let cap = (self.layout.len() as u64).next_power_of_two();
                let hops = shape::tree_depth(cap) as u64 + 1;
                self.services.meta_sequential(queried, hops, self.c.latency)
            }
        };
        sched.schedule_at(fetch_at, move |w: &mut World, s| {
            let provider = w.layout[client];
            let reader_node = NodeId::new(client as u64);
            let tok = Tok {
                client,
                provider,
                started: s.now(),
            };
            if provider == client {
                // Chunk happens to live on the reader's own node: no
                // network flow, disk only.
                let disk_done = w.disks[provider].submit(s.now(), w.c.block_bytes);
                let overhead = match w.backend {
                    Backend::Bsfs => w.c.bsfs_read_overhead,
                    Backend::Hdfs => w.c.hdfs_read_overhead,
                };
                let done = disk_done + overhead;
                s.schedule_at(done, move |w: &mut World, s| {
                    w.durations[client] = Some(s.now() - SimTime::ZERO);
                });
            } else {
                start_flow(
                    w,
                    s,
                    NodeId::new(provider as u64),
                    reader_node,
                    w.c.block_bytes,
                    tok,
                );
            }
        });
    }
}

/// Simulates N concurrent readers; returns the average per-client
/// throughput in MB/s.
pub fn avg_client_mbps(c: &Constants, backend: Backend, n_clients: usize, seed: u64) -> f64 {
    let mut sim = Sim::new(World::new(c.clone(), backend, n_clients, seed));
    for client in 0..n_clients {
        sim.schedule_in(SimDuration::ZERO, move |w: &mut World, s| {
            w.start_client(s, client)
        });
    }
    sim.run_until_idle();
    let block_mb = c.block_bytes as f64 / (1024.0 * 1024.0);
    let total: f64 = sim
        .world
        .durations
        .iter()
        .map(|d| block_mb / d.expect("client finished").as_secs_f64())
        .sum();
    total / n_clients as f64
}

/// Reproduces Fig. 4: average read throughput per client vs client count.
pub fn run(c: &Constants, client_counts: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 4",
        "Concurrent readers of a shared file: average client throughput",
        "number of clients",
        "average throughput (MB/s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &n in client_counts {
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| avg_client_mbps(c, backend, n, 0xF164 + rep))
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(n as f64, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's x grid: 1 → 250 clients.
pub fn paper_counts() -> Vec<usize> {
    vec![1, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsfs_stays_flat_hdfs_declines() {
        let c = Constants::default();
        let fig = run(&c, &[1, 100, 250]);
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        // BSFS sustains per-client throughput (paper: "it is able to
        // deliver the same throughput even when the number of clients
        // increases").
        let (b1, b250) = (bsfs.y_at(1.0).unwrap(), bsfs.y_at(250.0).unwrap());
        assert!(
            b250 > b1 * 0.85,
            "BSFS should stay near-flat: {b1:.1} → {b250:.1}"
        );
        // HDFS collapses under contention.
        let (h1, h250) = (hdfs.y_at(1.0).unwrap(), hdfs.y_at(250.0).unwrap());
        assert!(h250 < h1 * 0.75, "HDFS should decline: {h1:.1} → {h250:.1}");
        // And BSFS leads at every point.
        for (&(x, h), &(_, b)) in hdfs.points.iter().zip(&bsfs.points) {
            assert!(b > h, "BSFS ahead at {x}: {b:.1} vs {h:.1}");
        }
    }

    #[test]
    fn absolute_levels_in_paper_band() {
        // Paper: BSFS ≈ 60 flat; HDFS from ≈ 45 down to ≈ 25.
        let c = Constants::default();
        let bsfs = avg_client_mbps(&c, Backend::Bsfs, 200, 3);
        let hdfs = avg_client_mbps(&c, Backend::Hdfs, 200, 3);
        assert!(
            (50.0..75.0).contains(&bsfs),
            "BSFS at 200 clients: {bsfs:.1}"
        );
        assert!(
            (15.0..40.0).contains(&hdfs),
            "HDFS at 200 clients: {hdfs:.1}"
        );
    }

    #[test]
    fn single_reader_is_disk_bound_not_contention_bound() {
        let c = Constants::default();
        let bsfs = avg_client_mbps(&c, Backend::Bsfs, 1, 3);
        // One reader: 64 MB over a 80 MB/s disk + overheads ≈ 60 MB/s.
        assert!((50.0..70.0).contains(&bsfs), "{bsfs:.1}");
    }
}
