// Fixture: wall-clock time and real sleeps inside SimGate-charged code.
pub fn wait_a_bit() -> std::time::Instant {
    std::thread::sleep(std::time::Duration::from_millis(1));
    std::time::Instant::now()
}
