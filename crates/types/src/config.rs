//! Configuration for the two storage engines.
//!
//! Defaults mirror the paper's deployment (§V): 64 MB blocks, replication 1
//! (the throughput experiments compare unreplicated transfers), round-robin
//! placement for BlobSeer. Tests and benches shrink the block size so that
//! realistic multi-block files fit in memory.

use std::path::PathBuf;
use std::time::Duration;

/// Default patience of the unaligned-append slow path: how long a writer
/// waits for the preceding snapshot's reveal before repairing its own
/// version (see `blobseer_core::client` module docs).
pub const DEFAULT_UNALIGNED_APPEND_TIMEOUT: Duration = Duration::from_secs(30);

/// Default patience of `BsfsOutput::close()`: how long a closing stream
/// waits for its final append's snapshot to be revealed (close-to-open
/// visibility). Tests and simulated-time deployments shrink it — a 30 s
/// real condvar wait can never be satisfied inside a SimGate turn.
pub const DEFAULT_CLOSE_REVEAL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default multiplexed-connection budget per remote endpoint: how many TCP
/// connections a client adapter opens to one service before pipelining
/// further concurrent requests onto the existing ones.
pub const DEFAULT_RPC_CLIENT_CONNECTIONS: usize = 4;

/// Default worker threads per RPC server: how many requests one service
/// listener executes concurrently (readers only parse frames; the workers
/// run the port calls).
pub const DEFAULT_RPC_SERVER_WORKERS: usize = 4;

/// Default bound of an RPC server's request queue. A full queue makes
/// connection readers stop pulling frames off their sockets (TCP
/// backpressure) instead of buffering without limit.
pub const DEFAULT_RPC_SERVER_QUEUE_DEPTH: usize = 128;

/// Cap on the auto-sized client fan-out pool: with
/// `client_io_threads = None` a deployment uses `min(8, providers)` I/O
/// threads (one per provider until the pool saturates at 8, the paper's
/// per-client striping width in §V).
pub const DEFAULT_CLIENT_IO_THREADS_CAP: usize = 8;

/// Placement policy used by the provider manager (§III-B: "a load balancing
/// strategy that aims at evenly distributing the blocks across data
/// providers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// BlobSeer's default: allocate blocks on providers in a round-robin
    /// fashion (§V-D).
    #[default]
    RoundRobin,
    /// Pick the provider currently storing the fewest blocks; ties broken by
    /// lowest node id. A natural "even distribution" alternative used in
    /// ablations.
    LeastLoaded,
    /// Uniform random placement (the balls-in-bins baseline).
    Random,
    /// Random with session affinity: with probability `stickiness`
    /// (in percent, 0–100) the next block stays on the previous provider.
    /// Models HDFS 0.20 pipeline-session behaviour for remote writers; see
    /// DESIGN.md §3.4.
    StickyRandom {
        /// Probability in percent (0–100) of re-using the previous target.
        stickiness: u8,
    },
}

/// Configuration of a BlobSeer deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobSeerConfig {
    /// Size of a data block ("we set this size to the size of the data piece
    /// a Map/Reduce worker is supposed to process", §III-A.2).
    pub block_size: u64,
    /// Number of replicas stored for each block (§VI-B). 1 = no replication.
    pub replication: usize,
    /// Placement policy used by the provider manager.
    pub placement: PlacementPolicy,
    /// Number of metadata providers forming the DHT (the paper deploys 10–20).
    pub metadata_providers: usize,
    /// Replication level of metadata tree nodes within the DHT (§VI-B:
    /// "metadata is stored in a DHT … resilient to faults by construction").
    pub metadata_replication: usize,
    /// How many versions back from the latest must be preserved by the
    /// garbage collector. `None` disables automatic pruning.
    pub gc_keep_versions: Option<u64>,
    /// How long an unaligned append waits for the preceding snapshot's
    /// reveal before giving up and repairing its assigned version. Tests
    /// and simulation runs shrink this so a crashed predecessor does not
    /// stall them for the full production patience.
    pub unaligned_append_timeout: Duration,
    /// How long a closing BSFS output stream waits for its final append's
    /// reveal (close-to-open visibility). Like the unaligned-append
    /// patience, tests and simulated-time deployments shrink this: `Drop`
    /// additionally bounds it so an abandoned stream can never stall a
    /// harness for the full production patience.
    pub close_reveal_timeout: Duration,
    /// Multiplexed TCP connections a remote-backend client opens per
    /// service endpoint. Concurrent requests beyond the budget pipeline
    /// onto the shared connections instead of opening new sockets.
    pub rpc_client_connections: usize,
    /// Worker threads per RPC server listener — the degree of request
    /// parallelism one service process offers.
    pub rpc_server_workers: usize,
    /// Bound of an RPC server's request queue (pending, not-yet-executing
    /// requests across all of the listener's connections).
    pub rpc_server_queue_depth: usize,
    /// Byte budget of the client-side hot-read cache over blocks and
    /// metadata tree nodes. `0` disables caching — the default, and what
    /// the figure reproductions run with (the paper's curves are
    /// cache-cold; see `docs/REPRODUCING.md`).
    pub read_cache_bytes: u64,
    /// Threads in the client's fan-out I/O pool, which overlaps
    /// per-provider batches across the data, fetch, publish and GC phases.
    /// `None` (the default) auto-sizes to `min(8, providers)` at deploy
    /// time; `Some(1)` disables fan-out entirely — every batch runs inline
    /// on the caller, which is byte- and frame-identical to the serial
    /// client and is required for SimGate deployments (the virtual-time
    /// harness cannot gate extra OS threads; see
    /// `experiments::concurrent`). Must be at least 1.
    pub client_io_threads: Option<usize>,
    /// Root directory of the durable (disk-backed) storage tier. `None`
    /// (the default) keeps every service RAM-backed, as in all previous
    /// backends; `Some(dir)` makes a `LoopbackCluster` host its data
    /// providers, metadata DHT and version manager on append-only files
    /// under `dir`, so a stopped cluster can be re-booted on the same
    /// directory with all BLOBs, versions and metadata intact.
    pub data_dir: Option<PathBuf>,
    /// Read-ahead window of a BSFS input stream in bytes. While a caller
    /// consumes block *b*, the stream prefetches up to this many bytes
    /// ahead through the fan-out executor. `0` (the default) disables
    /// read-ahead. Values are interpreted as whole blocks (rounded up to a
    /// multiple of `block_size`); the builder warns when the value is not
    /// already a multiple.
    pub readahead_bytes: u64,
    /// Number of version-manager replicas a hosted cluster boots. `1`
    /// (the default, and the figure-reproduction setting) hosts the
    /// single version manager of the paper; values above 1 host a
    /// leader-based replica group (`blobseer-control`) that keeps issuing
    /// gap-free version numbers across leader crashes.
    pub version_replicas: usize,
}

impl Default for BlobSeerConfig {
    fn default() -> Self {
        Self {
            block_size: super::PAPER_BLOCK_SIZE,
            replication: 1,
            placement: PlacementPolicy::RoundRobin,
            metadata_providers: 20,
            metadata_replication: 1,
            gc_keep_versions: None,
            unaligned_append_timeout: DEFAULT_UNALIGNED_APPEND_TIMEOUT,
            close_reveal_timeout: DEFAULT_CLOSE_REVEAL_TIMEOUT,
            rpc_client_connections: DEFAULT_RPC_CLIENT_CONNECTIONS,
            rpc_server_workers: DEFAULT_RPC_SERVER_WORKERS,
            rpc_server_queue_depth: DEFAULT_RPC_SERVER_QUEUE_DEPTH,
            read_cache_bytes: 0,
            data_dir: None,
            client_io_threads: None,
            readahead_bytes: 0,
            version_replicas: 1,
        }
    }
}

impl BlobSeerConfig {
    /// A configuration with small blocks, convenient for tests that want
    /// many-block files without gigabytes of RAM. Reveal patiences shrink
    /// too: in-process reveals are immediate, so a stuck predecessor should
    /// fail a test in seconds, not stall it for the production 30 s.
    pub fn small_for_tests() -> Self {
        Self {
            block_size: 4 * 1024,
            replication: 1,
            placement: PlacementPolicy::RoundRobin,
            metadata_providers: 4,
            metadata_replication: 1,
            gc_keep_versions: None,
            unaligned_append_timeout: DEFAULT_UNALIGNED_APPEND_TIMEOUT,
            close_reveal_timeout: Duration::from_secs(2),
            rpc_client_connections: DEFAULT_RPC_CLIENT_CONNECTIONS,
            rpc_server_workers: DEFAULT_RPC_SERVER_WORKERS,
            rpc_server_queue_depth: DEFAULT_RPC_SERVER_QUEUE_DEPTH,
            read_cache_bytes: 0,
            data_dir: None,
            // Small but real fan-out: tests exercise the pooled dispatch
            // path by default while staying cheap on 1-CPU runners.
            client_io_threads: Some(2),
            readahead_bytes: 0,
            version_replicas: 1,
        }
    }

    /// Builder-style override of the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Builder-style override of the replication level.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        assert!(replication >= 1, "replication level must be at least 1");
        self.replication = replication;
        self
    }

    /// Builder-style override of the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style override of the metadata provider count.
    #[must_use]
    pub fn with_metadata_providers(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one metadata provider");
        self.metadata_providers = n;
        self
    }

    /// Builder-style override of the unaligned-append patience.
    #[must_use]
    pub fn with_unaligned_append_timeout(mut self, timeout: Duration) -> Self {
        self.unaligned_append_timeout = timeout;
        self
    }

    /// Builder-style override of the close-reveal patience.
    #[must_use]
    pub fn with_close_reveal_timeout(mut self, timeout: Duration) -> Self {
        self.close_reveal_timeout = timeout;
        self
    }

    /// Builder-style override of the per-endpoint connection budget.
    #[must_use]
    pub fn with_rpc_client_connections(mut self, connections: usize) -> Self {
        assert!(connections >= 1, "need at least one connection");
        self.rpc_client_connections = connections;
        self
    }

    /// Builder-style override of the RPC server worker-thread count.
    #[must_use]
    pub fn with_rpc_server_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.rpc_server_workers = workers;
        self
    }

    /// Builder-style override of the RPC server request-queue bound.
    #[must_use]
    pub fn with_rpc_server_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.rpc_server_queue_depth = depth;
        self
    }

    /// Builder-style override of the hot-read cache budget (`0` disables).
    #[must_use]
    pub fn with_read_cache_bytes(mut self, bytes: u64) -> Self {
        self.read_cache_bytes = bytes;
        self
    }

    /// Builder-style override of the durable-storage root. Booting a
    /// cluster with this set hosts its services on append-only files
    /// under `dir` (created if absent) instead of RAM.
    #[must_use]
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Builder-style override of the fan-out I/O thread count. `1`
    /// disables fan-out (inline, serial-identical dispatch); see the
    /// field docs for the SimGate requirement.
    #[must_use]
    pub fn with_client_io_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one client I/O thread");
        self.client_io_threads = Some(threads);
        self
    }

    /// Builder-style override of the BSFS read-ahead window (`0`
    /// disables). Warns on stderr when the window is not a multiple of
    /// the *currently configured* block size — set the block size first
    /// when chaining, or expect the effective window to round up to
    /// whole blocks.
    #[must_use]
    pub fn with_readahead_bytes(mut self, bytes: u64) -> Self {
        if !bytes.is_multiple_of(self.block_size) {
            eprintln!(
                "warning: readahead_bytes = {bytes} is not a multiple of block_size = {}; \
                 the effective window rounds up to whole blocks",
                self.block_size
            );
        }
        self.readahead_bytes = bytes;
        self
    }

    /// Builder-style override of the version-manager replica count a
    /// hosted cluster boots. Must be at least 1; `1` keeps the paper's
    /// single version manager.
    #[must_use]
    pub fn with_version_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas >= 1, "a deployment needs at least one replica");
        self.version_replicas = replicas;
        self
    }

    /// The read-ahead window in whole blocks (rounded up). `0` = off.
    pub fn readahead_blocks(&self) -> u64 {
        self.readahead_bytes.div_ceil(self.block_size)
    }
}

/// Configuration of the HDFS baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HdfsConfig {
    /// Chunk ("block" in HDFS terms) size; 64 MB in the paper.
    pub chunk_size: u64,
    /// Replication level. The paper's throughput experiments behave like
    /// replication 1; HDFS defaults to 3 in production.
    pub replication: usize,
    /// Whether `append` is supported. Hadoop 0.20 does not implement it
    /// (§V-F); flipping this models later Hadoop versions.
    pub append_supported: bool,
    /// Placement affinity in percent for remote writers (see
    /// `PlacementPolicy::StickyRandom` and DESIGN.md §3.4). 0 = pure random.
    pub placement_stickiness: u8,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        Self {
            chunk_size: super::PAPER_BLOCK_SIZE,
            replication: 1,
            append_supported: false,
            placement_stickiness: 40,
        }
    }
}

impl HdfsConfig {
    /// Small-chunk configuration for tests.
    pub fn small_for_tests() -> Self {
        Self {
            chunk_size: 4 * 1024,
            replication: 1,
            append_supported: false,
            placement_stickiness: 40,
        }
    }

    /// Builder-style override of the chunk size.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Builder-style override of the replication level.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        assert!(replication >= 1, "replication level must be at least 1");
        self.replication = replication;
        self
    }

    /// Builder-style toggle for append support.
    #[must_use]
    pub fn with_append(mut self, yes: bool) -> Self {
        self.append_supported = yes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_paper() {
        let c = BlobSeerConfig::default();
        assert_eq!(c.block_size, 64 * 1024 * 1024);
        assert_eq!(c.replication, 1);
        assert_eq!(c.placement, PlacementPolicy::RoundRobin);
        assert_eq!(c.metadata_providers, 20);
        assert_eq!(c.unaligned_append_timeout, Duration::from_secs(30));
        assert_eq!(c.close_reveal_timeout, Duration::from_secs(30));
        assert_eq!(c.rpc_client_connections, 4);
        assert_eq!(c.rpc_server_workers, 4);
        assert_eq!(c.rpc_server_queue_depth, 128);
        assert_eq!(c.read_cache_bytes, 0, "figure runs are cache-cold");
        assert_eq!(c.data_dir, None, "RAM-backed unless opted in");
        assert_eq!(c.client_io_threads, None, "auto: min(8, providers)");
        assert_eq!(c.readahead_bytes, 0, "read-ahead is opt-in");
        assert_eq!(c.version_replicas, 1, "the paper runs one version manager");

        let h = HdfsConfig::default();
        assert_eq!(h.chunk_size, 64 * 1024 * 1024);
        assert!(!h.append_supported, "Hadoop 0.20 has no append (§V-F)");
    }

    #[test]
    fn builders_chain() {
        let c = BlobSeerConfig::small_for_tests()
            .with_block_size(1024)
            .with_replication(3)
            .with_placement(PlacementPolicy::LeastLoaded)
            .with_metadata_providers(2)
            .with_unaligned_append_timeout(Duration::from_millis(50))
            .with_close_reveal_timeout(Duration::from_millis(80))
            .with_rpc_client_connections(2)
            .with_rpc_server_workers(3)
            .with_rpc_server_queue_depth(16)
            .with_read_cache_bytes(1 << 20)
            .with_data_dir("/tmp/blobseer-data")
            .with_client_io_threads(4)
            .with_readahead_bytes(4096)
            .with_version_replicas(3);
        assert_eq!(c.unaligned_append_timeout, Duration::from_millis(50));
        assert_eq!(c.close_reveal_timeout, Duration::from_millis(80));
        assert_eq!(c.block_size, 1024);
        assert_eq!(c.replication, 3);
        assert_eq!(c.placement, PlacementPolicy::LeastLoaded);
        assert_eq!(c.metadata_providers, 2);
        assert_eq!(c.rpc_client_connections, 2);
        assert_eq!(c.rpc_server_workers, 3);
        assert_eq!(c.rpc_server_queue_depth, 16);
        assert_eq!(c.read_cache_bytes, 1 << 20);
        assert_eq!(c.data_dir, Some(PathBuf::from("/tmp/blobseer-data")));
        assert_eq!(c.client_io_threads, Some(4));
        assert_eq!(c.readahead_bytes, 4096);
        assert_eq!(c.readahead_blocks(), 4, "1024-byte blocks, 4 KB window");
        assert_eq!(c.version_replicas, 3);

        let h = HdfsConfig::small_for_tests()
            .with_chunk_size(512)
            .with_append(true);
        assert_eq!(h.chunk_size, 512);
        assert!(h.append_supported);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_rejected() {
        let _ = BlobSeerConfig::default().with_block_size(0);
    }

    #[test]
    #[should_panic(expected = "replication level must be at least 1")]
    fn zero_replication_rejected() {
        let _ = BlobSeerConfig::default().with_replication(0);
    }

    #[test]
    #[should_panic(expected = "need at least one client I/O thread")]
    fn zero_io_threads_rejected() {
        let _ = BlobSeerConfig::default().with_client_io_threads(0);
    }

    #[test]
    fn unaligned_readahead_rounds_up_to_whole_blocks() {
        let c = BlobSeerConfig::small_for_tests().with_readahead_bytes(4096 + 1);
        assert_eq!(c.readahead_blocks(), 2);
        let off = BlobSeerConfig::small_for_tests();
        assert_eq!(off.readahead_blocks(), 0);
    }
}
