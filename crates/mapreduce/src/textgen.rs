//! Random text generation, shared by the RandomTextWriter application and
//! the benchmark workload generators.
//!
//! Mirrors Hadoop's RandomTextWriter: "each \[mapper\] generates a huge
//! sequence of random sentences formed from a list of predefined words"
//! (§V-G).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The predefined word list (a stable subset of Hadoop's
/// `RandomTextWriter` word list).
pub const WORDS: &[&str] = &[
    "diurnalness",
    "officiously",
    "sanctity",
    "deaconship",
    "bedizen",
    "repealer",
    "diatomaceous",
    "snuffiness",
    "bookmaking",
    "unglue",
    "phytonic",
    "uncombable",
    "stereotypical",
    "horned",
    "pseudoxanthine",
    "nonrepetition",
    "glaucomatous",
    "unfulminated",
    "scorer",
    "pomiferous",
    "hookworm",
    "disfavour",
    "scapuloradial",
    "warriorwise",
    "sarcologist",
    "extraorganismal",
    "undermentioned",
    "magnetooptics",
    "cuneiform",
    "unconcessible",
    "rotular",
    "pentagamist",
    "interruptedness",
    "botchedly",
    "pneumonalgia",
    "clannishness",
    "jirble",
    "liquidity",
    "unchatteled",
    "designative",
    "unexplicit",
    "arval",
    "swangy",
    "besagne",
    "rebilling",
    "bicorporeal",
    "uninductive",
    "hypotheses",
    "prospectiveness",
    "seelful",
];

/// A deterministic sentence generator.
pub struct TextGen {
    rng: StdRng,
}

impl TextGen {
    /// A generator with a fixed seed (mapper id in the apps — every mapper
    /// produces a distinct, reproducible stream).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Appends one random sentence (5–14 words, space-separated, no
    /// terminator) to `buf`; returns its length in bytes.
    pub fn sentence_into(&mut self, buf: &mut Vec<u8>) -> usize {
        let start = buf.len();
        let n_words = self.rng.gen_range(5..15);
        for w in 0..n_words {
            if w > 0 {
                buf.push(b' ');
            }
            let word = WORDS[self.rng.gen_range(0..WORDS.len())];
            buf.extend_from_slice(word.as_bytes());
        }
        buf.len() - start
    }

    /// One random sentence as an owned string.
    pub fn sentence(&mut self) -> String {
        let mut buf = Vec::new();
        self.sentence_into(&mut buf);
        String::from_utf8(buf).expect("word list is ASCII")
    }

    /// Generates at least `target_bytes` of newline-separated sentences.
    pub fn text(&mut self, target_bytes: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(target_bytes + 128);
        while buf.len() < target_bytes {
            self.sentence_into(&mut buf);
            buf.push(b'\n');
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TextGen::new(7).text(1000);
        let b = TextGen::new(7).text(1000);
        assert_eq!(a, b);
        let c = TextGen::new(8).text(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn sentences_use_the_word_list() {
        let mut g = TextGen::new(1);
        for _ in 0..20 {
            let s = g.sentence();
            let words: Vec<&str> = s.split(' ').collect();
            assert!((5..15).contains(&words.len()), "{s}");
            for w in words {
                assert!(WORDS.contains(&w), "unknown word {w}");
            }
        }
    }

    #[test]
    fn text_reaches_target_and_ends_with_newline() {
        let t = TextGen::new(2).text(4096);
        assert!(t.len() >= 4096);
        assert_eq!(*t.last().unwrap(), b'\n');
        assert!(t.split(|&b| b == b'\n').count() > 10);
    }
}
