//! `bench` — benchmark harnesses for the BlobSeer reproduction.
//!
//! * `src/bin/fig3a.rs` … `src/bin/fig6b.rs` — one binary per figure of
//!   the paper's evaluation (§V); each prints the figure's series as an
//!   aligned table and as CSV. `src/bin/figures.rs` runs them all.
//! * `benches/` — Criterion microbenchmarks of the live engine (segment
//!   tree, DHT, version manager, concurrent I/O, placement) plus the
//!   figure models and calibration-constant ablations.
#![forbid(unsafe_code)]

use experiments::Figure;

/// Prints a figure as table + CSV blocks, the common output format of the
/// `fig*` binaries.
pub fn print_figure(fig: &Figure) {
    println!("{}", fig.to_table());
    println!("--- CSV ---");
    println!("{}", fig.to_csv());
}

/// Parses an optional `--quick` flag: binaries then use a sparser grid so
/// smoke tests stay fast.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses an optional `--verbose` flag: figure drivers then append
/// diagnostics (e.g. the shim's lock-contention counters) after the CSV.
pub fn verbose_mode() -> bool {
    std::env::args().any(|a| a == "--verbose")
}
