//! Result series and plain-text rendering for the `fig*` binaries.

use std::fmt::Write as _;

/// One curve of a figure: a labelled series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label ("BSFS", "HDFS", …).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// A reproduced figure: axis labels plus one or more series over a common
/// x grid.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure id, e.g. "Fig. 3(a)".
    pub id: String,
    /// Title from the paper.
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Figure {
    /// A new figure shell.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Renders the figure as an aligned text table (one row per x).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>16}", self.x_label);
        for s in &self.series {
            let _ = write!(
                out,
                " {:>16}",
                format!("{} ({})", s.label, short_unit(&self.y_label))
            );
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for x in xs {
            let _ = write!(out, "{x:>16.3}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>16.2}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV (`x,label1,label2,…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", sanitize(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", sanitize(&s.label));
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y:.4}");
                    }
                    None => out.push(','),
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn short_unit(y_label: &str) -> String {
    y_label
        .rsplit_once('(')
        .map(|(_, u)| u.trim_end_matches(')').to_string())
        .unwrap_or_else(|| y_label.to_string())
}

fn sanitize(s: &str) -> String {
    s.replace(',', ";")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig. X", "demo", "clients", "throughput (MB/s)");
        let mut a = Series::new("BSFS");
        a.push(1.0, 60.0);
        a.push(2.0, 61.0);
        let mut b = Series::new("HDFS");
        b.push(1.0, 40.0);
        b.push(2.0, 35.5);
        fig.series = vec![a, b];
        fig
    }

    #[test]
    fn table_contains_all_points() {
        let t = sample().to_table();
        assert!(t.contains("Fig. X"));
        assert!(t.contains("60.00"));
        assert!(t.contains("35.50"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn csv_roundtrips_values() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "clients,BSFS,HDFS");
        assert_eq!(lines.next().unwrap(), "1,60.0000,40.0000");
        assert_eq!(lines.next().unwrap(), "2,61.0000,35.5000");
    }

    #[test]
    fn series_helpers() {
        let s = &sample().series[0];
        assert_eq!(s.y_at(2.0), Some(61.0));
        assert_eq!(s.y_at(9.0), None);
        assert!((s.mean_y() - 60.5).abs() < 1e-9);
        assert_eq!(Series::new("e").mean_y(), 0.0);
    }
}
