//! `blobseer-control` — the BlobSeer control plane grown past its single
//! points of failure.
//!
//! The paper's architecture (§II) runs four service roles next to the
//! data providers: the **version manager**, the **provider manager**, the
//! metadata DHT, and the GC tracker. The version manager is the one
//! serialization point of the whole protocol — every append storm
//! funnels through its version-number assignment — and the companion
//! design paper explicitly leaves its fault tolerance open. This crate
//! closes that gap for the reproduction:
//!
//! * [`ReplicatedVersionService`] — the version manager as a leader-based
//!   replica group: a small replicated log (term + index entries,
//!   [`replog`]), acknowledgement by every live replica under a majority
//!   quorum, a countdown leader lease for reads, deterministic
//!   re-election, and exactly-once retries across leader crashes. Each
//!   replica can persist its log in the same checksummed frame format
//!   `blobseer-disk` uses everywhere else, and recovery reconciles
//!   divergent replica logs by the election ordering.
//! * [`codec`] — the replicated command alphabet (the six mutating calls
//!   of the `VersionService` port) and its panic-free wire codec.
//!
//! The placement and GC halves of the control plane need no replication
//! layer of their own — they are hosted (one shared instance behind
//! `blobseer-rpc` servers) rather than replicated; see
//! `blobseer_core::ports::{PlacementService, GcService}` and the cluster
//! module of `blobseer-rpc`.
//!
//! Lock classes introduced by this crate (all `ctl.*`): `ctl.group` →
//! `ctl.replica` (ranked by replica index, ascending). See
//! `docs/ANALYSIS.md` for the workspace lock-order discipline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod replog;
pub mod service;

pub use codec::{Command, CommandKind};
pub use replog::RepEntry;
pub use service::{CrashPoint, ReplicatedVersionService};
