//! The multiplexed transport: many in-flight requests per connection, a
//! bounded socket budget, transparent redial after a server restart, and
//! the opt-in hot-read cache tier.
//!
//! The old transport model spent one TCP connection per in-flight request
//! (a parked `wait_revealed` pinned a whole socket). These tests pin down
//! the muxed model's contract instead: 64 concurrent requests — one of
//! them a `wait_revealed` deliberately blocked for 500 ms — all complete
//! through a fixed per-endpoint connection budget, observed from the
//! *server* side via its accept counter.

use blobseer_core::block_store::ProviderSet;
use blobseer_core::ports::BlockStore;
use blobseer_core::{EngineStats, WriteIntent};
use blobseer_rpc::{LoopbackCluster, RpcBlockStore, RpcServer, RpcService};
use blobseer_types::{BlobSeerConfig, BlockId, Error, NodeId};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const BLOCK: u64 = 256;

#[test]
fn pipelined_requests_complete_within_the_connection_budget() {
    let cfg = BlobSeerConfig::small_for_tests().with_block_size(BLOCK);
    let budget = cfg.rpc_client_connections;
    // One data provider: every block request pipelines on that single
    // endpoint's connections.
    let cluster = LoopbackCluster::boot(cfg, 1).unwrap();
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(0));

    let blob = c.create();
    let payload: Vec<u8> = (0..64 * BLOCK).map(|i| i as u8).collect();
    let v1 = c.write(blob, 0, &payload).unwrap();

    // A writer that assigned but never commits: the next committed write
    // cannot reveal, so waiting for it parks server-side for the full
    // timeout (§III-C reveal-in-order).
    sys.version_manager()
        .assign(blob, WriteIntent::Append { size: BLOCK })
        .unwrap();
    let v3 = c.write(blob, 0, &[9u8; BLOCK as usize]).unwrap();

    let wait_done = Arc::new(AtomicBool::new(false));
    let waiter = {
        let sys = Arc::clone(&sys);
        let wait_done = Arc::clone(&wait_done);
        std::thread::spawn(move || {
            let c = sys.client(NodeId::new(1));
            let started = Instant::now();
            let err = c
                .wait_revealed(blob, v3, Duration::from_millis(500))
                .unwrap_err();
            wait_done.store(true, Ordering::SeqCst);
            (err, started.elapsed())
        })
    };
    // Give the wait a head start so it is parked before the readers run.
    std::thread::sleep(Duration::from_millis(50));

    // 64 concurrent readers, each one block plus a version-manager call —
    // so the version service keeps answering on the same connections the
    // parked wait rides.
    let barrier = Arc::new(Barrier::new(64));
    let readers: Vec<_> = (0..64u64)
        .map(|i| {
            let sys = Arc::clone(&sys);
            let barrier = Arc::clone(&barrier);
            let expect = payload[(i * BLOCK) as usize..((i + 1) * BLOCK) as usize].to_vec();
            std::thread::spawn(move || {
                let c = sys.client(NodeId::new(10 + i));
                barrier.wait();
                let data = c.read(blob, Some(v1), i * BLOCK, BLOCK).unwrap();
                assert_eq!(&data[..], &expect[..], "reader {i} got wrong bytes");
                assert_eq!(c.latest(blob).unwrap().0, v1, "v3 must not be revealed");
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        !wait_done.load(Ordering::SeqCst),
        "all 64 readers finished while wait_revealed was still parked"
    );
    let (err, waited) = waiter.join().unwrap();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    assert!(waited >= Duration::from_millis(450), "parked {waited:?}");

    // The server-side accept counters bound the socket spend: 5 endpoints
    // (block, meta, version, plus the placement and GC control planes),
    // at most `budget` muxed connections each — not one socket per
    // in-flight request.
    let accepted = cluster.connections_accepted();
    assert!(
        accepted <= (5 * budget) as u64,
        "{accepted} sockets accepted for 65 concurrent requests (budget {budget}/endpoint)"
    );
}

#[test]
fn idle_dead_connections_redial_after_a_server_restart_on_the_same_port() {
    let provider: Arc<ProviderSet> = Arc::new(ProviderSet::new(1, |_| NodeId::new(7)));
    let mut server =
        RpcServer::spawn_with(RpcService::Block(Arc::clone(&provider) as _), 2, 16).unwrap();
    let addr = server.addr();

    let stats = Arc::new(EngineStats::new());
    let store = RpcBlockStore::connect_with(&[addr], Arc::clone(&stats), 2).unwrap();
    store
        .put(0, BlockId::new(1), Bytes::from_static(b"before restart"))
        .unwrap();
    assert_eq!(
        &store.get(0, BlockId::new(1)).unwrap()[..],
        b"before restart"
    );

    // Restart on the *same* port while the client pool idles. Every muxed
    // connection the client holds dies here.
    server.shutdown();
    drop(server);
    let deadline = Instant::now() + Duration::from_secs(10);
    let _server2 = loop {
        // The old listener's sockets may linger briefly (TIME_WAIT);
        // retry the bind rather than flake.
        match RpcServer::spawn_at(addr, RpcService::Block(Arc::clone(&provider) as _), 2, 16) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    };

    // No reconnect ceremony: the next calls transparently redial. Data
    // survives because the restarted server hosts the same provider set.
    assert_eq!(
        &store.get(0, BlockId::new(1)).unwrap()[..],
        b"before restart"
    );
    store
        .put(0, BlockId::new(2), Bytes::from_static(b"after restart"))
        .unwrap();
    assert_eq!(
        &store.get(0, BlockId::new(2)).unwrap()[..],
        b"after restart"
    );
    assert_eq!(store.block_count(0), 2);
    assert_eq!(
        stats.snapshot().rpc_degraded_diagnostics,
        0,
        "healthy calls after the restart must not count as degradations"
    );
}

#[test]
fn diagnostics_against_a_dead_cluster_degrade_loudly_not_silently() {
    let provider: Arc<ProviderSet> = Arc::new(ProviderSet::new(1, |_| NodeId::new(0)));
    let mut server =
        RpcServer::spawn_with(RpcService::Block(Arc::clone(&provider) as _), 2, 16).unwrap();
    let stats = Arc::new(EngineStats::new());
    let store = RpcBlockStore::connect_with(&[server.addr()], Arc::clone(&stats), 1).unwrap();
    assert_eq!(store.block_count(0), 0);
    assert_eq!(stats.snapshot().rpc_degraded_diagnostics, 0);

    server.shutdown();
    drop(server);
    // The port has no error channel for these: they answer their zero
    // defaults, but each degradation is now counted.
    assert!(!store.contains(0, BlockId::new(1)));
    assert_eq!(store.block_count(0), 0);
    assert_eq!(store.bytes_stored(0), 0);
    assert_eq!(store.op_counts(0), (0, 0));
    assert_eq!(
        stats.snapshot().rpc_degraded_diagnostics,
        4,
        "every degraded diagnostic answer must be observable on EngineStats"
    );
}

#[test]
fn read_cache_serves_hot_snapshots_and_reports_hits() {
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_read_cache_bytes(1 << 20);
    let cluster = LoopbackCluster::boot(cfg, 2).unwrap();
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(0));

    let blob = c.create();
    let payload: Vec<u8> = (0..16 * BLOCK).map(|i| (i / 3) as u8).collect();
    c.write(blob, 0, &payload).unwrap();

    // Write-allocate: the writer's own cache was populated by the puts,
    // so reading back its own blob never re-fetches a block.
    let first = c.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&first[..], &payload[..]);
    let writer_snap = sys.stats().snapshot();
    assert!(
        writer_snap.cache_hits > 0,
        "write-allocate must serve the writer's read-back from cache"
    );
    assert_eq!(
        writer_snap.cache_misses, 0,
        "the writer populated every block and tree node it reads back"
    );

    // A second deployment starts cold: its first read pays misses over
    // the wire, the hot re-read is served from its own cache with fewer
    // round trips.
    let sys2 = cluster.deploy().unwrap();
    let c2 = sys2.client(NodeId::new(9));
    let cold = c2.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&cold[..], &payload[..]);
    let after_cold = sys2.stats().snapshot();
    assert!(
        after_cold.cache_misses > 0,
        "the cold read populates via misses"
    );

    let warm = c2.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&warm[..], &payload[..]);
    let after_warm = sys2.stats().snapshot();
    assert!(
        after_warm.cache_hits > after_cold.cache_hits,
        "the hot re-read must hit the cache"
    );
    assert_eq!(
        after_warm.cache_misses, after_cold.cache_misses,
        "nothing evicted under a 1 MiB budget: the re-read misses nothing"
    );
    let cold_trips = after_cold.port_round_trips;
    let warm_trips = after_warm.port_round_trips - cold_trips;
    assert!(
        warm_trips < cold_trips,
        "cached re-read took {warm_trips} round trips vs {cold_trips} cold"
    );
}
