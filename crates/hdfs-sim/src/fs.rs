//! The HDFS FileSystem implementation: cluster wiring plus client streams.
//!
//! Client-side buffering mirrors §II-B: "HDFS employs a client side
//! buffering mechanism … It prefetches data on reading. On writing, it
//! postpones committing data after the buffer has reached at least a full
//! chunk size."

use crate::datanode::DataNode;
use crate::namenode::{ChunkMeta, FileSnapshot, LeaseId, NameNode};
use blobseer_types::{Error, HdfsConfig, NodeId, Result};
use bytes::Bytes;
use dfs::api::{DfsInput, DfsOutput, FileStatus, FileSystem, FsBlockLocation};
use dfs::DfsPath;
use std::sync::Arc;

/// The cluster-wide HDFS state: one namenode plus the datanodes.
pub struct HdfsCluster {
    namenode: NameNode,
    datanodes: Vec<DataNode>,
}

impl HdfsCluster {
    /// Deploys HDFS with datanodes on nodes `0..n`.
    pub fn new(cfg: HdfsConfig, n_datanodes: usize) -> Arc<Self> {
        Self::new_on(cfg, (0..n_datanodes as u64).map(NodeId::new).collect())
    }

    /// Deploys HDFS with one datanode per given node.
    pub fn new_on(cfg: HdfsConfig, datanode_nodes: Vec<NodeId>) -> Arc<Self> {
        assert!(!datanode_nodes.is_empty());
        Arc::new(Self {
            namenode: NameNode::new(cfg, datanode_nodes.len()),
            datanodes: datanode_nodes.into_iter().map(DataNode::new).collect(),
        })
    }

    /// A FileSystem handle for a client on `node`. When the node hosts a
    /// datanode, writes go local-first (§V-D).
    pub fn mount(self: &Arc<Self>, node: NodeId) -> Hdfs {
        let local_dn = self.datanodes.iter().position(|d| d.node() == node);
        Hdfs {
            cluster: Arc::clone(self),
            node,
            local_dn,
        }
    }

    /// The namenode (for op-count and layout inspection).
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// The datanode at dense index `i`.
    pub fn datanode(&self, i: usize) -> &DataNode {
        &self.datanodes[i]
    }

    /// Chunk counts per datanode (Fig. 3(b) layout vector).
    pub fn layout_vector(&self) -> Vec<u64> {
        self.namenode.layout_vector()
    }

    fn reclaim(&self, chunks: &[ChunkMeta]) {
        for c in chunks {
            for &dn in &c.datanodes {
                self.datanodes[dn].delete(c.id);
            }
        }
    }
}

/// A per-node HDFS handle.
#[derive(Clone)]
pub struct Hdfs {
    cluster: Arc<HdfsCluster>,
    node: NodeId,
    local_dn: Option<usize>,
}

impl Hdfs {
    /// The node this handle is mounted on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl FileSystem for Hdfs {
    fn create(&self, path: &str, overwrite: bool) -> Result<Box<dyn DfsOutput + '_>> {
        let path = DfsPath::parse(path)?;
        let (lease, old_chunks) = self
            .cluster
            .namenode
            .create(&path, overwrite, self.local_dn)?;
        self.cluster.reclaim(&old_chunks);
        Ok(Box::new(HdfsOutput::new(
            Arc::clone(&self.cluster),
            path,
            lease,
            self.local_dn,
            0,
            0,
        )))
    }

    fn append(&self, path: &str) -> Result<Box<dyn DfsOutput + '_>> {
        let path = DfsPath::parse(path)?;
        // Refused on stock 0.20 (§V-F); supported when configured like
        // later Hadoop releases.
        let (lease, snap) = self.cluster.namenode.append(&path, self.local_dn)?;
        let tail = snap
            .chunks
            .last()
            .map(|c| c.len as u64 % self.cluster.namenode.config().chunk_size)
            .unwrap_or(0);
        if tail > 0 {
            // Reopen the partial tail chunk for writing (block recovery).
            let meta = snap.chunks.last().expect("tail implies a chunk");
            for &dn in &meta.datanodes {
                self.cluster.datanodes[dn].unseal(meta.id);
            }
        }
        Ok(Box::new(HdfsOutput::new(
            Arc::clone(&self.cluster),
            path,
            lease,
            self.local_dn,
            snap.len,
            tail,
        )))
    }

    fn open(&self, path: &str) -> Result<Box<dyn DfsInput + '_>> {
        let path = DfsPath::parse(path)?;
        let snap = self.cluster.namenode.file_snapshot(&path)?;
        Ok(Box::new(HdfsInput {
            cluster: Arc::clone(&self.cluster),
            snap,
            pos: 0,
            cache: None,
        }))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.cluster.namenode.exists(&DfsPath::parse(path)?)
    }

    fn status(&self, path: &str) -> Result<FileStatus> {
        let path = DfsPath::parse(path)?;
        let (is_dir, len) = self.cluster.namenode.status(&path)?;
        Ok(FileStatus {
            path: path.to_string(),
            is_dir,
            len,
            block_size: self.block_size(),
        })
    }

    fn list(&self, path: &str) -> Result<Vec<FileStatus>> {
        let path = DfsPath::parse(path)?;
        self.cluster
            .namenode
            .list(&path)?
            .into_iter()
            .map(|(name, is_dir, len)| {
                Ok(FileStatus {
                    path: path.join(&name)?.to_string(),
                    is_dir,
                    len,
                    block_size: self.block_size(),
                })
            })
            .collect()
    }

    fn mkdirs(&self, path: &str) -> Result<()> {
        self.cluster.namenode.mkdirs(&DfsPath::parse(path)?)
    }

    fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        let chunks = self
            .cluster
            .namenode
            .delete(&DfsPath::parse(path)?, recursive)?;
        self.cluster.reclaim(&chunks);
        Ok(())
    }

    fn rename(&self, src: &str, dst: &str) -> Result<()> {
        self.cluster
            .namenode
            .rename(&DfsPath::parse(src)?, &DfsPath::parse(dst)?)
    }

    fn block_locations(&self, path: &str, offset: u64, len: u64) -> Result<Vec<FsBlockLocation>> {
        let path = DfsPath::parse(path)?;
        let snap = self.cluster.namenode.file_snapshot(&path)?;
        let end = (offset + len).min(snap.len);
        let mut out = Vec::new();
        let mut chunk_start = 0u64;
        for c in &snap.chunks {
            let chunk_end = chunk_start + c.len as u64;
            if chunk_start < end && offset < chunk_end {
                out.push(FsBlockLocation {
                    offset: chunk_start,
                    length: c.len as u64,
                    hosts: c
                        .datanodes
                        .iter()
                        .map(|&dn| self.cluster.datanodes[dn].node())
                        .collect(),
                });
            }
            chunk_start = chunk_end;
        }
        Ok(out)
    }

    fn block_size(&self) -> u64 {
        self.cluster.namenode.config().chunk_size
    }

    fn backend_name(&self) -> &'static str {
        "HDFS"
    }
}

/// Buffered chunk-prefetching reader.
struct HdfsInput {
    cluster: Arc<HdfsCluster>,
    snap: FileSnapshot,
    pos: u64,
    /// (chunk index in snapshot, payload).
    cache: Option<(usize, Bytes)>,
}

impl HdfsInput {
    /// Chunk index and in-chunk offset for a file position.
    fn locate(&self, pos: u64) -> Option<(usize, u64)> {
        let mut start = 0u64;
        for (i, c) in self.snap.chunks.iter().enumerate() {
            let end = start + c.len as u64;
            if pos < end {
                return Some((i, pos - start));
            }
            start = end;
        }
        None
    }
}

impl DfsInput for HdfsInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.pos >= self.snap.len || buf.is_empty() {
            return Ok(0);
        }
        let (idx, in_chunk) = self.locate(self.pos).expect("pos < len");
        let hit = matches!(self.cache, Some((i, _)) if i == idx);
        if !hit {
            // Prefetch the whole chunk from one of its replicas.
            let meta = &self.snap.chunks[idx];
            let replica = meta.datanodes[idx % meta.datanodes.len()];
            let data = self.cluster.datanodes[replica].get(meta.id)?;
            self.cache = Some((idx, data));
        }
        let (_, data) = self.cache.as_ref().expect("filled");
        let in_chunk = in_chunk as usize;
        let n = buf.len().min(data.len() - in_chunk);
        buf[..n].copy_from_slice(&data[in_chunk..in_chunk + n]);
        self.pos += n as u64;
        Ok(n)
    }

    fn seek(&mut self, pos: u64) -> Result<()> {
        if pos > self.snap.len {
            return Err(Error::OutOfBounds {
                requested_end: pos,
                snapshot_size: self.snap.len,
            });
        }
        self.pos = pos;
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn len(&self) -> u64 {
        self.snap.len
    }
}

/// Buffered chunk-committing writer holding the single-writer lease.
struct HdfsOutput {
    cluster: Arc<HdfsCluster>,
    path: DfsPath,
    lease: LeaseId,
    local_dn: Option<usize>,
    buf: Vec<u8>,
    chunk_size: usize,
    written: u64,
    /// Bytes of room left in the file's (unsealed) tail chunk, for appends.
    tail_room_used: u64,
    closed: bool,
}

impl HdfsOutput {
    fn new(
        cluster: Arc<HdfsCluster>,
        path: DfsPath,
        lease: LeaseId,
        local_dn: Option<usize>,
        existing_len: u64,
        tail_fill: u64,
    ) -> Self {
        let chunk_size = cluster.namenode.config().chunk_size as usize;
        Self {
            cluster,
            path,
            lease,
            local_dn,
            buf: Vec::with_capacity(chunk_size),
            chunk_size,
            written: existing_len,
            tail_room_used: tail_fill,
            closed: false,
        }
    }

    /// Room left before the next chunk boundary.
    fn room(&self) -> usize {
        if self.tail_room_used > 0 {
            self.chunk_size - self.tail_room_used as usize - self.buf.len()
        } else {
            self.chunk_size - self.buf.len()
        }
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let data = std::mem::take(&mut self.buf);
        if self.tail_room_used > 0 {
            // Appending into the existing partial tail chunk.
            let (id, dns) = self.cluster.namenode.extend_last_chunk(
                &self.path,
                self.lease,
                data.len() as u32,
            )?;
            for &dn in &dns {
                self.cluster.datanodes[dn].extend(id, &data)?;
            }
            self.tail_room_used += data.len() as u64;
            if self.tail_room_used as usize >= self.chunk_size {
                self.tail_room_used = 0;
            }
        } else {
            let (id, dns) = self.cluster.namenode.add_chunk(
                &self.path,
                self.lease,
                data.len() as u32,
                self.local_dn,
            )?;
            let mut first = true;
            for &dn in &dns {
                // The write pipeline: the client sends once; datanodes
                // forward to the next replica.
                if first {
                    self.cluster.datanodes[dn].put(id, data.clone())?;
                    first = false;
                } else {
                    self.cluster.datanodes[dn].put(id, data.clone())?;
                }
            }
            if data.len() < self.chunk_size {
                self.tail_room_used = data.len() as u64;
            }
        }
        Ok(())
    }
}

impl DfsOutput for HdfsOutput {
    fn write(&mut self, mut data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(Error::StreamClosed);
        }
        self.written += data.len() as u64;
        while !data.is_empty() {
            let take = self.room().min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.room() == 0 {
                self.flush_buf()?;
            }
        }
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.written
    }

    fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.flush_buf()?;
        self.closed = true;
        let chunks = self.cluster.namenode.complete(&self.path, self.lease)?;
        // Data becomes immutable once the file completes.
        for c in &chunks {
            for &dn in &c.datanodes {
                self.cluster.datanodes[dn].seal(c.id);
            }
        }
        Ok(())
    }
}

impl Drop for HdfsOutput {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::util::{read_fully, write_file};

    fn cluster() -> Arc<HdfsCluster> {
        HdfsCluster::new(HdfsConfig::small_for_tests().with_chunk_size(256), 4)
    }

    #[test]
    fn conformance_suite() {
        let fs = cluster().mount(NodeId::new(100)); // remote client
        dfs::conformance::run_all(&fs);
    }

    #[test]
    fn conformance_suite_colocated_client() {
        let fs = cluster().mount(NodeId::new(0)); // co-located with datanode 0
        dfs::conformance::run_all(&fs);
    }

    #[test]
    fn append_unsupported_on_stock_020() {
        let fs = cluster().mount(NodeId::new(0));
        write_file(&fs, "/f", b"abc").unwrap();
        assert!(matches!(fs.append("/f"), Err(Error::Unsupported(_))));
    }

    #[test]
    fn append_works_when_enabled() {
        let cfg = HdfsConfig::small_for_tests()
            .with_chunk_size(256)
            .with_append(true);
        let cl = HdfsCluster::new(cfg, 4);
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/f", &vec![1u8; 300]).unwrap(); // 1 full + 44-byte tail
        let mut out = fs.append("/f").unwrap();
        out.write(&vec![2u8; 300]).unwrap(); // fills tail (212) + new chunk (88)
        out.close().unwrap();
        let data = read_fully(&fs, "/f").unwrap();
        assert_eq!(data.len(), 600);
        assert!(data[..300].iter().all(|&b| b == 1));
        assert!(data[300..].iter().all(|&b| b == 2));
        // Concurrent append is still single-writer.
        let out1 = fs.append("/f").unwrap();
        assert!(matches!(fs.append("/f"), Err(Error::LeaseConflict(_))));
        drop(out1);
    }

    #[test]
    fn colocated_writer_stores_locally() {
        // §V-D: "writing locally whenever a write is initiated on a
        // datanode" — the motivation for the paper deploying HDFS test
        // clients on non-datanodes.
        let cl = cluster();
        let fs = cl.mount(NodeId::new(2));
        write_file(&fs, "/local", &vec![9u8; 1024]).unwrap(); // 4 chunks
        let layout = cl.layout_vector();
        assert_eq!(layout, vec![0, 0, 4, 0], "all chunks on the local datanode");
    }

    #[test]
    fn remote_writer_spreads_chunks() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(999));
        write_file(&fs, "/remote", &vec![9u8; 4096]).unwrap(); // 16 chunks
        let layout = cl.layout_vector();
        assert_eq!(layout.iter().sum::<u64>(), 16);
        assert!(
            layout.iter().filter(|&&c| c > 0).count() >= 2,
            "remote chunks spread over datanodes: {layout:?}"
        );
    }

    #[test]
    fn single_writer_enforced_at_fs_level() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        let out1 = fs.create("/locked", false).unwrap();
        assert!(matches!(
            fs.create("/locked", true),
            Err(Error::LeaseConflict(_))
        ));
        drop(out1); // close releases the lease
        let mut out2 = fs.create("/locked", true).unwrap();
        out2.write(b"x").unwrap();
        out2.close().unwrap();
    }

    #[test]
    fn no_random_writes_after_close() {
        // HDFS files are write-once: there is no API to reopen for
        // overwrite other than create(overwrite=true), which truncates.
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/once", b"version 1").unwrap();
        write_file(&fs, "/once", b"v2").unwrap();
        assert_eq!(read_fully(&fs, "/once").unwrap(), b"v2");
    }

    #[test]
    fn block_locations_report_chunk_hosts() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(1));
        write_file(&fs, "/f", &vec![1u8; 600]).unwrap();
        let locs = fs.block_locations("/f", 0, 600).unwrap();
        assert_eq!(locs.len(), 3);
        assert_eq!(locs[0].length, 256);
        assert_eq!(locs[2].length, 88);
        for l in &locs {
            assert_eq!(l.hosts, vec![NodeId::new(1)], "local-first placement");
        }
    }

    #[test]
    fn reclaim_on_delete_and_overwrite() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/f", &vec![1u8; 1024]).unwrap();
        let stored: u64 = (0..4).map(|i| cl.datanode(i).bytes_stored()).sum();
        assert_eq!(stored, 1024);
        write_file(&fs, "/f", &vec![2u8; 256]).unwrap();
        let stored: u64 = (0..4).map(|i| cl.datanode(i).bytes_stored()).sum();
        assert_eq!(stored, 256, "overwrite reclaims old chunks");
        fs.delete("/f", false).unwrap();
        let stored: u64 = (0..4).map(|i| cl.datanode(i).bytes_stored()).sum();
        assert_eq!(stored, 0, "delete reclaims chunks");
    }

    #[test]
    fn namenode_serves_every_metadata_op() {
        // The centralized-bottleneck property: every namespace and layout
        // operation hits the single namenode.
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        let before = cl.namenode().op_count();
        write_file(&fs, "/f", &vec![0u8; 600]).unwrap();
        let after_write = cl.namenode().op_count();
        assert!(
            after_write > before,
            "create/add_chunk/complete all hit the namenode"
        );
        // Reads hit it once (open), then stream from datanodes.
        let mut input = fs.open("/f").unwrap();
        let after_open = cl.namenode().op_count();
        let mut buf = [0u8; 64];
        for _ in 0..8 {
            input.read_exact(&mut buf).unwrap();
        }
        assert_eq!(
            cl.namenode().op_count(),
            after_open,
            "reads bypass the namenode"
        );
    }
}
