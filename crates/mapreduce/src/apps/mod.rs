//! The paper's Map/Reduce applications (§V-G), plus the classic WordCount.

pub mod grep;
pub mod random_text_writer;
pub mod wordcount;

pub use grep::DistributedGrep;
pub use random_text_writer::RandomTextWriter;
pub use wordcount::WordCount;
