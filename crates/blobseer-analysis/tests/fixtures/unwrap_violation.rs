// Fixture: protocol-library code using unwrap/expect. Linted by
// tests/lint_rules.rs under a blobseer-core relative path; the walker
// skips `fixtures/` directories so this file never reaches the real lint.
pub fn decode(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}

pub fn tail(v: &[u32]) -> u32 {
    *v.last().expect("non-empty")
}
