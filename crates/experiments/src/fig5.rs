//! Fig. 5: aggregated throughput of 1→250 clients concurrently appending
//! 64 MB each to the *same* BLOB (§V-F) — the scenario HDFS cannot run at
//! all ("we could not perform the same experiment for HDFS, since it does
//! not implement the append operation").
//!
//! The model runs the full two-phase append protocol per client:
//!
//! 1. **Data phase, fully parallel**: each appender streams its block to a
//!    round-robin provider (disjoint providers at the paper's scale —
//!    that is what makes the aggregate scale linearly).
//! 2. **Version assignment**: all appenders funnel through the version
//!    manager's FIFO queue — the protocol's only serialization point; its
//!    service time is the knee that bends the curve at high client counts.
//! 3. **Metadata phase, parallel**: each appender publishes the tree nodes
//!    its version materializes (real counts from
//!    `blobseer_core::meta::shape`, including the shared-spine savings)
//!    across the 20 metadata providers.
//!
//! The same world can run the appends as *writes at random block-aligned
//! offsets* — the paper notes "the same experiment performed with writes
//! instead of appends leads to very similar results" (§V-F); the
//! `ablations` bench exercises that claim.

use crate::constants::Constants;
use crate::report::{Figure, Series};
use crate::topology::{Backend, Services};
use blobseer_core::meta::key::BlockRange;
use blobseer_core::meta::log::LogEntry;
use blobseer_core::meta::shape;
use blobseer_types::{NodeId, Version};
use simnet::{start_flow, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime};

/// Append vs random-offset write mode (§V-F's closing remark).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpMode {
    /// True appends: offsets assigned by the version manager.
    Append,
    /// Block-aligned writes at random offsets within the existing BLOB.
    RandomWrite,
}

#[derive(Clone, Copy)]
struct Tok {
    client: usize,
    provider: usize,
    started: SimTime,
}

struct World {
    net: FlowNet<Tok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    services: Services,
    mode: OpMode,
    n_providers: usize,
    n_clients: usize,
    /// Versions assigned so far (assignment order = arrival order at the
    /// version manager).
    versions_assigned: u64,
    durations: Vec<Option<SimDuration>>,
}

impl NetWorld for World {
    type Token = Tok;
    fn net_mut(&mut self) -> &mut FlowNet<Tok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: Tok) {
        let disk_done = self.disks[tok.provider].submit(tok.started, self.c.block_bytes);
        let ack = disk_done.max(sched.now()) + self.c.provider_svc;
        sched.schedule_at(ack, move |w: &mut World, s| w.metadata_phase(s, tok.client));
    }
}

impl World {
    fn new(c: Constants, mode: OpMode, n_clients: usize) -> Self {
        let providers = Backend::Bsfs.microbench_storage_nodes();
        let net = FlowNet::new(providers.max(n_clients), NicSpec::symmetric(c.nic_bps));
        let disks = (0..providers)
            .map(|_| simnet::Disk::new(c.disk_write_bps))
            .collect();
        let services = Services::new(&c, Backend::Bsfs, c.meta_shards);
        Self {
            net,
            disks,
            c,
            services,
            mode,
            n_providers: providers,
            n_clients,
            versions_assigned: 0,
            durations: vec![None; n_clients],
        }
    }

    /// Data phase: cache-flush overhead, provider-manager RPC, bulk flow.
    fn start_client(&mut self, sched: &mut Scheduler<Self>, client: usize) {
        let at = sched.now() + self.c.bsfs_block_overhead + self.c.rtt();
        sched.schedule_at(at, move |w: &mut World, s| {
            // Global round-robin allocation, offset so appender i and
            // provider i are unrelated.
            let provider = (client + 13) % w.n_providers;
            let tok = Tok {
                client,
                provider,
                started: s.now(),
            };
            if provider == client {
                // Co-located: disk only.
                let disk_done = w.disks[provider].submit(s.now(), w.c.block_bytes);
                let ack = disk_done + w.c.provider_svc;
                s.schedule_at(ack, move |w: &mut World, s| w.metadata_phase(s, client));
            } else {
                start_flow(
                    w,
                    s,
                    NodeId::new(client as u64),
                    NodeId::new(provider as u64),
                    w.c.block_bytes,
                    tok,
                );
            }
        });
    }

    /// Version assignment (serialized) + tree-node puts + commit.
    fn metadata_phase(&mut self, sched: &mut Scheduler<Self>, client: usize) {
        let now = sched.now();
        let assigned_at = self
            .services
            .central_call(now, self.c.vm_assign_svc, self.c.latency);
        // The version this appender gets is its arrival rank at the VM.
        self.versions_assigned += 1;
        let v = self.versions_assigned;
        let entry = match self.mode {
            OpMode::Append => {
                // The BLOB grows block by block; capacity doubles as needed.
                LogEntry {
                    version: Version::new(v),
                    blocks: BlockRange::new(v - 1, v),
                    cap_before: if v == 1 {
                        0
                    } else {
                        (v - 1).next_power_of_two()
                    },
                    cap_after: v.next_power_of_two(),
                    size_after: v * self.c.block_bytes,
                }
            }
            OpMode::RandomWrite => {
                // Overwrite a pseudo-random block of a pre-existing
                // N-block BLOB: capacity is fixed, paths are full depth.
                let cap = (self.n_clients as u64).next_power_of_two().max(1);
                let b = (v * 2_654_435_761) % self.n_clients.max(1) as u64;
                LogEntry {
                    version: Version::new(v),
                    blocks: BlockRange::new(b, b + 1),
                    cap_before: cap,
                    cap_after: cap,
                    size_after: self.n_clients as u64 * self.c.block_bytes,
                }
            }
        };
        let puts_done =
            self.services
                .meta_parallel(assigned_at, shape::nodes_created(&entry), self.c.latency);
        let done = puts_done + self.c.rtt();
        sched.schedule_at(done, move |w: &mut World, s| {
            w.durations[client] = Some(s.now() - SimTime::ZERO);
        });
    }
}

/// Simulates N concurrent appenders (or random writers); returns the
/// aggregated throughput in MB/s, following the paper's measurement
/// methodology ("individual throughput is collected and is then averaged",
/// §V-C): the sum of per-client rates.
pub fn aggregated_mbps(c: &Constants, mode: OpMode, n_clients: usize) -> f64 {
    let mut sim = Sim::new(World::new(c.clone(), mode, n_clients));
    for client in 0..n_clients {
        sim.schedule_in(SimDuration::ZERO, move |w: &mut World, s| {
            w.start_client(s, client)
        });
    }
    sim.run_until_idle();
    let block_mb = c.block_bytes as f64 / (1024.0 * 1024.0);
    sim.world
        .durations
        .iter()
        .map(|d| block_mb / d.expect("append finished").as_secs_f64())
        .sum()
}

/// Reproduces Fig. 5: aggregated append throughput vs client count (BSFS
/// only — HDFS has no append).
pub fn run(c: &Constants, client_counts: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 5",
        "Concurrent appends to a shared file: aggregated throughput (BSFS; HDFS unsupported, §V-F)",
        "number of clients",
        "aggregated throughput (MB/s)",
    );
    let mut series = Series::new("BSFS");
    for &n in client_counts {
        series.push(n as f64, aggregated_mbps(c, OpMode::Append, n));
    }
    fig.series.push(series);
    fig
}

/// The paper's x grid: 1 → 250 clients.
pub fn paper_counts() -> Vec<usize> {
    vec![1, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_scales_near_linearly() {
        let c = Constants::default();
        let t1 = aggregated_mbps(&c, OpMode::Append, 1);
        let t100 = aggregated_mbps(&c, OpMode::Append, 100);
        let t250 = aggregated_mbps(&c, OpMode::Append, 250);
        assert!(
            (50.0..70.0).contains(&t1),
            "single appender ≈ single writer: {t1:.0}"
        );
        assert!(t100 > t1 * 60.0, "100 clients scale: {t100:.0}");
        assert!(t250 > t100 * 1.5, "still climbing at 250: {t250:.0}");
        // Paper reaches ≈ 9–10 GB/s at 250 clients.
        assert!(
            (7_000.0..14_000.0).contains(&t250),
            "aggregate at 250: {t250:.0}"
        );
        // Sub-linear by then: the version manager's serialization bites.
        assert!(t250 < t1 * 250.0, "VM serialization must bend the curve");
    }

    #[test]
    fn random_writes_behave_like_appends() {
        // §V-F: "The same experiment performed with writes instead of
        // appends, leads to very similar results."
        let c = Constants::default();
        for n in [50, 200] {
            let a = aggregated_mbps(&c, OpMode::Append, n);
            let w = aggregated_mbps(&c, OpMode::RandomWrite, n);
            let rel = (a - w).abs() / a;
            assert!(
                rel < 0.15,
                "append {a:.0} vs write {w:.0} at {n} clients ({rel:.2})"
            );
        }
    }

    #[test]
    fn deterministic() {
        let c = Constants::default();
        assert_eq!(
            aggregated_mbps(&c, OpMode::Append, 40),
            aggregated_mbps(&c, OpMode::Append, 40)
        );
    }
}
