//! A leader-based replicated [`VersionService`]: the version manager —
//! the protocol's single serialization point and, until this crate, its
//! single point of failure — run as a group of in-process replicas that
//! survives leader crashes mid-append-storm with no lost or duplicated
//! version numbers.
//!
//! ## Why replication is cheap here
//!
//! The version manager is a deterministic state machine over a small
//! command alphabet (the six mutating calls of the port, [`CommandKind`]):
//! its state is a pure function of the sequence of successful mutations,
//! and ids/versions are handed out sequentially, so replaying one log
//! against a fresh manager reproduces the *identical* state — the same
//! property `blobseer-disk`'s durable wrapper exploits for persistence is
//! what makes replicas byte-for-byte equivalent.
//!
//! ## Protocol
//!
//! One mutation = one **round**: the leader deduplicates the submission
//! (seq → memoized reply), applies the command to its own state machine
//! (a precondition failure is returned to the caller and never logged),
//! appends a term/index-stamped [`RepEntry`] to its log, then replicates
//! the entry to every live follower, which appends and applies it too.
//! The round runs with every live replica locked, so an acknowledged
//! mutation is on **all** live replicas — a superset of the majority the
//! quorum check guarantees — and any survivor can lead without data loss.
//!
//! Elections are deterministic: the live replica with the highest
//! `(last log term, log length, id)` wins, the same ordering recovery
//! uses to pick the reference log, so a mid-storm failover and a restart
//! agree about which history survives. Retried submissions are made
//! exactly-once by the dedup memo: a leader that crashed *before*
//! replicating never contaminated the survivors (the retry re-executes on
//! the new leader, whose state is still pre-command), and one that
//! crashed *after* left the memo on every follower (the retry returns the
//! cached reply without re-executing). [`CrashPoint`] injects exactly
//! those two failures.
//!
//! Reads go to the leader's state machine under a countdown **lease**:
//! while the lease has reads left the cached leader is trusted without a
//! group-wide membership check; every round and every re-validation
//! renews it. Reveal waits ([`VersionService::wait_revealed`]) park on
//! the leader's own condvar in short slices, re-resolving the leader
//! between slices, so a kill mid-wait strands the waiter for at most one
//! slice — and no `ctl.*` lock is ever held while parked.
//!
//! ## Lock order
//!
//! `ctl.group` → `ctl.replica` ranks ascending (replica `i` has rank
//! `i`). Every multi-replica operation locks the group first, then the
//! replicas it needs in ascending index order; nothing ever takes the
//! group lock while holding a replica lock.

use crate::codec::{Command, CommandKind};
use crate::replog::{decode_entry, encode_entry, RepEntry};
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::ports::VersionService;
use blobseer_core::version_manager::{SnapshotInfo, VersionManager, WriteIntent, WriteTicket};
use blobseer_core::EngineStats;
use blobseer_disk::FrameLog;
use blobseer_types::{BlobId, Error, Result, Version};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry budget for one submission across leader failures.
const MAX_ROUNDS: usize = 8;

/// Reads served off the cached leader before it is re-validated against
/// the live set.
const LEASE_READS: u32 = 64;

/// Memoized replies kept per replica for retry deduplication (FIFO).
const DEDUP_CAP: usize = 1024;

/// Reveal-wait poll slice: how long a waiter parks on one leader's
/// condvar before re-resolving leadership.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// The stable client id this service stamps on its commands. The log
/// format is multi-client; one hosted service instance is one client.
const CLIENT_ID: u64 = 1;

const CRASH_NONE: u8 = 0;
const CRASH_BEFORE: u8 = 1;
const CRASH_AFTER: u8 = 2;

/// Where the next submission kills the leader — fault injection for
/// failover tests. One-shot: the crash consumes the setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the leader applied and logged locally but before any
    /// follower saw the entry. The retry must *re-execute* on the new
    /// leader (whose state is still pre-command) — exactly-once by
    /// containment.
    BeforeReplicate,
    /// After every follower acknowledged. The retry must hit the dedup
    /// memo and *not* re-execute — exactly-once by memoization.
    AfterReplicate,
}

/// The memoized result of one applied command. Followers regenerate the
/// same reply by applying the same command to the same state, which is
/// what lets any of them answer a retry after the leader dies.
#[derive(Clone)]
enum Reply {
    Blob(BlobId),
    Ticket(WriteTicket),
    Unit,
    Roots(Vec<NodeKey>),
}

fn shape_err(want: &str) -> Error {
    Error::Internal(format!("replicated reply is not a {want}"))
}

impl Reply {
    fn blob(self) -> Result<BlobId> {
        match self {
            Reply::Blob(b) => Ok(b),
            _ => Err(shape_err("blob id")),
        }
    }

    fn ticket(self) -> Result<WriteTicket> {
        match self {
            Reply::Ticket(t) => Ok(t),
            _ => Err(shape_err("write ticket")),
        }
    }

    fn unit(self) -> Result<()> {
        match self {
            Reply::Unit => Ok(()),
            _ => Err(shape_err("unit")),
        }
    }

    fn roots(self) -> Result<Vec<NodeKey>> {
        match self {
            Reply::Roots(r) => Ok(r),
            _ => Err(shape_err("root-key list")),
        }
    }
}

/// Applies one command to a replica's state machine. The manager is
/// deterministic, so every replica applying the same log computes the
/// same replies and the same state.
fn apply(vm: &VersionManager, kind: CommandKind) -> Result<Reply> {
    match kind {
        CommandKind::CreateBlob => Ok(Reply::Blob(vm.create_blob())),
        CommandKind::Branch { parent, at } => vm.branch(parent, at).map(Reply::Blob),
        CommandKind::Assign { blob, intent } => vm.assign(blob, intent).map(Reply::Ticket),
        CommandKind::Commit { blob, version } => vm.commit(blob, version).map(|()| Reply::Unit),
        CommandKind::DeleteBlob { blob } => vm.delete_blob(blob).map(Reply::Roots),
        CommandKind::CollectBefore { blob, keep_from } => {
            vm.collect_before(blob, keep_from).map(Reply::Roots)
        }
    }
}

/// One replica's guarded state: the state machine, the log it replays,
/// and the dedup memo.
struct ReplicaState {
    /// The state machine. `Arc` so readers can use it with no `ctl.*`
    /// lock held (reveal waits park on the manager's own condvar).
    vm: Arc<VersionManager>,
    /// The replicated log this state machine is the replay of.
    log: Vec<RepEntry>,
    /// Durable form of `log` (durable deployments only), in the same
    /// checksummed frame format as every other `blobseer-disk` log.
    disk: Option<FrameLog>,
    /// seq → reply memo for exactly-once retries.
    dedup: HashMap<u64, Reply>,
    /// Insertion order of `dedup` keys, for FIFO eviction at [`DEDUP_CAP`].
    dedup_order: VecDeque<u64>,
}

impl ReplicaState {
    fn fresh(block_size: u64) -> Self {
        Self {
            vm: Arc::new(VersionManager::new(
                block_size,
                Arc::new(EngineStats::new()),
            )),
            log: Vec::new(),
            disk: None,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
        }
    }

    fn last_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn remember(&mut self, seq: u64, reply: Reply) {
        if self.dedup.insert(seq, reply).is_none() {
            self.dedup_order.push_back(seq);
            if self.dedup_order.len() > DEDUP_CAP {
                if let Some(evicted) = self.dedup_order.pop_front() {
                    self.dedup.remove(&evicted);
                }
            }
        }
    }

    /// Appends `entry` to the in-memory log and, when durable, the disk
    /// log (disk first, so a crash between the two loses an ack the
    /// caller never received rather than inventing one).
    fn append(&mut self, entry: RepEntry) -> Result<()> {
        if let Some(disk) = &mut self.disk {
            disk.append(&encode_entry(&entry))?;
        }
        self.log.push(entry);
        Ok(())
    }

    /// Replays `entries` into a fresh state machine, regenerating the
    /// dedup memo. The disk handle is kept but not rewritten.
    fn replay(&mut self, block_size: u64, entries: &[RepEntry]) -> Result<()> {
        self.vm = Arc::new(VersionManager::new(
            block_size,
            Arc::new(EngineStats::new()),
        ));
        self.log = Vec::new();
        self.dedup.clear();
        self.dedup_order.clear();
        for e in entries {
            let reply = apply(&self.vm, e.command.kind).map_err(|err| {
                Error::Internal(format!(
                    "replicated log replay diverged at index {}: {err}",
                    e.index
                ))
            })?;
            self.remember(e.command.seq, reply);
            self.log.push(*e);
        }
        Ok(())
    }

    /// [`ReplicaState::replay`] plus rewriting the durable log to match —
    /// how a divergent or stale replica adopts the reference history.
    fn rebuild(&mut self, block_size: u64, entries: &[RepEntry]) -> Result<()> {
        self.replay(block_size, entries)?;
        if let Some(disk) = &mut self.disk {
            disk.truncate_all()?;
            let frames: Vec<Vec<u8>> = entries.iter().map(encode_entry).collect();
            disk.append_many(frames.iter().map(Vec::as_slice))?;
            disk.sync()?;
        }
        Ok(())
    }
}

struct Replica {
    /// Rank = replica index: multi-replica operations lock ascending.
    state: Mutex<ReplicaState>,
    /// Flipped by [`ReplicatedVersionService::kill`]/`revive` (and the
    /// crash points); always written under the group lock, so rounds are
    /// serialized against kills.
    alive: AtomicBool,
}

/// Group-wide election state, guarded by the `ctl.group` lock.
struct Group {
    /// Election term; bumps on every leader change, stamps every entry.
    term: u64,
    /// The current leader's replica index, once one has been elected.
    leader: Option<usize>,
    /// Reads left on the leader lease before the fast path re-validates.
    lease_left: u32,
}

/// A [`VersionService`] served by a leader-based replica group: `n`
/// in-process [`VersionManager`] replicas, majority quorum, deterministic
/// re-election, and exactly-once retries across leader crashes.
///
/// With `n = 1` the group degenerates to a slightly indirected single
/// version manager — the figure-reproduction setting. Durable groups
/// ([`ReplicatedVersionService::open`]) persist one checksummed frame log
/// per replica and reconcile divergent logs on reopen.
pub struct ReplicatedVersionService {
    block_size: u64,
    replicas: Vec<Replica>,
    group: Mutex<Group>,
    next_seq: AtomicU64,
    crash_point: AtomicU8,
}

impl fmt::Debug for ReplicatedVersionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // No locks here: Debug may run while a `ctl.*` lock is held.
        f.debug_struct("ReplicatedVersionService")
            .field("replicas", &self.replicas.len())
            .field("block_size", &self.block_size)
            .finish_non_exhaustive()
    }
}

fn quorum_err(alive: usize, total: usize, need: usize) -> Error {
    Error::Transport(format!(
        "version-manager group lost quorum: {alive} of {total} replicas alive, need {need}"
    ))
}

impl ReplicatedVersionService {
    /// A RAM-backed group of `replicas` state machines for BLOBs striped
    /// into `block_size`-byte blocks.
    pub fn new(replicas: usize, block_size: u64) -> Arc<Self> {
        assert!(replicas >= 1, "a group needs at least one replica");
        Arc::new(Self {
            block_size,
            replicas: (0..replicas)
                .map(|i| Replica {
                    state: Mutex::ranked(ReplicaState::fresh(block_size), "ctl.replica", i as u32),
                    alive: AtomicBool::new(true),
                })
                .collect(),
            group: Mutex::named(
                Group {
                    term: 0,
                    leader: None,
                    lease_left: 0,
                },
                "ctl.group",
            ),
            next_seq: AtomicU64::new(1),
            crash_point: AtomicU8::new(CRASH_NONE),
        })
    }

    /// Opens (or creates) a durable group persisting one frame log per
    /// replica under `dir` (`vm-replica-{i}.log`).
    ///
    /// Recovery picks the **reference** log by the election ordering —
    /// highest `(last term, length, id)` — and rebuilds every replica
    /// whose log differs (a leader that crashed before replicating an
    /// entry reopens with that unacknowledged entry discarded, because
    /// the survivors' re-executed history carries a higher term).
    pub fn open(dir: impl Into<PathBuf>, replicas: usize, block_size: u64) -> Result<Arc<Self>> {
        assert!(replicas >= 1, "a group needs at least one replica");
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            Error::Storage(format!("{}: create replica-log dir: {e}", dir.display()))
        })?;
        let mut loaded = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let path = dir.join(format!("vm-replica-{i}.log"));
            let mut entries: Vec<RepEntry> = Vec::new();
            let log = FrameLog::open_with(&path, |_, payload| {
                let e = decode_entry(payload, entries.len() as u64)?;
                entries.push(e);
                Ok(())
            })?;
            loaded.push((entries, log));
        }
        let reference = (0..loaded.len())
            .max_by_key(|&i| {
                let entries = &loaded[i].0;
                (entries.last().map_or(0, |e| e.term), entries.len(), i)
            })
            .ok_or_else(|| Error::Internal("empty replica group".into()))?;
        let ref_entries = loaded[reference].0.clone();
        let term = ref_entries.last().map_or(0, |e| e.term);
        let next_seq = ref_entries.iter().map(|e| e.command.seq).max().unwrap_or(0) + 1;
        let mut built = Vec::with_capacity(replicas);
        for (entries, log) in loaded {
            let mut state = ReplicaState::fresh(block_size);
            state.disk = Some(log);
            if entries == ref_entries {
                state.replay(block_size, &ref_entries)?;
            } else {
                state.rebuild(block_size, &ref_entries)?;
            }
            built.push(state);
        }
        Ok(Arc::new(Self {
            block_size,
            replicas: built
                .into_iter()
                .enumerate()
                .map(|(i, state)| Replica {
                    state: Mutex::ranked(state, "ctl.replica", i as u32),
                    alive: AtomicBool::new(true),
                })
                .collect(),
            group: Mutex::named(
                Group {
                    term,
                    leader: None,
                    lease_left: 0,
                },
                "ctl.group",
            ),
            next_seq: AtomicU64::new(next_seq),
            crash_point: AtomicU8::new(CRASH_NONE),
        }))
    }

    /// Number of replicas in the group (alive or not).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Majority of the **total** group — dead replicas still count toward
    /// the denominator, exactly like a real deployment's quorum.
    fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Live replicas right now (atomic flags; no locks).
    fn live_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive.load(Ordering::SeqCst))
            .count()
    }

    /// The current leader's index, if one is elected (may be stale the
    /// moment it returns; diagnostics and tests only).
    pub fn leader(&self) -> Option<usize> {
        self.group.lock().leader
    }

    /// The current election term.
    pub fn term(&self) -> u64 {
        self.group.lock().term
    }

    /// Whether replica `i` is alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.replicas[i].alive.load(Ordering::SeqCst)
    }

    /// Length of replica `i`'s log (tests assert group convergence).
    pub fn log_len(&self, i: usize) -> usize {
        self.replicas[i].state.lock().log.len()
    }

    /// Arms the one-shot leader crash for the next submission.
    pub fn set_crash_point(&self, point: CrashPoint) {
        let tag = match point {
            CrashPoint::BeforeReplicate => CRASH_BEFORE,
            CrashPoint::AfterReplicate => CRASH_AFTER,
        };
        self.crash_point.store(tag, Ordering::SeqCst);
    }

    fn take_crash(&self, tag: u8) -> bool {
        self.crash_point
            .compare_exchange(tag, CRASH_NONE, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Kills replica `i`: it stops acknowledging rounds and, if it was
    /// the leader, the next operation re-elects.
    pub fn kill(&self, i: usize) {
        let mut group = self.group.lock();
        self.replicas[i].alive.store(false, Ordering::SeqCst);
        if group.leader == Some(i) {
            group.leader = None;
            group.lease_left = 0;
        }
    }

    /// Kills the current leader, returning its index (`None` when no
    /// leader has been elected yet).
    pub fn kill_leader(&self) -> Option<usize> {
        let mut group = self.group.lock();
        let leader = group.leader.take()?;
        self.replicas[leader].alive.store(false, Ordering::SeqCst);
        group.lease_left = 0;
        Some(leader)
    }

    /// Brings a killed replica back: its state is rebuilt from the
    /// current leader's log (the only history that may have acknowledged
    /// writes), then it rejoins the live set.
    pub fn revive(&self, i: usize) -> Result<()> {
        let mut group = self.group.lock();
        if self.replicas[i].alive.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Lock *all* replicas ascending — dead ones included — so the
        // `ctl.replica` rank discipline holds no matter where `i` sits.
        let mut guards: Vec<MutexGuard<'_, ReplicaState>> =
            self.replicas.iter().map(|r| r.state.lock()).collect();
        let leader = match group.leader {
            Some(l) => l,
            None => {
                let winner = guards
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i && self.replicas[j].alive.load(Ordering::SeqCst))
                    .max_by_key(|&(j, g)| (g.last_term(), g.log.len(), j))
                    .map(|(j, _)| j)
                    .ok_or_else(|| Error::Transport("no live replica to revive from".into()))?;
                group.term += 1;
                group.leader = Some(winner);
                group.lease_left = LEASE_READS;
                winner
            }
        };
        let entries = guards[leader].log.clone();
        guards[i].rebuild(self.block_size, &entries)?;
        self.replicas[i].alive.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Forces every live replica's durable log to stable storage.
    pub fn sync(&self) -> Result<()> {
        let _group = self.group.lock();
        for r in &self.replicas {
            if r.alive.load(Ordering::SeqCst) {
                if let Some(disk) = &r.state.lock().disk {
                    disk.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Locks every live replica in ascending index order. Caller holds
    /// the group lock.
    fn lock_alive(&self) -> Vec<(usize, MutexGuard<'_, ReplicaState>)> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive.load(Ordering::SeqCst))
            .map(|(i, r)| (i, r.state.lock()))
            .collect()
    }

    /// With the group lock and live guards held: the leader's position in
    /// `guards`, electing one (term bump, fresh lease) if the recorded
    /// leader is dead or absent.
    fn leader_pos(
        &self,
        group: &mut Group,
        guards: &[(usize, MutexGuard<'_, ReplicaState>)],
    ) -> Result<usize> {
        let pos_of = |l: usize| guards.iter().position(|&(i, _)| i == l);
        if let Some(l) = group.leader {
            if let Some(pos) = pos_of(l) {
                return Ok(pos);
            }
        }
        let winner = guards
            .iter()
            .max_by_key(|&&(i, ref g)| (g.last_term(), g.log.len(), i))
            .map(|&(i, _)| i)
            .ok_or_else(|| quorum_err(0, self.replicas.len(), self.quorum()))?;
        group.term += 1;
        group.leader = Some(winner);
        group.lease_left = LEASE_READS;
        pos_of(winner).ok_or_else(|| Error::Internal("elected leader not among guards".into()))
    }

    /// Marks the leader dead mid-round (crash injection): the caller's
    /// retry will re-elect.
    fn crash(&self, group: &mut Group, leader: usize) {
        self.replicas[leader].alive.store(false, Ordering::SeqCst);
        group.leader = None;
        group.lease_left = 0;
    }

    /// One replication round. `Ok(None)` means the leader died mid-round
    /// and the submission should retry.
    fn round(&self, command: Command) -> Result<Option<Reply>> {
        let mut group = self.group.lock();
        let mut guards = self.lock_alive();
        if guards.len() < self.quorum() {
            return Err(quorum_err(guards.len(), self.replicas.len(), self.quorum()));
        }
        let leader_pos = self.leader_pos(&mut group, &guards)?;
        let leader_idx = guards[leader_pos].0;
        // Exactly-once: a retried seq returns its memoized reply.
        if let Some(reply) = guards[leader_pos].1.dedup.get(&command.seq) {
            let reply = reply.clone();
            group.lease_left = LEASE_READS;
            return Ok(Some(reply));
        }
        // Apply on the leader. A precondition failure is returned to the
        // caller and never logged or replicated, so replay stays valid.
        let reply = apply(&guards[leader_pos].1.vm, command.kind)?;
        let entry = RepEntry {
            term: group.term,
            index: guards[leader_pos].1.log.len() as u64,
            command,
        };
        guards[leader_pos].1.append(entry)?;
        guards[leader_pos].1.remember(command.seq, reply.clone());
        if self.take_crash(CRASH_BEFORE) {
            drop(guards);
            self.crash(&mut group, leader_idx);
            return Ok(None);
        }
        // Replicate: every live follower appends and applies. All of them
        // are locked, so an acknowledged entry is on a superset of the
        // quorum majority.
        for (pos, (idx, state)) in guards.iter_mut().enumerate() {
            if pos == leader_pos {
                continue;
            }
            state.append(entry)?;
            let follower_reply = apply(&state.vm, command.kind).map_err(|e| {
                Error::Internal(format!(
                    "replica {idx} diverged applying replicated index {}: {e}",
                    entry.index
                ))
            })?;
            state.remember(command.seq, follower_reply);
        }
        if self.take_crash(CRASH_AFTER) {
            drop(guards);
            self.crash(&mut group, leader_idx);
            return Ok(None);
        }
        group.lease_left = LEASE_READS;
        Ok(Some(reply))
    }

    /// Submits one mutation, retrying across leader failures. The seq is
    /// fixed once, so retries deduplicate.
    fn submit(&self, kind: CommandKind) -> Result<Reply> {
        let command = Command {
            client_id: CLIENT_ID,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            kind,
        };
        for _ in 0..MAX_ROUNDS {
            if let Some(reply) = self.round(command)? {
                return Ok(reply);
            }
        }
        Err(Error::Transport(format!(
            "version-manager leadership failed {MAX_ROUNDS} times for one submission"
        )))
    }

    /// The leader's state machine for read-only calls. Fast path: while
    /// the lease has reads left, the cached leader is trusted with a
    /// single replica lock; otherwise the live set is re-validated (and a
    /// leader elected if needed).
    fn leader_vm(&self) -> Result<Arc<VersionManager>> {
        let mut group = self.group.lock();
        if let Some(l) = group.leader {
            // The lease is only honored while a majority is live — a
            // leader cut off from its quorum must not keep serving reads.
            if group.lease_left > 0
                && self.replicas[l].alive.load(Ordering::SeqCst)
                && self.live_count() >= self.quorum()
            {
                group.lease_left -= 1;
                return Ok(Arc::clone(&self.replicas[l].state.lock().vm));
            }
        }
        let guards = self.lock_alive();
        if guards.len() < self.quorum() {
            return Err(quorum_err(guards.len(), self.replicas.len(), self.quorum()));
        }
        let pos = self.leader_pos(&mut group, &guards)?;
        group.lease_left = LEASE_READS;
        Ok(Arc::clone(&guards[pos].1.vm))
    }
}

impl VersionService for ReplicatedVersionService {
    fn block_size(&self) -> u64 {
        self.block_size
    }

    fn create_blob(&self) -> Result<BlobId> {
        self.submit(CommandKind::CreateBlob)?.blob()
    }

    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        self.submit(CommandKind::Branch { parent, at })?.blob()
    }

    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        self.submit(CommandKind::Assign { blob, intent })?.ticket()
    }

    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        self.submit(CommandKind::Commit { blob, version })?.unit()
    }

    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        self.leader_vm()?.latest(blob)
    }

    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        self.leader_vm()?.snapshot_info(blob, version)
    }

    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        self.leader_vm()?.chain(blob)
    }

    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        // Park on the leader's condvar in short slices, re-resolving
        // leadership between slices: a leader kill mid-wait strands the
        // waiter for at most one slice. No `ctl.*` lock is held while
        // parked (`leader_vm` clones the Arc out).
        let deadline = Instant::now() + timeout;
        loop {
            let vm = self.leader_vm()?;
            let left = deadline.saturating_duration_since(Instant::now());
            match vm.wait_revealed(blob, version, left.min(WAIT_SLICE)) {
                Err(Error::Timeout(_)) if Instant::now() < deadline => {}
                other => return other,
            }
        }
    }

    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        self.leader_vm()?.pending_versions(blob)
    }

    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        self.submit(CommandKind::DeleteBlob { blob })?.roots()
    }

    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        self.submit(CommandKind::CollectBefore { blob, keep_from })?
            .roots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_disk::testutil::TempDir;

    fn group3() -> Arc<ReplicatedVersionService> {
        ReplicatedVersionService::new(3, 64)
    }

    #[test]
    fn single_replica_group_behaves_like_a_version_manager() {
        let g = ReplicatedVersionService::new(1, 64);
        let b = g.create_blob().unwrap();
        let t = g.assign(b, WriteIntent::Append { size: 100 }).unwrap();
        g.commit(b, t.version).unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(1), 100));
        assert_eq!(g.block_size(), 64);
    }

    #[test]
    fn every_replica_holds_the_same_log() {
        let g = group3();
        let b = g.create_blob().unwrap();
        for _ in 0..5 {
            let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            g.commit(b, t.version).unwrap();
        }
        // 1 create + 5 * (assign + commit) = 11 entries, on all three.
        for i in 0..3 {
            assert_eq!(g.log_len(i), 11, "replica {i}");
        }
    }

    #[test]
    fn election_is_deterministic_highest_id_wins_on_equal_logs() {
        let g = group3();
        let _ = g.create_blob().unwrap();
        assert_eq!(g.leader(), Some(2), "equal logs: highest id");
        let term = g.term();
        g.kill(2);
        let _ = g.create_blob().unwrap();
        assert_eq!(g.leader(), Some(1), "next-highest live id");
        assert_eq!(g.term(), term + 1, "failover bumps the term");
    }

    #[test]
    fn leader_crash_before_replicate_reexecutes_exactly_once() {
        let g = group3();
        let b = g.create_blob().unwrap();
        let old = g.leader().unwrap();
        g.set_crash_point(CrashPoint::BeforeReplicate);
        let t = g.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        assert_eq!(
            t.version,
            Version::new(1),
            "re-executed once on the new leader"
        );
        assert!(!g.is_alive(old));
        assert_ne!(g.leader().unwrap(), old);
        g.commit(b, t.version).unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(1), 10));
        // The sequence continues with no gap.
        let t2 = g.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        assert_eq!(t2.version, Version::new(2));
    }

    #[test]
    fn leader_crash_after_replicate_hits_the_dedup_memo() {
        let g = group3();
        let b = g.create_blob().unwrap();
        let old = g.leader().unwrap();
        g.set_crash_point(CrashPoint::AfterReplicate);
        let t = g.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        assert_eq!(
            t.version,
            Version::new(1),
            "memoized reply, not a re-execution"
        );
        assert!(!g.is_alive(old));
        g.commit(b, t.version).unwrap();
        let t2 = g.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        assert_eq!(t2.version, Version::new(2), "no duplicated version number");
        assert_eq!(g.latest(b).unwrap(), (Version::new(1), 10));
    }

    #[test]
    fn losing_quorum_fails_loudly() {
        let g = group3();
        let b = g.create_blob().unwrap();
        g.kill(0);
        g.kill(1);
        assert!(matches!(g.create_blob(), Err(Error::Transport(_))));
        assert!(matches!(g.latest(b), Err(Error::Transport(_))));
    }

    #[test]
    fn revived_replica_catches_up_from_the_leader() {
        let g = group3();
        let b = g.create_blob().unwrap();
        let dead = g.kill_leader().unwrap();
        for _ in 0..3 {
            let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            g.commit(b, t.version).unwrap();
        }
        assert!(g.log_len(dead) < g.log_len(g.leader().unwrap()));
        g.revive(dead).unwrap();
        assert!(g.is_alive(dead));
        assert_eq!(g.log_len(dead), g.log_len(g.leader().unwrap()));
        // The revived replica can serve after the others die.
        for i in 0..3 {
            if i != dead {
                g.kill(i);
            }
        }
        // 1 of 3 is below quorum — revive one more to restore service.
        assert!(matches!(g.latest(b), Err(Error::Transport(_))));
        let other = (0..3).find(|&i| i != dead).unwrap();
        g.revive(other).unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(3), 192));
    }

    #[test]
    fn reads_outlive_the_lease() {
        let g = group3();
        let b = g.create_blob().unwrap();
        for _ in 0..(LEASE_READS * 2 + 3) {
            g.latest(b).unwrap();
        }
    }

    #[test]
    fn dedup_memo_is_fifo_capped() {
        let g = ReplicatedVersionService::new(1, 64);
        let b = g.create_blob().unwrap();
        for _ in 0..DEDUP_CAP / 2 + 10 {
            let t = g.assign(b, WriteIntent::Append { size: 1 }).unwrap();
            g.commit(b, t.version).unwrap();
        }
        let state = g.replicas[0].state.lock();
        assert!(state.dedup.len() <= DEDUP_CAP);
        assert_eq!(state.dedup.len(), state.dedup_order.len());
    }

    #[test]
    fn precondition_failures_are_not_replicated() {
        let g = group3();
        let b = g.create_blob().unwrap();
        let before = g.log_len(0);
        assert!(g.assign(b, WriteIntent::Append { size: 0 }).is_err());
        assert!(g.branch(BlobId::new(99), Version::new(1)).is_err());
        for i in 0..3 {
            assert_eq!(g.log_len(i), before, "failed calls never enter the log");
        }
    }

    #[test]
    fn durable_group_recovers_from_disk() {
        let tmp = TempDir::new("ctl-recover");
        let dir = tmp.path().join("replog");
        let b;
        {
            let g = ReplicatedVersionService::open(&dir, 3, 64).unwrap();
            b = g.create_blob().unwrap();
            let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            g.commit(b, t.version).unwrap();
            g.sync().unwrap();
        }
        let g = ReplicatedVersionService::open(&dir, 3, 64).unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(1), 64));
        // Writes resume, and the recovered seq counter keeps dedup sound.
        let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
        g.commit(b, t.version).unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(2), 128));
    }

    #[test]
    fn reopen_reconciles_a_diverged_crashed_leader() {
        let tmp = TempDir::new("ctl-reconcile");
        let dir = tmp.path().join("replog");
        let b;
        {
            let g = ReplicatedVersionService::open(&dir, 3, 64).unwrap();
            b = g.create_blob().unwrap();
            // The leader logs the entry, crashes before replicating; the
            // retry re-executes under a higher term on the new leader.
            // The dead leader's disk now holds a divergent entry.
            g.set_crash_point(CrashPoint::BeforeReplicate);
            let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            g.commit(b, t.version).unwrap();
            g.sync().unwrap();
        }
        let g = ReplicatedVersionService::open(&dir, 3, 64).unwrap();
        // The survivors' higher-term history wins; the group converges.
        assert_eq!(g.latest(b).unwrap(), (Version::new(1), 64));
        for i in 0..3 {
            assert_eq!(g.log_len(i), 3, "replica {i} reconciled");
        }
        let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
        assert_eq!(
            t.version,
            Version::new(2),
            "no duplicate from the stale log"
        );
    }

    #[test]
    fn failover_storm_yields_gap_free_versions() {
        let g = group3();
        let b = g.create_blob().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let killer = {
            let g = Arc::clone(&g);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if let Some(dead) = g.kill_leader() {
                        std::thread::sleep(Duration::from_millis(1));
                        g.revive(dead).unwrap();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let writers: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut versions = Vec::new();
                    for _ in 0..25 {
                        let t = g.assign(b, WriteIntent::Append { size: 64 }).unwrap();
                        g.commit(b, t.version).unwrap();
                        versions.push(t.version.raw());
                    }
                    versions
                })
            })
            .collect();
        let mut all: Vec<u64> = writers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        stop.store(true, Ordering::SeqCst);
        killer.join().unwrap();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=200).collect();
        assert_eq!(all, expect, "version sequence has gaps or duplicates");
        g.wait_revealed(b, Version::new(200), Duration::from_secs(10))
            .unwrap();
        assert_eq!(g.latest(b).unwrap(), (Version::new(200), 200 * 64));
        // And the whole group converged on one log.
        let len = g.log_len(0);
        for i in 1..3 {
            assert_eq!(g.log_len(i), len, "replica {i} diverged");
        }
    }
}
