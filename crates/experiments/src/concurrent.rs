//! The multi-client concurrent harness: N simulated clients drive the
//! **real** `BlobClient` protocol inside one simnet world.
//!
//! Every figure reproduction deploys through this module — the
//! single-writer figures (3a/3b) with one client thread, the paper's
//! headline *heavy-concurrency* figures with up to 250: 250 readers of
//! one file (Fig. 4) and 250 appenders to one BLOB (Fig. 5, the workload
//! HDFS cannot run). Under concurrency the serialization point must
//! *emerge* from the protocol: the version manager's FIFO queue bends the
//! Fig. 5 curve because every appender really funnels through
//! `VersionService::assign`, not because a model hand-computes a queueing
//! delay.
//!
//! The harness combines two pieces:
//!
//! * [`simnet::SimGate`] — each simulated client is a real OS thread
//!   running unmodified `client/{write,append,read}.rs` code; the gate
//!   serializes the threads onto the simulated clock and turns blocking
//!   waits (disk, RPC queue, max-min-shared flows) into simulated time.
//! * charging adapters ([`ConcBlockStore`], [`ConcMetaStore`],
//!   [`ConcVersionService`]) — decorate the in-memory stores and
//!   attribute every call to the calling client (a thread-local set by
//!   [`ConcurrentDeployment::run_clients`]) so each client pays its own
//!   costs on its own node: block puts/gets become disk + flow time from
//!   *that client's* node, version assignment queues in the shared
//!   central [`FifoServer`], tree puts are issued in parallel from the
//!   client's metadata-phase start (§III-D), tree gets are sequential
//!   descent hops.
//!
//! Costs are charged only while [`ConcurrentDeployment::set_charging`] is
//! on: figure drivers boot their input files for free, then flip charging
//! on and release the measured clients.
//!
//! A [`PhaseRecorder`] rides on the [`blobseer_core::ProtocolObserver`]
//! port and timestamps every protocol phase boundary against the simulated
//! clock — how the drivers report *where* time goes (e.g. the growing
//! version-assignment wait that is Fig. 5's knee) without instrumenting
//! the client.
//!
//! [`BaselineWorld`] provides the same primitives without an engine for
//! the HDFS comparison legs: HDFS has no `BlobClient`, so its curves are
//! cost models by necessity — but they are composed from gate primitives,
//! not bespoke event-handler worlds.

use crate::constants::Constants;
use blobseer_core::block_store::ProviderSet;
use blobseer_core::dht::MetaDht;
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::{BlockStore, MetaStore, VersionService};
use blobseer_core::provider_manager::ProviderManager;
use blobseer_core::{
    BlobClient, BlobSeer, EnginePorts, EngineStats, ProtocolObserver, ProtocolOp, ProtocolPhase,
    SnapshotInfo, VersionManager, WriteIntent, WriteTicket,
};
use blobseer_types::config::PlacementPolicy;
use blobseer_types::{BlobId, BlobSeerConfig, BlockId, NodeId, Result, Version};
use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{Disk, FifoServer, FlowNet, NicSpec, SimDuration, SimGate, SimTask, SimTime};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    /// The node of the simulated client running on this thread (set by the
    /// harness for the duration of the client's body).
    static CLIENT_NODE: Cell<Option<NodeId>> = const { Cell::new(None) };
    /// Instant the current thread's metadata phase opened (its last
    /// version assignment completed): tree-node puts are charged as issued
    /// in parallel from here (§III-D's parallel metadata phase).
    static META_PHASE_START: Cell<SimTime> = const { Cell::new(SimTime::ZERO) };
    /// Previous phase boundary seen by the [`PhaseRecorder`] on this
    /// thread.
    static LAST_PHASE: Cell<Option<(ProtocolOp, ProtocolPhase, SimTime)>> =
        const { Cell::new(None) };
    /// The top-level operation currently open on this thread, if any. An
    /// unaligned `write` performs nested boundary `read`s whose phase
    /// events must not pollute the recorder's top-level aggregates.
    static OPEN_OP: Cell<Option<ProtocolOp>> = const { Cell::new(None) };
    /// Overlap accumulator of the current data phase: `(anchor, pending)`.
    /// The real deployment fans per-provider batches out over threads; a
    /// SimGate deployment must stay thread-free (`client_io_threads =
    /// Some(1)`, the executor runs inline), so the charging adapters model
    /// the overlap instead: every batch of one phase is charged as issued
    /// from the same `anchor` instant, transfers serialize on the shared
    /// client NIC (they all leave through one card), and the phase costs
    /// `overhead + max(per-batch completions)` — the `pending` watermark —
    /// settled at the next phase boundary, not the per-batch sum.
    static OVERLAP: Cell<Option<(SimTime, SimTime)>> = const { Cell::new(None) };
}

/// The node of the simulated client on the calling thread.
fn client_node() -> NodeId {
    CLIENT_NODE
        .get()
        .expect("charged port call outside a simulated client thread")
}

/// The shared streaming-transfer composition: a disk (already submitted,
/// draining until `disk_done`) feeds a bulk flow from `src` to `dst`
/// started now — unless the endpoints are co-located, in which case there
/// is no network leg — and `overhead` tops the transfer off. Blocks the
/// calling simulated thread until everything finished.
///
/// Both the real-protocol fabric and the HDFS baseline charge through
/// this one function, so the disk/flow/overhead composition rule cannot
/// drift between the system under test and its comparison model.
fn stream_and_wait(
    gate: &SimGate,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    disk_done: SimTime,
    overhead: SimDuration,
) {
    let end = if src == dst {
        disk_done
    } else {
        disk_done.max(gate.transfer(src, dst, bytes))
    };
    gate.sleep_until(end + overhead);
}

/// One small queued RPC: request latency, FIFO-queued service, response
/// latency. Returns the completion instant (the caller sleeps until it —
/// kept separate so callers can submit under their own state lock).
fn rpc_done(
    server: &mut FifoServer,
    now: SimTime,
    latency: SimDuration,
    svc: SimDuration,
) -> SimTime {
    server.submit_with(now + latency, svc) + latency
}

/// Shared cost-model state of a concurrent deployment: the gate plus the
/// queueing servers every adapter charges into.
pub struct ConcFabric {
    gate: SimGate,
    c: Constants,
    aux: Mutex<Aux>,
}

struct Aux {
    charging: bool,
    write_disks: Vec<Disk>,
    read_disks: Vec<Disk>,
    /// The version manager's RPC queue — the protocol's serialization
    /// point (§III-A.4).
    central: FifoServer,
    /// The metadata providers' RPC queues.
    meta: Vec<FifoServer>,
    meta_rr: usize,
}

impl ConcFabric {
    fn new(c: Constants, n_providers: usize, n_nodes: usize) -> Self {
        let nodes = n_nodes.max(n_providers).max(1);
        Self {
            gate: SimGate::new(FlowNet::new(nodes, NicSpec::symmetric(c.nic_bps))),
            aux: Mutex::new(Aux {
                charging: false,
                write_disks: (0..n_providers)
                    .map(|_| Disk::new(c.disk_write_bps))
                    .collect(),
                read_disks: (0..n_providers)
                    .map(|_| Disk::new(c.disk_read_bps))
                    .collect(),
                central: FifoServer::new(c.vm_assign_svc),
                meta: (0..c.meta_shards.max(1))
                    .map(|_| FifoServer::new(c.meta_svc))
                    .collect(),
                meta_rr: 0,
            }),
            c,
        }
    }

    /// The virtual-time gate (for sleeps from figure-driver task bodies).
    pub fn gate(&self) -> &SimGate {
        &self.gate
    }

    /// True when the calling port call must be charged: charging is on
    /// *and* the caller is a simulated client thread. Calls from outside
    /// (boot writers, post-run verification reads) stay free — only
    /// simulated clients pay simulated time.
    fn should_charge(&self) -> bool {
        CLIENT_NODE.get().is_some() && self.aux.lock().charging
    }

    /// Opens (or continues) the calling thread's overlapped data phase and
    /// returns its `(anchor, pending)` state. The first batch of a phase
    /// anchors it at the current instant; later batches of the same phase
    /// are charged as issued from that same anchor — the fan-out.
    fn overlap_open(&self) -> (SimTime, SimTime) {
        OVERLAP.get().unwrap_or_else(|| {
            let a = self.gate.now();
            (a, a)
        })
    }

    /// Closes the calling thread's overlapped data phase, if one is open:
    /// sleeps until its `pending` watermark — the latest per-batch
    /// completion. Every non-data charge and every protocol phase boundary
    /// settles first, so the overlap never leaks across phases.
    fn settle_overlap(&self) {
        if let Some((_, pending)) = OVERLAP.take() {
            self.gate.sleep_until(pending);
        }
    }

    /// Data phase of a batch of `n` blocks bound for one provider
    /// (§III-D step 1): client-side cache-flush overhead and *one*
    /// request round trip for the whole *phase* (all batches are issued
    /// from the same anchor by the fan-out executor), then the blocks
    /// stream back-to-back through the shared client NIC, each paying its
    /// own disk, flow and per-block provider service. Disk drain and
    /// service tails of different providers overlap: only the phase-wide
    /// maximum is settled. Co-located clients skip the network. (A phase
    /// of one single-block batch charges exactly what the old per-block
    /// put charged, so single-block figure legs are unchanged.)
    fn charge_block_put(&self, provider: usize, n: usize) {
        if n == 0 {
            return;
        }
        let node = client_node();
        let pnode = NodeId::new(provider as u64);
        let (anchor, mut pending) = self.overlap_open();
        let t0 = anchor + self.c.bsfs_block_overhead + self.c.rtt();
        self.gate.sleep_until(t0); // a no-op once the clock passed it
        for _ in 0..n {
            let disk_done =
                self.aux.lock().write_disks[provider].submit(self.gate.now(), self.c.block_bytes);
            let end = if node == pnode {
                disk_done
            } else {
                disk_done.max(self.gate.transfer(node, pnode, self.c.block_bytes))
            };
            pending = pending.max(end + self.c.provider_svc);
        }
        OVERLAP.set(Some((anchor, pending)));
    }

    /// A batch of `n` block fetches from one provider (§III-C): the
    /// provider's disk serves queued reads in order while each flow
    /// streams back to the client through its shared NIC; the client-side
    /// read loop overhead tops the phase off via the overlap watermark.
    /// Batches of one fetch phase are charged as issued concurrently (the
    /// fan-out executor), so disks of different providers drain in
    /// parallel and only the latest completion is settled. Co-located
    /// readers skip the network — the locality the grep scheduler
    /// exploits (§IV-C).
    fn charge_block_get(&self, provider: usize, n: usize) {
        let node = client_node();
        let pnode = NodeId::new(provider as u64);
        let (anchor, mut pending) = self.overlap_open();
        for _ in 0..n {
            let disk_done =
                self.aux.lock().read_disks[provider].submit(self.gate.now(), self.c.block_bytes);
            let end = if node == pnode {
                disk_done
            } else {
                disk_done.max(self.gate.transfer(pnode, node, self.c.block_bytes))
            };
            pending = pending.max(end + self.c.bsfs_read_overhead);
        }
        OVERLAP.set(Some((anchor, pending)));
    }

    /// Version assignment: a queued RPC to the version manager — the only
    /// serialized step, and under N concurrent writers the queueing here
    /// is the knee of Fig. 5. Opens the caller's metadata phase.
    fn charge_assign(&self) {
        self.settle_overlap();
        let done = rpc_done(
            &mut self.aux.lock().central,
            self.gate.now(),
            self.c.latency,
            self.c.vm_assign_svc,
        );
        self.gate.sleep_until(done);
        META_PHASE_START.set(done);
    }

    /// A read-side version-manager lookup (`latest`): same queue, cheaper
    /// service.
    fn charge_lookup(&self) {
        self.settle_overlap();
        let done = rpc_done(
            &mut self.aux.lock().central,
            self.gate.now(),
            self.c.latency,
            self.c.vm_lookup_svc,
        );
        self.gate.sleep_until(done);
    }

    /// A batch of `n` tree-node puts, all charged as issued at the
    /// caller's metadata-phase start and spread round-robin over the
    /// metadata providers — §III-D's parallel metadata phase. Because
    /// every put of a version is issued from the same instant regardless
    /// of grouping, charging a level-sized batch costs exactly what the
    /// old per-node charging did: the caller ends at the latest
    /// completion.
    fn charge_meta_put(&self, n: usize) {
        self.settle_overlap();
        let start = META_PHASE_START.get().max(SimTime::ZERO);
        let mut latest = start;
        {
            let mut aux = self.aux.lock();
            for _ in 0..n {
                let shard = aux.meta_rr % aux.meta.len();
                aux.meta_rr += 1;
                let done = aux.meta[shard].submit(start + self.c.latency) + self.c.latency;
                latest = latest.max(done);
            }
        }
        self.gate.sleep_until(latest);
    }

    /// A batch of `n` tree-node gets — one level of a root-to-leaf
    /// descent. Hops between levels stay sequential (a child reference is
    /// only known once its parent arrived), but the siblings of one level
    /// are fetched concurrently: one request hop, per-item queued service,
    /// the caller resumes at the latest completion. This is where the
    /// vectored API flattens metadata latency under fan-out.
    fn charge_meta_get(&self, n: usize) {
        self.settle_overlap();
        let now = self.gate.now();
        let mut latest = now;
        {
            let mut aux = self.aux.lock();
            for _ in 0..n {
                let shard = aux.meta_rr % aux.meta.len();
                aux.meta_rr += 1;
                let done = aux.meta[shard].submit(now + self.c.latency) + self.c.latency;
                latest = latest.max(done);
            }
        }
        self.gate.sleep_until(latest);
    }

    /// Commit notification to the version manager.
    fn charge_commit(&self) {
        self.settle_overlap();
        self.gate.sleep(self.c.rtt());
    }
}

/// [`BlockStore`] adapter: stores real (small) blocks in the wrapped
/// in-memory providers while charging each put/get as a modeled 64 MB
/// transfer from/to the calling client's node.
pub struct ConcBlockStore {
    inner: ProviderSet,
    fabric: Arc<ConcFabric>,
}

impl BlockStore for ConcBlockStore {
    fn len(&self) -> usize {
        BlockStore::len(&self.inner)
    }
    fn node(&self, provider: usize) -> NodeId {
        BlockStore::node(&self.inner, provider)
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        BlockStore::index_of_node(&self.inner, node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        if self.fabric.should_charge() {
            self.fabric.charge_block_put(provider, 1);
        }
        BlockStore::put(&self.inner, provider, id, data)
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        if self.fabric.should_charge() {
            self.fabric.charge_block_get(provider, 1);
        }
        BlockStore::get(&self.inner, provider, id)
    }
    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        if self.fabric.should_charge() {
            self.fabric.charge_block_put(provider, items.len());
        }
        BlockStore::put_many(&self.inner, provider, items)
    }
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        if self.fabric.should_charge() {
            self.fabric.charge_block_get(provider, ids.len());
        }
        BlockStore::get_many(&self.inner, provider, ids)
    }
    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        BlockStore::delete_many(&self.inner, provider, ids)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        BlockStore::contains(&self.inner, provider, id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        BlockStore::delete(&self.inner, provider, id)
    }
    fn block_count(&self, provider: usize) -> usize {
        BlockStore::block_count(&self.inner, provider)
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        BlockStore::bytes_stored(&self.inner, provider)
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        BlockStore::op_counts(&self.inner, provider)
    }
}

/// [`MetaStore`] adapter: real tree nodes into the wrapped DHT, with puts
/// charged as the parallel metadata phase and gets as sequential descent
/// hops.
pub struct ConcMetaStore {
    inner: MetaDht,
    fabric: Arc<ConcFabric>,
}

impl MetaStore for ConcMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        if self.fabric.should_charge() {
            self.fabric.charge_meta_put(1);
        }
        MetaStore::put(&self.inner, key, node)
    }
    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        if self.fabric.should_charge() {
            self.fabric.charge_meta_get(1);
        }
        MetaStore::get(&self.inner, key)
    }
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        if self.fabric.should_charge() {
            self.fabric.charge_meta_put(items.len());
        }
        MetaStore::put_many(&self.inner, items)
    }
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        if self.fabric.should_charge() {
            self.fabric.charge_meta_get(keys.len());
        }
        MetaStore::get_many(&self.inner, keys)
    }
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        MetaStore::delete_many(&self.inner, keys)
    }
    fn delete(&self, key: &NodeKey) -> bool {
        MetaStore::delete(&self.inner, key)
    }
    fn shard_count(&self) -> usize {
        MetaStore::shard_count(&self.inner)
    }
    fn node_count(&self) -> usize {
        MetaStore::node_count(&self.inner)
    }
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        MetaStore::shard_stats(&self.inner)
    }
    fn crash_shard(&self, shard: usize) {
        MetaStore::crash_shard(&self.inner, shard)
    }
}

/// [`VersionService`] adapter: the real version manager, with assignments
/// charged through the central FIFO queue (the serialization point whose
/// contention Fig. 5 measures), lookups through the same queue, and
/// commits as a round-trip.
pub struct ConcVersionService {
    inner: VersionManager,
    fabric: Arc<ConcFabric>,
}

impl VersionService for ConcVersionService {
    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }
    fn create_blob(&self) -> Result<BlobId> {
        Ok(self.inner.create_blob())
    }
    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        self.inner.branch(parent, at)
    }
    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        let ticket = self.inner.assign(blob, intent)?;
        if self.fabric.should_charge() {
            self.fabric.charge_assign();
        }
        Ok(ticket)
    }
    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        self.inner.commit(blob, version)?;
        if self.fabric.should_charge() {
            self.fabric.charge_commit();
        }
        Ok(())
    }
    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        let r = self.inner.latest(blob)?;
        if self.fabric.should_charge() {
            self.fabric.charge_lookup();
        }
        Ok(r)
    }
    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        self.inner.snapshot_info(blob, version)
    }
    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        self.inner.chain(blob)
    }
    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        self.inner.wait_revealed(blob, version, timeout)
    }
    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        self.inner.pending_versions(blob)
    }
    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        self.inner.delete_blob(blob)
    }
    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        self.inner.collect_before(blob, keep_from)
    }
}

// --- phase observability -----------------------------------------------------

/// Accumulated simulated time between consecutive protocol phase
/// boundaries, keyed by the phase that *ended* the span.
#[derive(Default)]
pub struct PhaseBreakdown {
    spans: HashMap<(ProtocolOp, ProtocolPhase), (SimDuration, u64)>,
}

impl PhaseBreakdown {
    /// Mean simulated time spent reaching `phase` of `op` from the
    /// preceding boundary (e.g. `(Append, VersionAssigned)` = data-done →
    /// assignment-granted: the version manager's queueing plus service).
    pub fn mean(&self, op: ProtocolOp, phase: ProtocolPhase) -> SimDuration {
        match self.spans.get(&(op, phase)) {
            Some(&(total, n)) if n > 0 => SimDuration::from_nanos(total.as_nanos() / n),
            _ => SimDuration::ZERO,
        }
    }

    /// Number of spans recorded ending at `phase` of `op`.
    pub fn count(&self, op: ProtocolOp, phase: ProtocolPhase) -> u64 {
        self.spans.get(&(op, phase)).map(|&(_, n)| n).unwrap_or(0)
    }
}

/// [`ProtocolObserver`] adapter: timestamps every phase boundary against
/// the simulated clock, per thread, while charging is on.
pub struct PhaseRecorder {
    fabric: Arc<ConcFabric>,
    agg: Mutex<PhaseBreakdown>,
}

impl PhaseRecorder {
    /// A snapshot of the breakdown accumulated so far.
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            spans: self.agg.lock().spans.clone(),
        }
    }
}

impl ProtocolObserver for PhaseRecorder {
    fn phase(&self, _node: NodeId, op: ProtocolOp, phase: ProtocolPhase) {
        if !self.fabric.should_charge() {
            return;
        }
        // A phase boundary ends any overlapped data phase: the recorded
        // timestamp must include the batches still pending on the overlap
        // watermark (and the next phase must not inherit them).
        self.fabric.settle_overlap();
        // Only the top-level operation on this thread is recorded. The
        // single genuine nesting in the protocol is a write/append's
        // boundary-merge reads (`merge_boundaries` → `self.read`), so a
        // Read starting while a Write/Append is open is nested and
        // ignored wholesale. Any other op change at a Start means the
        // previous op errored out mid-protocol (no terminal phase ever
        // arrived): restart cleanly on the new op. Known limitation: a
        // top-level Read right after an *errored* Write/Append on the
        // same thread is indistinguishable from a nested read and goes
        // unrecorded — an undercount, never wrong data.
        match OPEN_OP.get() {
            Some(open) if op == ProtocolOp::Read && open != ProtocolOp::Read => return,
            Some(open) if open != op && phase != ProtocolPhase::Start => return,
            None if phase != ProtocolPhase::Start => return,
            _ => {}
        }
        let now = self.fabric.gate.now();
        if phase == ProtocolPhase::Start {
            // Opens the span — or restarts it after an errored attempt.
            OPEN_OP.set(Some(op));
            LAST_PHASE.set(Some((op, phase, now)));
            return;
        }
        let prev = LAST_PHASE.replace(Some((op, phase, now)));
        if let Some((prev_op, _, prev_at)) = prev {
            if prev_op == op {
                let mut agg = self.agg.lock();
                let slot = agg.spans.entry((op, phase)).or_default();
                slot.0 += now - prev_at;
                slot.1 += 1;
            }
        }
        let closes = matches!(
            (op, phase),
            (ProtocolOp::Read, ProtocolPhase::Done)
                | (
                    ProtocolOp::Write | ProtocolOp::Append,
                    ProtocolPhase::Committed
                )
        );
        if closes {
            OPEN_OP.set(None);
        }
    }
}

// --- deployment ---------------------------------------------------------------

/// A full concurrent deployment: the real engine wired to the charging
/// adapters, a gate to interleave client threads, and a phase recorder.
pub struct ConcurrentDeployment {
    /// The deployment; obtain clients with `sys.client(..)` (uncharged
    /// boot work) or through [`Self::run_clients`] (charged, simulated).
    pub sys: Arc<BlobSeer>,
    /// The shared cost-model state.
    pub fabric: Arc<ConcFabric>,
    /// Per-phase simulated-time breakdown (populated while charging).
    pub phases: Arc<PhaseRecorder>,
}

/// Deploys the real engine over the concurrent charging adapters.
///
/// * `n_providers` data providers are hosted on nodes `0..n_providers`.
/// * `n_nodes` sizes the simulated network (clients may run on any node
///   below it, including provider nodes — that is what makes co-located
///   reads local).
/// * `real_block_size` is the engine's actual block size; every block is
///   *charged* as the paper's 64 MB regardless, so keep it small.
pub fn deploy(
    c: &Constants,
    n_providers: usize,
    n_nodes: usize,
    policy: PlacementPolicy,
    seed: u64,
    real_block_size: u64,
) -> ConcurrentDeployment {
    let fabric = Arc::new(ConcFabric::new(c.clone(), n_providers, n_nodes));
    let phases = Arc::new(PhaseRecorder {
        fabric: Arc::clone(&fabric),
        agg: Mutex::new(PhaseBreakdown::default()),
    });
    let cfg = BlobSeerConfig {
        block_size: real_block_size,
        replication: 1,
        placement: policy,
        metadata_providers: c.meta_shards.max(1),
        metadata_replication: 1,
        // The unaligned-append slow path and a closing BSFS stream both
        // wait on a *real* condvar for a reveal — but under the gate the
        // committing peer is parked and can never run while this thread
        // holds the turn, so such a wait can only ever time out. Fail fast
        // instead of stalling the whole simulation for the 30 s defaults.
        // (All figure workloads are block-aligned and reveal before close,
        // so neither path is taken.)
        unaligned_append_timeout: Duration::from_millis(50),
        close_reveal_timeout: Duration::from_millis(50),
        // The gate serializes simulated threads; an OS thread pool would
        // run uncharged (its workers never set `CLIENT_NODE`) and deadlock
        // the turn-taking. Inline execution + the charging adapters'
        // overlap watermark model the fan-out instead.
        client_io_threads: Some(1),
        ..BlobSeerConfig::small_for_tests()
    };
    let stats = Arc::new(EngineStats::new());
    let ports = EnginePorts {
        providers: Arc::new(ConcBlockStore {
            inner: ProviderSet::new(n_providers, |i| NodeId::new(i as u64)),
            fabric: Arc::clone(&fabric),
        }),
        dht: Arc::new(ConcMetaStore {
            inner: MetaDht::new(cfg.metadata_providers, cfg.metadata_replication),
            fabric: Arc::clone(&fabric),
        }),
        vm: Arc::new(ConcVersionService {
            inner: VersionManager::new(real_block_size, Arc::clone(&stats)),
            fabric: Arc::clone(&fabric),
        }),
        pm: Arc::new(ProviderManager::new(n_providers, policy, seed)),
        gc: None,
        stats,
        observer: Arc::clone(&phases) as Arc<dyn ProtocolObserver>,
    };
    ConcurrentDeployment {
        sys: BlobSeer::deploy_ports(cfg, ports),
        fabric,
        phases,
    }
}

/// Per-client throughput rates in MB/s from recorded per-client durations
/// of one modeled transfer of `modeled_bytes` each — the paper's
/// measurement rule ("individual throughput is collected and is then
/// averaged", §V-C) in one place for every figure (Fig. 4 averages these
/// rates, Fig. 5 sums them).
///
/// # Panics
/// Panics if any client never recorded a duration (it did not finish).
pub fn client_mbps(modeled_bytes: u64, durations: &[Option<SimDuration>]) -> Vec<f64> {
    let mb = modeled_bytes as f64 / (1024.0 * 1024.0);
    durations
        .iter()
        .map(|d| mb / d.expect("simulated client finished").as_secs_f64())
        .collect()
}

/// One simulated client for [`ConcurrentDeployment::run_clients`]: the
/// node it runs on and its body.
pub type ClientTask<'env> = (NodeId, Box<dyn FnOnce(BlobClient) + Send + 'env>);

impl ConcurrentDeployment {
    /// Turns cost charging on/off. Boot phases (writing the input file a
    /// figure measures reads of) run uncharged; measurements run charged.
    pub fn set_charging(&self, on: bool) {
        self.fabric.aux.lock().charging = on;
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.fabric.gate.now()
    }

    /// Runs one simulated client per entry, all admitted at the current
    /// simulated instant, interleaved deterministically on the gate. Each
    /// body receives a [`BlobClient`] bound to its node and may use
    /// [`ConcFabric::gate`] for explicit sleeps (compute time, staggers).
    pub fn run_clients<'env>(&'env self, clients: Vec<ClientTask<'env>>) {
        let tasks: Vec<SimTask<'env>> = clients
            .into_iter()
            .map(|(node, body)| {
                let sys = &self.sys;
                Box::new(move || {
                    CLIENT_NODE.set(Some(node));
                    LAST_PHASE.set(None);
                    OPEN_OP.set(None);
                    META_PHASE_START.set(SimTime::ZERO);
                    OVERLAP.set(None);
                    body(sys.client(node));
                    OVERLAP.set(None);
                    CLIENT_NODE.set(None);
                }) as SimTask<'env>
            })
            .collect();
        self.fabric.gate.run(tasks);
    }
}

// --- the modeled baseline ----------------------------------------------------

/// Gate-backed primitives for the HDFS comparison legs: HDFS is not the
/// system under test and has no `BlobClient`, so its curves remain cost
/// models — but composed from the same simulated-time primitives as the
/// real-protocol runs (shared namenode queue, FIFO disks, max-min flows),
/// not from bespoke event-handler worlds.
pub struct BaselineWorld {
    /// The virtual-time gate the model tasks run on.
    pub gate: SimGate,
    c: Constants,
    aux: Mutex<BaselineAux>,
}

struct BaselineAux {
    write_disks: Vec<Disk>,
    read_disks: Vec<Disk>,
    central: FifoServer,
}

impl BaselineWorld {
    /// A world of `n_nodes` nodes, each with a disk, sharing one central
    /// service (the namenode).
    pub fn new(c: &Constants, n_nodes: usize) -> Self {
        Self {
            gate: SimGate::new(FlowNet::new(n_nodes.max(1), NicSpec::symmetric(c.nic_bps))),
            aux: Mutex::new(BaselineAux {
                write_disks: (0..n_nodes).map(|_| Disk::new(c.disk_write_bps)).collect(),
                read_disks: (0..n_nodes).map(|_| Disk::new(c.disk_read_bps)).collect(),
                central: FifoServer::new(c.nn_svc),
            }),
            c: c.clone(),
        }
    }

    /// The model constants this world charges with.
    pub fn constants(&self) -> &Constants {
        &self.c
    }

    /// One small RPC to the central service: request latency, queued
    /// service of `svc`, response latency; blocks until the response.
    pub fn central_call(&self, svc: SimDuration) {
        let done = rpc_done(
            &mut self.aux.lock().central,
            self.gate.now(),
            self.c.latency,
            svc,
        );
        self.gate.sleep_until(done);
    }

    /// Fetches one modeled 64 MB block stored on node `host` to the task's
    /// node `me`: the host's disk serves queued reads while the flow (if
    /// remote) streams, then `overhead` tops it off — the same
    /// `stream_and_wait` composition the real-protocol fabric charges.
    pub fn fetch_block(&self, host: usize, me: NodeId, overhead: SimDuration) {
        let disk_done =
            self.aux.lock().read_disks[host].submit(self.gate.now(), self.c.block_bytes);
        stream_and_wait(
            &self.gate,
            NodeId::new(host as u64),
            me,
            self.c.block_bytes,
            disk_done,
            overhead,
        );
    }

    /// Writes one modeled 64 MB block to the local disk of `node`; blocks
    /// until the disk drained it.
    pub fn write_block_local(&self, node: usize) {
        let done = self.aux.lock().write_disks[node].submit(self.gate.now(), self.c.block_bytes);
        self.gate.sleep_until(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n_providers: usize, n_clients: usize, block: u64) -> ConcurrentDeployment {
        deploy(
            &Constants::default(),
            n_providers,
            n_providers.max(n_clients),
            PlacementPolicy::RoundRobin,
            1,
            block,
        )
    }

    #[test]
    fn sixteen_concurrent_appenders_get_distinct_consecutive_versions() {
        let dep = small(8, 16, 256);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        dep.set_charging(true);
        let results = Mutex::new(Vec::new());
        let clients: Vec<ClientTask<'_>> = (0..16u64)
            .map(|i| {
                let results = &results;
                (
                    NodeId::new(i % 8),
                    Box::new(move |cl: BlobClient| {
                        let (offset, version) = cl.append(blob, &[i as u8; 256]).unwrap();
                        results.lock().push((i, offset, version.raw()));
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        let mut results = results.into_inner();
        results.sort_by_key(|&(_, _, v)| v);
        // 16 distinct, consecutive versions with offsets matching rank.
        let versions: Vec<u64> = results.iter().map(|&(_, _, v)| v).collect();
        assert_eq!(versions, (1..=16).collect::<Vec<_>>());
        let offsets: Vec<u64> = results.iter().map(|&(_, o, _)| o).collect();
        assert_eq!(offsets, (0..16).map(|k| k * 256).collect::<Vec<_>>());
        // The final BLOB is fully readable, every append exactly once.
        let (v, size) = boot.latest(blob).unwrap();
        assert_eq!((v.raw(), size), (16, 16 * 256));
        let data = boot.read(blob, None, 0, size).unwrap();
        let mut seen = std::collections::HashSet::new();
        for chunk in data.chunks(256) {
            assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append");
            assert!(seen.insert(chunk[0]), "duplicate append");
        }
        assert_eq!(seen.len(), 16);
        // And simulated time passed: at least one serialized VM queue.
        assert!(dep.now() > SimTime::ZERO);
    }

    #[test]
    fn concurrent_readers_see_one_consistent_snapshot() {
        let dep = small(8, 16, 128);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        for i in 0..16u8 {
            boot.append(blob, &[i; 128]).unwrap();
        }
        dep.set_charging(true);
        let reads = Mutex::new(Vec::new());
        let clients: Vec<ClientTask<'_>> = (0..16u64)
            .map(|i| {
                let reads = &reads;
                (
                    NodeId::new(i % 8),
                    Box::new(move |cl: BlobClient| {
                        // Every reader sees the same revealed snapshot…
                        let (v, size) = cl.latest(blob).unwrap();
                        // …and its chunk holds exactly the booted bytes.
                        let data = cl.read(blob, Some(v), i * 128, 128).unwrap();
                        reads.lock().push((i, v.raw(), size, data[0]));
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        let reads = reads.into_inner();
        assert_eq!(reads.len(), 16);
        for &(i, v, size, byte) in &reads {
            assert_eq!(v, 16, "reader {i} sees the latest snapshot");
            assert_eq!(size, 16 * 128);
            assert_eq!(byte as u64, i, "reader {i} got its own chunk");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let dep = small(8, 12, 64);
            let boot = dep.sys.client(NodeId::new(0));
            let blob = boot.create();
            dep.set_charging(true);
            let ends = Mutex::new(Vec::new());
            let clients: Vec<ClientTask<'_>> = (0..12u64)
                .map(|i| {
                    let (ends, fabric) = (&ends, &dep.fabric);
                    (
                        NodeId::new(i % 8),
                        Box::new(move |cl: BlobClient| {
                            cl.append(blob, &[1u8; 64]).unwrap();
                            ends.lock().push((i, fabric.gate().now().as_nanos()));
                        }) as Box<dyn FnOnce(BlobClient) + Send>,
                    )
                })
                .collect();
            dep.run_clients(clients);
            (
                ends.into_inner(),
                dep.now().as_nanos(),
                dep.sys.layout_vector(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn charging_gates_the_cost_model() {
        let dep = small(4, 4, 64);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        // Uncharged boot: engine state advances, the clock does not.
        for _ in 0..4 {
            boot.append(blob, &[9u8; 64]).unwrap();
        }
        assert_eq!(dep.now(), SimTime::ZERO);
        assert_eq!(dep.sys.providers().total_block_count(), 4);
        // Charged run: one append must cost at least a 64 MB disk write.
        dep.set_charging(true);
        let clients: Vec<ClientTask<'_>> = vec![(
            NodeId::new(1),
            Box::new(move |cl: BlobClient| {
                cl.append(blob, &[7u8; 64]).unwrap();
            }),
        )];
        dep.run_clients(clients);
        let floor = Constants::default().block_bytes as f64 / Constants::default().disk_write_bps;
        assert!(
            dep.now().as_secs_f64() > floor,
            "clock {} must exceed the disk floor {floor:.2}s",
            dep.now()
        );
    }

    #[test]
    fn phase_recorder_ignores_nested_boundary_reads() {
        // An unaligned write performs nested boundary reads through the
        // public read path; the recorder must attribute the whole span to
        // the Write and record no top-level Read.
        let dep = small(4, 1, 64);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        boot.append(blob, &[1u8; 128]).unwrap();
        dep.set_charging(true);
        let clients: Vec<ClientTask<'_>> = vec![(
            NodeId::new(1),
            Box::new(move |cl: BlobClient| {
                cl.write(blob, 10, &[9u8; 50]).unwrap(); // unaligned
            }),
        )];
        dep.run_clients(clients);
        let b = dep.phases.breakdown();
        assert_eq!(b.count(ProtocolOp::Write, ProtocolPhase::Committed), 1);
        assert_eq!(
            b.count(ProtocolOp::Read, ProtocolPhase::Done),
            0,
            "nested merge reads must not pollute the Read aggregates"
        );
    }

    #[test]
    fn phase_recorder_attributes_the_serialized_step() {
        let dep = small(8, 8, 64);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        dep.set_charging(true);
        let clients: Vec<ClientTask<'_>> = (0..8u64)
            .map(|i| {
                (
                    NodeId::new(i),
                    Box::new(move |cl: BlobClient| {
                        cl.append(blob, &[i as u8; 64]).unwrap();
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        let b = dep.phases.breakdown();
        assert_eq!(b.count(ProtocolOp::Append, ProtocolPhase::Committed), 8);
        // 8 simultaneous assign requests: the mean wait must exceed the
        // bare service time — the queueing is real.
        let c = Constants::default();
        let mean_assign = b.mean(ProtocolOp::Append, ProtocolPhase::VersionAssigned);
        assert!(
            mean_assign > c.vm_assign_svc,
            "assignment wait {mean_assign} must show queueing over {:?}",
            c.vm_assign_svc
        );
    }
}
