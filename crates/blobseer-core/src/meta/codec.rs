//! Binary codecs for the metadata domain types.
//!
//! These encodings cross *two* boundaries: the RPC wire (every tree node
//! a client publishes or fetches travels in this form, see
//! `blobseer_rpc::wire`) and the durable record logs of the disk-backed
//! metadata store (`blobseer_disk`), whose on-disk records must decode
//! after a process restart. Keeping one codec for both means a node
//! fetched over the wire and a node replayed from disk are bit-identical,
//! and the round-trip properties proved by the wire tests cover the
//! durable format for free.
//!
//! Every decode validates its input and fails with
//! [`Error::Transport`] ("the bytes are malformed"); a torn or corrupt
//! record can never panic a reader. The disk layer maps decode failures
//! inside a checksummed frame to [`Error::Storage`] — a valid checksum
//! over an undecodable payload means the *writer* was broken, not the
//! medium.
//!
//! [`Error::Storage`]: blobseer_types::Error::Storage

use crate::meta::key::{BlockRange, NodeKey, Pos};
use crate::meta::node::{BlockDescriptor, NodeRef, TreeNode};
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, BlockId, Error, Result, Version};

/// Encodes a node position.
pub fn put_pos(w: &mut WireWriter, pos: Pos) {
    w.put_u64(pos.start);
    w.put_u64(pos.len);
}

/// Decodes a node position, validating the power-of-two/alignment
/// invariants `Pos::new` only debug-asserts.
pub fn get_pos(r: &mut WireReader<'_>) -> Result<Pos> {
    let start = r.get_u64()?;
    let len = r.get_u64()?;
    if !len.is_power_of_two() || !start.is_multiple_of(len) {
        return Err(Error::Transport(format!(
            "wire: invalid tree position ({start},{len})"
        )));
    }
    Ok(Pos::new(start, len))
}

/// Encodes a DHT node key.
pub fn put_node_key(w: &mut WireWriter, key: &NodeKey) {
    w.put_u64(key.blob.raw());
    w.put_u64(key.version.raw());
    put_pos(w, key.pos);
}

/// Decodes a DHT node key.
pub fn get_node_key(r: &mut WireReader<'_>) -> Result<NodeKey> {
    Ok(NodeKey::new(
        BlobId::new(r.get_u64()?),
        Version::new(r.get_u64()?),
        get_pos(r)?,
    ))
}

/// Encodes a block range.
pub fn put_block_range(w: &mut WireWriter, range: BlockRange) {
    w.put_u64(range.start);
    w.put_u64(range.end);
}

/// Decodes a block range (rejecting inverted ranges).
pub fn get_block_range(r: &mut WireReader<'_>) -> Result<BlockRange> {
    let start = r.get_u64()?;
    let end = r.get_u64()?;
    if end < start {
        return Err(Error::Transport(format!(
            "wire: inverted block range [{start}, {end})"
        )));
    }
    Ok(BlockRange::new(start, end))
}

/// Encodes an optional reference to another version's tree node.
pub fn put_opt_node_ref(w: &mut WireWriter, r: &Option<NodeRef>) {
    match r {
        None => w.put_bool(false),
        Some(nr) => {
            w.put_bool(true);
            w.put_u64(nr.blob.raw());
            w.put_u64(nr.version.raw());
        }
    }
}

/// Decodes an optional node reference.
pub fn get_opt_node_ref(r: &mut WireReader<'_>) -> Result<Option<NodeRef>> {
    if !r.get_bool()? {
        return Ok(None);
    }
    Ok(Some(NodeRef {
        blob: BlobId::new(r.get_u64()?),
        version: Version::new(r.get_u64()?),
    }))
}

/// Encodes a block descriptor.
pub fn put_block_descriptor(w: &mut WireWriter, d: &BlockDescriptor) {
    w.put_u64(d.block_id.raw());
    w.put_u64(d.providers.len() as u64);
    for &p in &d.providers {
        w.put_u32(p);
    }
    w.put_u32(d.len);
}

/// Decodes a block descriptor.
pub fn get_block_descriptor(r: &mut WireReader<'_>) -> Result<BlockDescriptor> {
    let block_id = BlockId::new(r.get_u64()?);
    let n = r.get_u64()? as usize;
    let mut providers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        providers.push(r.get_u32()?);
    }
    Ok(BlockDescriptor {
        block_id,
        providers,
        len: r.get_u32()?,
    })
}

/// Encodes a metadata tree node.
pub fn put_tree_node(w: &mut WireWriter, node: &TreeNode) {
    match node {
        TreeNode::Inner { left, right } => {
            w.put_u8(0);
            put_opt_node_ref(w, left);
            put_opt_node_ref(w, right);
        }
        TreeNode::Leaf(d) => {
            w.put_u8(1);
            put_block_descriptor(w, d);
        }
        TreeNode::LeafAlias(target) => {
            w.put_u8(2);
            put_opt_node_ref(w, target);
        }
    }
}

/// Decodes a metadata tree node.
pub fn get_tree_node(r: &mut WireReader<'_>) -> Result<TreeNode> {
    Ok(match r.get_u8()? {
        0 => TreeNode::Inner {
            left: get_opt_node_ref(r)?,
            right: get_opt_node_ref(r)?,
        },
        1 => TreeNode::Leaf(get_block_descriptor(r)?),
        2 => TreeNode::LeafAlias(get_opt_node_ref(r)?),
        t => return Err(Error::Transport(format!("wire: unknown tree-node tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_keys_roundtrip() {
        let key = NodeKey::new(BlobId::new(3), Version::new(7), Pos::new(8, 4));
        let mut w = WireWriter::new();
        put_node_key(&mut w, &key);
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(get_node_key(&mut r).unwrap(), key);
        r.finish().unwrap();
    }

    #[test]
    fn inverted_block_range_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(5);
        w.put_u64(2);
        let mut r = WireReader::new(w.as_slice());
        assert!(matches!(get_block_range(&mut r), Err(Error::Transport(_))));
    }
}
