//! Tree-node positions and DHT keys.
//!
//! A segment-tree node covers a *position*: a power-of-two aligned run of
//! blocks `(start, len)` (§III-A.3: "each node is associated to a range of
//! the blob"). Leaves have `len == 1` and cover a single block. A node is
//! identified in the DHT "by its version and by the range specified through
//! the offset and the size it covers" — our [`NodeKey`] is exactly that
//! triple, plus the blob lineage that materialized it (needed for O(1)
//! branching, see `version_manager`).

use blobseer_types::{BlobId, Version};
use std::fmt;

/// A power-of-two aligned run of blocks covered by one tree node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pos {
    /// First block covered.
    pub start: u64,
    /// Number of blocks covered; always a power of two ≥ 1.
    pub len: u64,
}

impl Pos {
    /// Creates a position, validating alignment invariants.
    #[inline]
    pub fn new(start: u64, len: u64) -> Self {
        debug_assert!(
            len.is_power_of_two(),
            "node length must be a power of two: {len}"
        );
        debug_assert!(
            start.is_multiple_of(len),
            "node start {start} must be aligned to its length {len}"
        );
        Self { start, len }
    }

    /// The root position of a tree covering `cap` blocks (`cap` a power of
    /// two ≥ 1).
    #[inline]
    pub fn root(cap: u64) -> Self {
        Self::new(0, cap)
    }

    /// One block past the end.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True for single-block (leaf) positions.
    #[inline]
    pub const fn is_leaf(&self) -> bool {
        self.len == 1
    }

    /// Left child: the first half of the covered range.
    #[inline]
    pub fn left(&self) -> Pos {
        debug_assert!(!self.is_leaf());
        Pos::new(self.start, self.len / 2)
    }

    /// Right child: the second half of the covered range.
    #[inline]
    pub fn right(&self) -> Pos {
        debug_assert!(!self.is_leaf());
        Pos::new(self.start + self.len / 2, self.len / 2)
    }

    /// True if this position overlaps the block range `[start, end)`.
    #[inline]
    pub const fn intersects(&self, r: &BlockRange) -> bool {
        !r.is_empty() && self.start < r.end && r.start < self.end()
    }

    /// True if this position is a valid node of a tree with capacity `cap`.
    #[inline]
    pub const fn valid_in(&self, cap: u64) -> bool {
        self.end() <= cap
    }
}

impl fmt::Debug for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.start, self.len)
    }
}

/// A half-open range of blocks `[start, end)` (block indices, not bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRange {
    pub start: u64,
    pub end: u64,
}

impl BlockRange {
    /// Creates a block range; `end >= start`.
    #[inline]
    pub fn new(start: u64, end: u64) -> Self {
        debug_assert!(end >= start, "inverted block range [{start}, {end})");
        Self { start, end }
    }

    /// The blocks touched by the byte range `[offset, offset+size)`.
    #[inline]
    pub fn of_bytes(offset: u64, size: u64, block_size: u64) -> Self {
        debug_assert!(block_size > 0);
        if size == 0 {
            return Self::new(offset / block_size, offset / block_size);
        }
        Self::new(offset / block_size, (offset + size).div_ceil(block_size))
    }

    /// Number of blocks in the range.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers no blocks.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the block indices in the range.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }
}

impl fmt::Debug for BlockRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blocks[{}, {})", self.start, self.end)
    }
}

/// The DHT key of a tree node: which lineage wrote it, at which version,
/// covering which position (§III-A.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey {
    /// The blob lineage whose write materialized the node.
    pub blob: BlobId,
    /// The snapshot version that materialized the node.
    pub version: Version,
    /// The block range the node covers.
    pub pos: Pos,
}

impl NodeKey {
    /// Convenience constructor.
    #[inline]
    pub fn new(blob: BlobId, version: Version, pos: Pos) -> Self {
        Self { blob, version, pos }
    }

    /// A 64-bit hash used to shard keys over metadata providers.
    ///
    /// SplitMix64-style finalizer over the four fields; good avalanche, no
    /// allocation, deterministic across runs (the DHT layout figures rely
    /// on that).
    pub fn hash64(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for v in [
            self.blob.raw(),
            self.version.raw(),
            self.pos.start,
            self.pos.len,
        ] {
            h ^= mix64(v.wrapping_add(h));
        }
        mix64(h)
    }
}

impl fmt::Debug for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}@{:?}", self.blob, self.version, self.pos)
    }
}

/// SplitMix64 finalizer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_partition_parent() {
        let p = Pos::new(0, 8);
        assert_eq!(p.left(), Pos::new(0, 4));
        assert_eq!(p.right(), Pos::new(4, 4));
        assert_eq!(p.left().end(), p.right().start);
        assert_eq!(p.right().end(), p.end());
        assert!(!Pos::new(6, 2).is_leaf());
        assert!(Pos::new(7, 1).is_leaf());
    }

    #[test]
    fn intersection_with_block_range() {
        let p = Pos::new(4, 4); // blocks [4, 8)
        assert!(p.intersects(&BlockRange::new(7, 9)));
        assert!(p.intersects(&BlockRange::new(0, 5)));
        assert!(!p.intersects(&BlockRange::new(8, 10)));
        assert!(!p.intersects(&BlockRange::new(0, 4)));
        assert!(!p.intersects(&BlockRange::new(5, 5)), "empty range");
    }

    #[test]
    fn byte_to_block_projection() {
        // 64-byte blocks.
        assert_eq!(BlockRange::of_bytes(0, 64, 64), BlockRange::new(0, 1));
        assert_eq!(BlockRange::of_bytes(0, 65, 64), BlockRange::new(0, 2));
        assert_eq!(BlockRange::of_bytes(63, 2, 64), BlockRange::new(0, 2));
        assert_eq!(BlockRange::of_bytes(64, 64, 64), BlockRange::new(1, 2));
        assert!(BlockRange::of_bytes(10, 0, 64).is_empty());
    }

    #[test]
    fn validity_in_capacity() {
        assert!(Pos::new(0, 4).valid_in(4));
        assert!(!Pos::new(0, 8).valid_in(4));
        assert!(Pos::new(4, 4).valid_in(8));
        assert!(!Pos::new(4, 4).valid_in(4));
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        let k1 = NodeKey::new(BlobId::new(1), Version::new(2), Pos::new(0, 4));
        let k2 = NodeKey::new(BlobId::new(1), Version::new(2), Pos::new(0, 4));
        assert_eq!(k1.hash64(), k2.hash64());
        // Nearby keys should land on many distinct buckets.
        let mut buckets = std::collections::HashSet::new();
        for v in 0..64u64 {
            let k = NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(0, 1));
            buckets.insert(k.hash64() % 16);
        }
        assert!(
            buckets.len() >= 12,
            "poor spread: {} buckets",
            buckets.len()
        );
    }

    #[test]
    fn block_range_iter() {
        let r = BlockRange::new(3, 6);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.len(), 3);
    }
}
