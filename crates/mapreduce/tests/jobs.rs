//! End-to-end Map/Reduce jobs on both storage backends — the live-scale
//! counterpart of the paper's §V-G experiments.

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, HdfsConfig, NodeId};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};
use hdfs_sim::HdfsCluster;
use mapreduce::apps::{DistributedGrep, RandomTextWriter, WordCount};
use mapreduce::{JobTracker, TaskTracker, TextGen};

const BLOCK: u64 = 4096;
const NODES: usize = 6;

/// Tasktrackers co-deployed with BSFS providers on nodes 0..NODES (§V-G).
fn bsfs_trackers() -> (std::sync::Arc<BsfsCluster>, JobTracker) {
    let sys = BlobSeer::deploy(
        BlobSeerConfig::small_for_tests()
            .with_block_size(BLOCK)
            .with_metadata_providers(4),
        NODES,
    );
    let cluster = BsfsCluster::new(sys);
    let trackers = (0..NODES)
        .map(|i| {
            TaskTracker::new(
                NodeId::new(i as u64),
                Box::new(cluster.mount(NodeId::new(i as u64))),
            )
        })
        .collect();
    (cluster, JobTracker::new(trackers))
}

/// Tasktrackers co-deployed with HDFS datanodes.
fn hdfs_trackers() -> (std::sync::Arc<HdfsCluster>, JobTracker) {
    let cluster = HdfsCluster::new(HdfsConfig::small_for_tests().with_chunk_size(BLOCK), NODES);
    let trackers = (0..NODES)
        .map(|i| {
            TaskTracker::new(
                NodeId::new(i as u64),
                Box::new(cluster.mount(NodeId::new(i as u64))),
            )
        })
        .collect();
    (cluster, JobTracker::new(trackers))
}

fn grep_count(fs: &dyn FileSystem, output_dir: &str) -> u64 {
    let out = read_fully(fs, &format!("{output_dir}/part-r-00000")).unwrap();
    let text = String::from_utf8(out).unwrap();
    let line = text.lines().next().unwrap_or("\t0");
    line.split('\t').nth(1).unwrap().parse().unwrap()
}

/// Expected grep hits computed sequentially, for cross-checking.
fn reference_grep(data: &[u8], pattern: &str) -> u64 {
    data.split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .filter(|l| l.windows(pattern.len()).any(|w| w == pattern.as_bytes()))
        .count() as u64
}

#[test]
fn grep_on_bsfs_matches_reference() {
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let data = TextGen::new(42).text(8 * BLOCK as usize);
    write_file(&fs, "/in/huge.txt", &data).unwrap();
    let job = DistributedGrep::job("/in/huge.txt", "/out/grep");
    let app = DistributedGrep::new("the"); // substring of many words
    let report = jt.run_job(&job, &app, &app).unwrap();
    assert_eq!(report.backend, "BSFS");
    assert_eq!(report.map_tasks, 9, "one mapper per block (8 full + tail)");
    assert_eq!(
        grep_count(&fs, "/out/grep"),
        reference_grep(&data, "the"),
        "distributed count must equal the sequential reference"
    );
    // With co-deployed trackers and round-robin placement, most maps are
    // data-local (§V-E).
    assert!(
        report.local_maps >= report.map_tasks - 2,
        "expected mostly local maps: {report:?}"
    );
}

#[test]
fn grep_on_hdfs_matches_reference_and_bsfs() {
    let (hdfs, hjt) = hdfs_trackers();
    let (bsfs_cl, bjt) = bsfs_trackers();
    let data = TextGen::new(43).text(6 * BLOCK as usize);
    let pattern = "uncombable";
    let expected = reference_grep(&data, pattern);

    let hfs = hdfs.mount(NodeId::new(0));
    write_file(&hfs, "/in/t.txt", &data).unwrap();
    let app = DistributedGrep::new(pattern);
    let hrep = hjt
        .run_job(&DistributedGrep::job("/in/t.txt", "/out/g"), &app, &app)
        .unwrap();
    assert_eq!(hrep.backend, "HDFS");
    assert_eq!(grep_count(&hfs, "/out/g"), expected);

    let bfs = bsfs_cl.mount(NodeId::new(0));
    write_file(&bfs, "/in/t.txt", &data).unwrap();
    let brep = bjt
        .run_job(&DistributedGrep::job("/in/t.txt", "/out/g"), &app, &app)
        .unwrap();
    assert_eq!(grep_count(&bfs, "/out/g"), expected, "backends agree");
    assert_eq!(brep.map_input_records, hrep.map_input_records);
}

#[test]
fn random_text_writer_writes_separate_files() {
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let mappers = 8;
    let app = RandomTextWriter {
        bytes_per_mapper: 3 * BLOCK,
        seed: 7,
    };
    let job = RandomTextWriter::job(mappers, "/out/rtw");
    let report = jt.run_map_only(&job, &app).unwrap();
    assert_eq!(report.map_tasks, mappers);
    assert_eq!(report.reduce_tasks, 0);
    assert_eq!(report.output_files.len(), mappers);
    // Each mapper wrote its own part file of at least the target size.
    let listing = fs.list("/out/rtw").unwrap();
    assert_eq!(listing.len(), mappers);
    for st in listing {
        assert!(
            st.len >= 3 * BLOCK,
            "mapper output {} too small: {}",
            st.path,
            st.len
        );
    }
    // "no interaction among the tasks": outputs are pairwise distinct.
    let a = read_fully(&fs, "/out/rtw/part-m-00000").unwrap();
    let b = read_fully(&fs, "/out/rtw/part-m-00001").unwrap();
    assert_ne!(a, b);
}

#[test]
fn wordcount_totals_match_input() {
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let data = TextGen::new(5).text(4 * BLOCK as usize);
    let total_words: u64 = data
        .split(|&b| b == b'\n')
        .map(|l| l.split(|&b| b == b' ').filter(|w| !w.is_empty()).count() as u64)
        .sum();
    write_file(&fs, "/in/wc.txt", &data).unwrap();
    let report = jt
        .run_job(
            &WordCount::job("/in/wc.txt", "/out/wc", 3),
            &WordCount,
            &WordCount,
        )
        .unwrap();
    assert_eq!(report.reduce_tasks, 3);
    // Sum counts across all reducer outputs.
    let mut sum = 0u64;
    let mut distinct = 0u64;
    for r in 0..3 {
        let out = read_fully(&fs, &format!("/out/wc/part-r-{r:05}")).unwrap();
        for line in String::from_utf8(out).unwrap().lines() {
            let mut it = line.split('\t');
            let _word = it.next().unwrap();
            sum += it.next().unwrap().parse::<u64>().unwrap();
            distinct += 1;
        }
    }
    assert_eq!(sum, total_words);
    assert_eq!(
        distinct, 50,
        "all 50 dictionary words appear in 16 KB of text"
    );
    assert_eq!(report.map_output_records, total_words);
}

#[test]
fn combiner_preserves_results_and_shrinks_shuffle() {
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let data = TextGen::new(21).text(6 * BLOCK as usize);
    write_file(&fs, "/in/c.txt", &data).unwrap();

    let plain = jt
        .run_job(
            &WordCount::job("/in/c.txt", "/out/plain", 3),
            &WordCount,
            &WordCount,
        )
        .unwrap();
    let combined = jt
        .run_job_with_combiner(
            &WordCount::job("/in/c.txt", "/out/combined", 3),
            &WordCount,
            &WordCount,
            &WordCount,
        )
        .unwrap();

    // Identical final counts…
    let collect = |dir: &str| {
        let mut lines = Vec::new();
        for r in 0..3 {
            let out = read_fully(&fs, &format!("{dir}/part-r-{r:05}")).unwrap();
            lines.extend(String::from_utf8(out).unwrap().lines().map(str::to_string));
        }
        lines.sort();
        lines
    };
    assert_eq!(collect("/out/plain"), collect("/out/combined"));
    // …with a dramatically smaller shuffle: at most one record per
    // (task, reducer, distinct word), versus one per word occurrence.
    assert_eq!(plain.shuffle_records, plain.map_output_records);
    assert!(
        combined.shuffle_records < plain.shuffle_records / 5,
        "combiner should compact the shuffle: {} vs {}",
        combined.shuffle_records,
        plain.shuffle_records
    );
    assert_eq!(combined.map_output_records, plain.map_output_records);
}

#[test]
fn split_boundaries_lose_no_records() {
    // Adversarial line lengths around block boundaries: records must be
    // processed exactly once regardless of where splits fall.
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let mut data = Vec::new();
    let mut expected_lines = 0u64;
    let mut i = 0u64;
    // Craft lines of varying lengths, including one that straddles every
    // block boundary and lines that end exactly on boundaries.
    while data.len() < 5 * BLOCK as usize {
        let len = (i % 97 + 1) as usize;
        data.extend(std::iter::repeat_n(b'a' + (i % 26) as u8, len));
        data.push(b'\n');
        expected_lines += 1;
        i += 1;
    }
    write_file(&fs, "/in/adv.txt", &data).unwrap();
    let app = DistributedGrep::new(""); // match everything: counts lines
    let report = jt
        .run_job(&DistributedGrep::job("/in/adv.txt", "/out/adv"), &app, &app)
        .unwrap();
    assert_eq!(
        report.map_input_records, expected_lines,
        "every line consumed exactly once across {} splits",
        report.map_tasks
    );
    assert_eq!(grep_count(&fs, "/out/adv"), expected_lines);
    assert!(report.map_tasks >= 5, "input spans several splits");
}

#[test]
fn hdfs_local_writer_concentrates_blocks_and_locality() {
    // The effect behind the paper's Fig. 4 discussion: a file written by a
    // co-located HDFS client lands entirely on one datanode (§V-D), so
    // only that node's tracker can run local maps; everyone else reads
    // remotely.
    let (hdfs, jt) = hdfs_trackers();
    let writer_fs = hdfs.mount(NodeId::new(3)); // co-located with datanode 3
    let data = TextGen::new(9).text(8 * BLOCK as usize);
    write_file(&writer_fs, "/in/skewed.txt", &data).unwrap();
    assert_eq!(
        hdfs.layout_vector()[3] as usize,
        hdfs.layout_vector().iter().sum::<u64>() as usize,
        "co-located writes all land on datanode 3 (§V-D)"
    );
    let app = DistributedGrep::new("a");
    let report = jt
        .run_job(
            &DistributedGrep::job("/in/skewed.txt", "/out/skew"),
            &app,
            &app,
        )
        .unwrap();
    assert_eq!(report.local_maps + report.remote_maps, report.map_tasks);
    assert_eq!(
        grep_count(&writer_fs, "/out/skew"),
        reference_grep(&data, "a")
    );
}

#[test]
fn trackers_off_the_storage_nodes_run_only_remote_maps() {
    // Deterministic remote-map accounting: trackers on nodes that host no
    // datanode can never be data-local.
    let cluster = HdfsCluster::new(HdfsConfig::small_for_tests().with_chunk_size(BLOCK), NODES);
    let trackers: Vec<TaskTracker> = (100..100 + NODES as u64)
        .map(|i| TaskTracker::new(NodeId::new(i), Box::new(cluster.mount(NodeId::new(i)))))
        .collect();
    let jt = JobTracker::new(trackers);
    let fs = cluster.mount(NodeId::new(0));
    let data = TextGen::new(10).text(6 * BLOCK as usize);
    write_file(&fs, "/in/f.txt", &data).unwrap();
    let app = DistributedGrep::new("a");
    let report = jt
        .run_job(&DistributedGrep::job("/in/f.txt", "/out/r"), &app, &app)
        .unwrap();
    assert_eq!(report.local_maps, 0);
    assert_eq!(report.remote_maps, report.map_tasks);
    assert!(report.map_tasks >= 6);
}

#[test]
fn chained_jobs_output_feeds_input() {
    // A two-stage workflow (§VI-A motivates versioning for such chains):
    // RandomTextWriter produces text, grep consumes it.
    let (cluster, jt) = bsfs_trackers();
    let fs = cluster.mount(NodeId::new(0));
    let app = RandomTextWriter {
        bytes_per_mapper: 2 * BLOCK,
        seed: 11,
    };
    jt.run_map_only(&RandomTextWriter::job(4, "/stage1"), &app)
        .unwrap();
    // Grep over all four outputs.
    let inputs: Vec<String> = (0..4).map(|i| format!("/stage1/part-m-{i:05}")).collect();
    let job = mapreduce::JobSpec::new(
        "grep-stage2",
        mapreduce::InputSpec::Files(inputs.clone()),
        "/stage2",
        1,
    );
    let g = DistributedGrep::new("hookworm");
    let report = jt.run_job(&job, &g, &g).unwrap();
    let mut expected = 0;
    for input in &inputs {
        expected += reference_grep(&read_fully(&fs, input).unwrap(), "hookworm");
    }
    assert_eq!(grep_count(&fs, "/stage2"), expected);
    assert!(report.map_tasks >= 4);
}
