//! Virtual-time coordination for *real threads*: many blocked client tasks
//! on one discrete-event clock.
//!
//! The single-client figure drivers charge simulated time from synchronous
//! code by just bumping a counter. Concurrent-client scenarios (Figs. 4–6
//! of the paper) cannot: N clients must *interleave* — a flow started by
//! client 3 changes the bandwidth share, and therefore the completion time,
//! of a flow client 7 is blocked on. The classic answer is to rewrite every
//! client as an event-handler state machine, but then the protocol under
//! test is a re-implementation, not the real code.
//!
//! [`SimGate`] takes the other path: each simulated client runs the **real,
//! synchronous code** on its own OS thread, and the gate serializes those
//! threads onto the simulated clock:
//!
//! * At any real instant **at most one simulated thread executes**; all
//!   others are blocked inside the gate. Shared state touched between gate
//!   calls therefore needs no ordering discipline beyond plain locks, and
//!   every run is deterministic.
//! * A thread gives up the CPU by *waiting for simulated time*:
//!   [`SimGate::sleep`]/[`SimGate::sleep_until`] (fixed instants, e.g. a
//!   disk or RPC-queue completion computed up front) or
//!   [`SimGate::transfer`] (a bulk flow in the embedded [`FlowNet`], whose
//!   completion instant *moves* as other threads start and finish flows).
//! * When the last runnable thread blocks, the gate dispatches: it picks
//!   the earliest pending event — fixed wake-ups win ties, then flow
//!   completions, with sequence numbers / token order breaking the rest —
//!   advances the clock and the flow network there, and releases exactly
//!   one thread.
//!
//! Threads are released strictly one at a time, so event handling is
//! sequential even though the *simulated* activity is concurrent. If every
//! thread is blocked and no event is pending, the simulation has deadlocked
//! — a bug in the harness — and the gate panics with a diagnostic rather
//! than hanging the test suite.

use crate::flow::FlowNet;
use crate::time::{SimDuration, SimTime};
use blobseer_types::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Mutex;
use std::thread::{self, Thread};

/// One simulated task for [`SimGate::run`]: a closure executed on its own
/// thread, interleaved with its peers on the simulated clock.
pub type SimTask<'env> = Box<dyn FnOnce() + Send + 'env>;

struct GateState {
    clock: SimTime,
    /// Bulk transfers; the flow token is the waiter sequence number of the
    /// thread blocked on it.
    net: FlowNet<u64>,
    /// Threads currently executing user code (invariant: 0 or 1 once the
    /// run is underway).
    running: usize,
    /// Registered, unfinished simulated threads.
    live: usize,
    /// Fixed-time wake-ups: `(instant, seq)`, earliest first.
    fixed: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Waiters whose event fired, pending release (released one at a time).
    ready: VecDeque<u64>,
    /// Waiters allowed to resume (consumed by the woken thread).
    released: HashSet<u64>,
    /// Parked OS threads by waiter seq, for targeted wake-ups.
    parked: HashMap<u64, Thread>,
    /// Set when a simulated thread panicked: every other waiter is woken
    /// and panics too, so `run`'s scope can join and propagate.
    poisoned: bool,
    next_seq: u64,
}

/// The virtual-time gate. See the module docs for the execution model.
pub struct SimGate {
    st: Mutex<GateState>,
}

/// Calls [`SimGate::exit`] when dropped — normally at the end of a task,
/// or during unwinding when the task panicked.
struct TurnGuard<'a>(&'a SimGate);

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

impl SimGate {
    /// A gate over the given flow network (the network's nodes are the
    /// simulated cluster nodes usable with [`SimGate::transfer`]).
    pub fn new(net: FlowNet<u64>) -> Self {
        Self {
            st: Mutex::new(GateState {
                clock: SimTime::ZERO,
                net,
                running: 0,
                live: 0,
                fixed: BinaryHeap::new(),
                ready: VecDeque::new(),
                released: HashSet::new(),
                parked: HashMap::new(),
                poisoned: false,
                next_seq: 0,
            }),
        }
    }

    /// Current simulated time. Stable while the calling simulated thread
    /// runs (nothing else advances the clock until it blocks).
    pub fn now(&self) -> SimTime {
        self.lock().clock
    }

    /// `(started, completed)` flow counters of the embedded network.
    pub fn flow_stats(&self) -> (u64, u64) {
        self.lock().net.flow_stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `tasks` as concurrent simulated threads and returns when all of
    /// them finished. Tasks are admitted at the current simulated instant
    /// in vector order; each runs until it blocks on the gate, which is
    /// when the next admissible thread proceeds.
    ///
    /// Must be called from *outside* any simulated thread (runs nest
    /// sequentially: a second `run` continues on the clock the first left).
    pub fn run<'env>(&self, tasks: Vec<SimTask<'env>>) {
        if tasks.is_empty() {
            return;
        }
        let first_seq;
        {
            let mut st = self.lock();
            assert!(
                st.live == 0 && st.running == 0,
                "SimGate::run while a previous run is still active"
            );
            first_seq = st.next_seq;
            let clock = st.clock;
            for i in 0..tasks.len() {
                let seq = first_seq + i as u64;
                st.fixed.push(Reverse((clock, seq)));
            }
            st.next_seq += tasks.len() as u64;
            st.live = tasks.len();
            // Nothing is running yet: admit the first thread.
            Self::dispatch(&mut st);
        }
        thread::scope(|scope| {
            for (i, task) in tasks.into_iter().enumerate() {
                let seq = first_seq + i as u64;
                scope.spawn(move || {
                    // Hands the turn over even if `task` panics, so the
                    // remaining threads are not left parked forever.
                    let _turn = TurnGuard(self);
                    self.wait_released(seq);
                    task();
                });
            }
        });
    }

    /// Blocks the calling simulated thread until the clock reaches `at`
    /// (clamped to now — waiting for the past is a no-op that still yields
    /// the turn). Returns the clock on resume.
    pub fn sleep_until(&self, at: SimTime) -> SimTime {
        self.block(|st, seq| {
            let at = at.max(st.clock);
            st.fixed.push(Reverse((at, seq)));
        })
    }

    /// Blocks the calling simulated thread for `d` of simulated time.
    pub fn sleep(&self, d: SimDuration) -> SimTime {
        self.block(|st, seq| {
            let at = st.clock + d;
            st.fixed.push(Reverse((at, seq)));
        })
    }

    /// Starts a bulk transfer of `bytes` from `src` to `dst` now and blocks
    /// until it completes under max-min fair sharing with every other
    /// in-flight transfer. Returns the completion instant.
    ///
    /// `src == dst` still models a NIC-loopback flow; callers modelling
    /// node-local I/O should skip the transfer instead.
    pub fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        self.block(|st, seq| {
            let now = st.clock;
            st.net.start(now, src, dst, bytes, seq);
        })
    }

    /// Registers a wait via `register` (which must park `seq` in the fixed
    /// heap or the flow net), hands the turn over, and blocks until this
    /// waiter is dispatched.
    fn block(&self, register: impl FnOnce(&mut GateState, u64)) -> SimTime {
        let seq;
        {
            let mut st = self.lock();
            seq = st.next_seq;
            st.next_seq += 1;
            register(&mut st, seq);
            st.running -= 1;
            if st.running == 0 {
                let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Self::dispatch(&mut st)
                }));
                if let Err(payload) = unwound {
                    // Balance the TurnGuard's exit() that runs on unwind:
                    // this thread never re-acquired the turn.
                    st.running += 1;
                    drop(st);
                    std::panic::resume_unwind(payload);
                }
            }
        }
        self.wait_released(seq)
    }

    /// Parks the calling OS thread until waiter `seq` is released; returns
    /// the clock at release.
    ///
    /// # Panics
    /// Panics if a peer simulated thread panicked (the run is poisoned).
    fn wait_released(&self, seq: u64) -> SimTime {
        loop {
            {
                let mut st = self.lock();
                if st.poisoned {
                    // Balance the TurnGuard's exit() that runs on unwind:
                    // this thread never re-acquired the turn.
                    st.running += 1;
                    drop(st);
                    panic!("a peer simulated thread panicked");
                }
                if st.released.remove(&seq) {
                    st.parked.remove(&seq);
                    return st.clock;
                }
                st.parked.insert(seq, thread::current());
            }
            thread::park();
        }
    }

    /// Marks the calling simulated thread finished and hands the turn over.
    /// On a panicking thread, poisons the run and wakes every parked peer
    /// instead, so the scope can join.
    fn exit(&self) {
        let mut st = self.lock();
        st.running -= 1;
        st.live -= 1;
        if thread::panicking() {
            st.poisoned = true;
            for (_, th) in st.parked.drain() {
                th.unpark();
            }
        } else if st.running == 0 {
            Self::dispatch(&mut st);
        }
    }

    /// Advances to the next event and releases exactly one waiter. Called
    /// only when no simulated thread is running.
    fn dispatch(st: &mut GateState) {
        loop {
            if let Some(seq) = st.ready.pop_front() {
                st.running += 1;
                st.released.insert(seq);
                if let Some(th) = st.parked.remove(&seq) {
                    th.unpark();
                }
                return;
            }
            let next_fixed = st.fixed.peek().map(|&Reverse((t, s))| (t, s));
            let next_flow = st.net.next_completion();
            // Fixed wake-ups win ties against flow completions.
            let fixed_next = match (next_fixed, next_flow) {
                (None, None) => {
                    if st.live == 0 {
                        return;
                    }
                    // Defensive: unreachable through the public API (every
                    // blocked thread registered a fixed wake-up or a flow),
                    // but if an internal invariant ever breaks, poison and
                    // wake everyone first so `run`'s scope can join and the
                    // diagnostic propagates instead of hanging or aborting.
                    st.poisoned = true;
                    for (_, th) in st.parked.drain() {
                        th.unpark();
                    }
                    panic!(
                        "simulation deadlock: {} task(s) blocked with no pending event",
                        st.live
                    );
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((tf, _)), Some(tn)) => tf <= tn,
            };
            if fixed_next {
                let (tf, seq) = next_fixed.expect("checked");
                st.fixed.pop();
                st.clock = tf.max(st.clock);
                let clock = st.clock;
                st.net.advance(clock);
                st.ready.push_back(seq);
            } else {
                let tn = next_flow.expect("checked");
                st.clock = tn.max(st.clock);
                let clock = st.clock;
                st.net.advance(clock);
                let mut done = st.net.take_completed();
                // Token order (registration order) for determinism.
                done.sort_unstable();
                st.ready.extend(done);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::NicSpec;
    use std::sync::Mutex as StdMutex;

    fn gate(nodes: usize, bps: f64) -> SimGate {
        SimGate::new(FlowNet::new(nodes, NicSpec::symmetric(bps)))
    }

    #[test]
    fn sleeps_interleave_in_time_order() {
        let g = gate(1, 100.0);
        let log = StdMutex::new(Vec::new());
        g.run(vec![
            Box::new(|| {
                g.sleep(SimDuration::from_millis(20));
                log.lock().unwrap().push(("late", g.now().as_millis()));
            }),
            Box::new(|| {
                g.sleep(SimDuration::from_millis(10));
                log.lock().unwrap().push(("early", g.now().as_millis()));
            }),
        ]);
        assert_eq!(log.into_inner().unwrap(), vec![("early", 10), ("late", 20)]);
        assert_eq!(g.now().as_millis(), 20);
    }

    #[test]
    fn equal_instants_release_in_registration_order() {
        let g = gate(1, 100.0);
        let log = StdMutex::new(Vec::new());
        let tasks: Vec<SimTask<'_>> = (0..5u32)
            .map(|i| {
                let (g, log) = (&g, &log);
                Box::new(move || {
                    g.sleep(SimDuration::from_millis(5));
                    log.lock().unwrap().push(i);
                }) as SimTask<'_>
            })
            .collect();
        g.run(tasks);
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn transfers_share_bandwidth_max_min() {
        // Two 100-byte transfers into the same sink (100 B/s): both finish
        // at t=2 s, not t=1 s — contention observed by synchronous code.
        let g = gate(3, 100.0);
        let done = StdMutex::new(Vec::new());
        g.run(vec![
            Box::new(|| {
                let t = g.transfer(NodeId::new(0), NodeId::new(2), 100);
                done.lock().unwrap().push(t.as_secs_f64());
            }),
            Box::new(|| {
                let t = g.transfer(NodeId::new(1), NodeId::new(2), 100);
                done.lock().unwrap().push(t.as_secs_f64());
            }),
        ]);
        for t in done.into_inner().unwrap() {
            assert!((t - 2.0).abs() < 1e-6, "shared sink: {t}");
        }
        assert_eq!(g.flow_stats(), (2, 2));
    }

    #[test]
    fn late_transfer_slows_the_first_flow_down() {
        // A solo flow at full rate is joined halfway by a second one; the
        // first flow's completion moves out — the dynamic-completion case a
        // fixed wake-up cannot express.
        let g = gate(3, 100.0);
        let first_done = StdMutex::new(0.0f64);
        g.run(vec![
            Box::new(|| {
                let t = g.transfer(NodeId::new(0), NodeId::new(2), 100);
                *first_done.lock().unwrap() = t.as_secs_f64();
            }),
            Box::new(|| {
                g.sleep(SimDuration::from_millis(500));
                g.transfer(NodeId::new(1), NodeId::new(2), 100);
            }),
        ]);
        // 0.5 s at 100 B/s (50 B), then 50 B at 50 B/s = 1 s more.
        let t = first_done.into_inner().unwrap();
        assert!((t - 1.5).abs() < 1e-6, "first flow done at {t}");
    }

    #[test]
    fn sequential_runs_continue_the_clock() {
        let g = gate(1, 100.0);
        g.run(vec![Box::new(|| {
            g.sleep(SimDuration::from_secs(1));
        })]);
        assert_eq!(g.now().as_millis(), 1000);
        g.run(vec![Box::new(|| {
            g.sleep(SimDuration::from_secs(1));
        })]);
        assert_eq!(g.now().as_millis(), 2000);
    }

    #[test]
    fn sleep_until_the_past_is_a_yield() {
        let g = gate(1, 100.0);
        g.run(vec![Box::new(|| {
            g.sleep(SimDuration::from_millis(10));
            let t = g.sleep_until(SimTime::ZERO);
            assert_eq!(t.as_millis(), 10, "clamped to now");
        })]);
    }

    #[test]
    fn a_panicking_task_poisons_instead_of_deadlocking() {
        let g = gate(2, 100.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.run(vec![
                Box::new(|| {
                    g.sleep(SimDuration::from_millis(1));
                    panic!("task bug");
                }),
                Box::new(|| {
                    // Would otherwise park forever waiting for t=10 ms.
                    g.sleep(SimDuration::from_millis(10));
                }),
            ]);
        }));
        assert!(result.is_err(), "the panic must propagate out of run()");
    }

    #[test]
    fn deterministic_under_heavy_interleaving() {
        let run_once = || {
            let g = gate(8, 117.5);
            let log = StdMutex::new(Vec::new());
            let tasks: Vec<SimTask<'_>> = (0..32u64)
                .map(|i| {
                    let (g, log) = (&g, &log);
                    Box::new(move || {
                        g.sleep(SimDuration::from_micros(i * 37 % 113));
                        let t =
                            g.transfer(NodeId::new(i % 8), NodeId::new((i + 3) % 8), 500 + 17 * i);
                        g.sleep(SimDuration::from_micros(i % 5));
                        log.lock()
                            .unwrap()
                            .push((i, t.as_nanos(), g.now().as_nanos()));
                    }) as SimTask<'_>
                })
                .collect();
            g.run(tasks);
            log.into_inner().unwrap()
        };
        assert_eq!(run_once(), run_once());
    }
}
