//! The RPC server: hosts one service port behind a
//! `std::net::TcpListener`.
//!
//! One [`RpcServer`] serves exactly one port — a [`BlockStore`], a
//! [`MetaStore`], a [`VersionService`], a [`PlacementService`] or a
//! [`GcService`] — on its own listener, which is what lets a deployment
//! place data providers, the metadata DHT, the version manager and the
//! control-plane services on separate "nodes" (separate listeners,
//! separate thread groups), mirroring the paper's process decomposition
//! (§III-B).
//!
//! Concurrency model: per-connection *readers* feeding a bounded worker
//! pool. The accept loop runs on its own thread; each accepted connection
//! gets a reader thread that decodes frames and pushes them onto a
//! bounded queue served by N shared workers (both knobs surface on
//! `BlobSeerConfig` as `rpc_server_workers` / `rpc_server_queue_depth`).
//! Every response frame echoes the request id of the frame it answers and
//! may be written out of order, so one connection can carry many in-flight
//! requests — the muxed client depends on it. Known-parking calls
//! (`wait_revealed`) never enter the queue: the reader offloads them to a
//! dedicated thread, so a request that deliberately blocks for its whole
//! timeout cannot starve the worker pool. A full queue blocks only the
//! reader that hit it (per-connection backpressure), never a worker.
//!
//! Shutdown is graceful and deterministic: [`RpcServer::shutdown`] stops
//! the accept loop (waking it with a loopback connection), closes every
//! open connection (unblocking reader threads), lets the workers drain
//! the queue, and joins readers, workers and offload threads.

use crate::wire::{self, encode_response};
use blobseer_core::ports::{BlockStore, GcService, MetaStore, PlacementService, VersionService};
use blobseer_types::config::{DEFAULT_RPC_SERVER_QUEUE_DEPTH, DEFAULT_RPC_SERVER_WORKERS};
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::NodeId;
use blobseer_types::{BlobId, BlockId, Error, Result, Version};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The service a listener hosts.
#[derive(Clone)]
pub enum RpcService {
    /// A data-provider set (any [`BlockStore`] adapter).
    Block(Arc<dyn BlockStore>),
    /// A metadata DHT (any [`MetaStore`] adapter).
    Meta(Arc<dyn MetaStore>),
    /// A version manager (any [`VersionService`] adapter).
    Version(Arc<dyn VersionService>),
    /// A provider manager (any [`PlacementService`] adapter) — the
    /// control-plane authority for block placement and load accounting.
    Placement(Arc<dyn PlacementService>),
    /// A GC refcount service (any [`GcService`] adapter) — the
    /// control-plane authority for node refcounts and cascades.
    Gc(Arc<dyn GcService>),
}

impl RpcService {
    fn name(&self) -> &'static str {
        match self {
            RpcService::Block(_) => "block",
            RpcService::Meta(_) => "meta",
            RpcService::Version(_) => "version",
            RpcService::Placement(_) => "placement",
            RpcService::Gc(_) => "gc",
        }
    }
}

/// A running RPC server: one listener, one hosted service, one bounded
/// worker pool.
pub struct RpcServer {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// Concurrent-request tracker, shareable across every server of a
/// deployment: counts the requests currently between frame decode and
/// response write, and remembers the highest count ever seen. The high
/// watermark is the *structural* proof of client-side fan-out — a serial
/// client can never push it above 1, however fast it pipelines, because it
/// always waits for each response before sending the next batch.
#[derive(Debug, Default)]
pub struct InFlight {
    cur: AtomicU64,
    high: AtomicU64,
}

impl InFlight {
    /// Fresh tracker (wrap in an `Arc` to share across servers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests currently being served.
    pub fn current(&self) -> u64 {
        self.cur.load(Ordering::SeqCst)
    }

    /// Highest number of simultaneously in-flight requests ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.high.load(Ordering::SeqCst)
    }

    fn enter(self: &Arc<Self>) -> InFlightGuard {
        let now = self.cur.fetch_add(1, Ordering::SeqCst) + 1;
        self.high.fetch_max(now, Ordering::SeqCst);
        InFlightGuard(Arc::clone(self))
    }
}

/// RAII span of one tracked request; decrements on drop (after the
/// request was handled, just before its response frame is written — the
/// guard travels inside the [`Job`]).
struct InFlightGuard(Arc<InFlight>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.cur.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One decoded request waiting for a worker: where to write the answer
/// (the connection's shared write half), which request id to echo, and
/// the request body.
struct Job {
    writer: Arc<Mutex<TcpStream>>,
    req_id: u64,
    body: Vec<u8>,
    /// Holds the request in the deployment's [`InFlight`] tracker from
    /// frame decode until it has been handled (response about to be
    /// written).
    _track: Option<InFlightGuard>,
}

/// State shared between the accept loop, the readers, the workers and
/// `shutdown()`.
///
/// The registries are bounded by the number of *live* connections and
/// in-flight offloads, not by the totals ever seen: a reader removes its
/// own stream clone when its peer disconnects, and finished thread
/// handles are reaped on every accept / offload spawn — a long-running
/// server does not accumulate fds or join handles from churn.
struct Shared {
    /// Set once by `shutdown()`; every loop re-checks it after waking.
    stop: AtomicBool,
    /// Clones of the currently open streams (keyed by connection id), so
    /// shutdown can unblock reader threads by closing the sockets under
    /// them.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Dedicated threads for known-parking requests (`wait_revealed`).
    offloads: Mutex<Vec<JoinHandle<()>>>,
    /// The bounded request queue between readers and workers.
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    /// Deployment-wide in-flight tracker, if the booter wants the
    /// overlap watermark observed.
    in_flight: Option<Arc<InFlight>>,
    /// Request frames served (one per dispatched request, batched or not)
    /// — the server-side round-trip counter the batching tests read.
    frames: AtomicU64,
    /// Connections accepted over the server's lifetime (the shutdown
    /// wake-up self-connect is not counted). The mux tests read this to
    /// prove 64 concurrent requests ride a handful of sockets.
    accepted: AtomicU64,
}

impl RpcServer {
    /// Binds a loopback listener on an ephemeral port and starts serving
    /// `service` on it with the default worker-pool shape.
    pub fn spawn(service: RpcService) -> io::Result<Self> {
        Self::spawn_with(
            service,
            DEFAULT_RPC_SERVER_WORKERS,
            DEFAULT_RPC_SERVER_QUEUE_DEPTH,
        )
    }

    /// [`Self::spawn`] with an explicit worker-pool shape: `workers`
    /// dispatcher threads draining a queue of at most `queue_depth`
    /// decoded requests.
    pub fn spawn_with(service: RpcService, workers: usize, queue_depth: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Self::serve(listener, service, workers, queue_depth, None)
    }

    /// [`Self::spawn_with`] with a shared [`InFlight`] tracker: every
    /// request this server decodes is counted in `tracker` until its
    /// response is written. Boot all servers of a deployment with one
    /// tracker and its high watermark proves (or disproves) client-side
    /// request overlap.
    pub fn spawn_tracked(
        service: RpcService,
        workers: usize,
        queue_depth: usize,
        tracker: Arc<InFlight>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Self::serve(listener, service, workers, queue_depth, Some(tracker))
    }

    /// [`Self::spawn_with`] on an explicit address instead of an
    /// ephemeral port — what lets a test restart a server on the port its
    /// clients already hold muxed connections to.
    pub fn spawn_at(
        addr: SocketAddr,
        service: RpcService,
        workers: usize,
        queue_depth: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Self::serve(listener, service, workers, queue_depth, None)
    }

    fn serve(
        listener: TcpListener,
        service: RpcService,
        workers: usize,
        queue_depth: usize,
        in_flight: Option<Arc<InFlight>>,
    ) -> io::Result<Self> {
        assert!(workers >= 1, "a server needs at least one worker");
        assert!(queue_depth >= 1, "the request queue needs some depth");
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::named(HashMap::new(), "rpc.server.conns"),
            handlers: Mutex::named(Vec::new(), "rpc.server.handlers"),
            offloads: Mutex::named(Vec::new(), "rpc.server.offloads"),
            queue: Mutex::named(VecDeque::new(), "rpc.server.queue"),
            not_empty: Condvar::named("rpc.server.not_empty"),
            not_full: Condvar::named("rpc.server.not_full"),
            queue_cap: queue_depth,
            in_flight,
            frames: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        });
        let mut worker_threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let service = service.clone();
            let shared = Arc::clone(&shared);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("rpc-worker-{i}"))
                    .spawn(move || worker_loop(service, shared))?,
            );
        }
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let name = format!("rpc-{}-{}", service.name(), addr.port());
            std::thread::Builder::new()
                .name(name)
                .spawn(move || accept_loop(listener, service, shared))?
        };
        Ok(Self {
            addr,
            accept_thread: Some(accept_thread),
            workers: worker_threads,
            shared,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request frames served so far (every dispatched request counts one,
    /// whether it carried a single operation or a whole batch). With the
    /// vectored port API this grows with O(levels + providers) per client
    /// operation, not O(blocks + tree nodes).
    pub fn frames_served(&self) -> u64 {
        self.shared.frames.load(Ordering::Relaxed)
    }

    /// Connections this server has accepted over its lifetime. With a
    /// muxed client this stays at the client's connection budget no
    /// matter how many requests are in flight.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every open connection, drains the queue,
    /// and joins all threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop: it is blocked in accept(); a throwaway
        // connection makes it re-check the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock reader reads by closing the sockets under them.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Wake queue waiters *while holding the queue lock*: any thread
        // not yet waiting still has the stop re-check ahead of it, so no
        // wake-up can be lost.
        {
            let _q = self.shared.queue.lock();
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        let handlers: Vec<_> = self.shared.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let offloads: Vec<_> = self.shared.offloads.lock().drain(..).collect();
        for h in offloads {
            let _ = h.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, service: RpcService, shared: Arc<Shared>) {
    let mut next_conn_id = 0u64;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return; // the wake-up connection, or a late client
        }
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        // Reap reader threads whose connections already ended (dropping
        // a finished JoinHandle just releases it).
        shared.handlers.lock().retain(|h| !h.is_finished());
        let _ = stream.set_nodelay(true);
        // The reader keeps the stream; workers answer through a cloned
        // write half behind a mutex (responses can interleave across
        // workers, never within a frame).
        let writer = match stream.try_clone() {
            Ok(w) => Arc::new(Mutex::named(w, "rpc.server.writer")),
            Err(_) => continue,
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        let service = service.clone();
        let reader_shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("rpc-conn".into())
            .spawn(move || {
                connection_loop(stream, writer, service, &reader_shared);
                // Deregister on the way out so the fd closes with the
                // peer, not at server shutdown.
                reader_shared.conns.lock().remove(&conn_id);
            })
        {
            shared.handlers.lock().push(handle);
        }
    }
}

/// Reads one connection's frames until EOF or a transport error, routing
/// each request to the worker queue — or to a dedicated offload thread
/// for known-parking calls. Service errors are *answers* (encoded in the
/// response envelope), never reasons to drop the connection.
fn connection_loop(
    mut stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    service: RpcService,
    shared: &Arc<Shared>,
) {
    loop {
        let (req_id, body) = match wire::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return, // peer gone or socket closed
        };
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            writer: Arc::clone(&writer),
            req_id,
            body,
            _track: shared.in_flight.as_ref().map(|t| t.enter()),
        };
        if parks_a_thread(&service, &job.body) {
            offload(&service, shared, job);
            continue;
        }
        // Enqueue with backpressure: a full queue parks this reader (and
        // only this reader) until a worker frees a slot.
        let mut q = shared.queue.lock();
        while q.len() >= shared.queue_cap {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            shared.not_full.wait(&mut q);
        }
        q.push_back(job);
        drop(q);
        shared.not_empty.notify_one();
    }
}

/// Whether a request is one that deliberately blocks server-side for up
/// to its whole timeout (`wait_revealed`). Such requests must never
/// occupy a pool worker.
fn parks_a_thread(service: &RpcService, body: &[u8]) -> bool {
    matches!(service, RpcService::Version(_)) && body.first() == Some(&version_tag::WAIT_REVEALED)
}

/// Serves a known-parking request on its own thread. If the thread cannot
/// be spawned (resource exhaustion) the request is dropped; its client
/// sees the outcome when the connection eventually closes.
fn offload(service: &RpcService, shared: &Arc<Shared>, job: Job) {
    shared.offloads.lock().retain(|h| !h.is_finished());
    let service = service.clone();
    if let Ok(handle) = std::thread::Builder::new()
        .name("rpc-wait".into())
        .spawn(move || serve_job(&service, job))
    {
        shared.offloads.lock().push(handle);
    }
}

/// A worker: drains the queue until shutdown, then exits once it is empty
/// (queued requests are served even during shutdown — their responses
/// simply fail to write if the connection is already gone).
fn worker_loop(service: RpcService, shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    shared.not_full.notify_one();
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                shared.not_empty.wait(&mut q);
            }
        };
        match job {
            Some(job) => serve_job(&service, job),
            None => return,
        }
    }
}

/// Dispatches one request and writes its response frame, echoing the
/// request id so the client's demux can route it.
fn serve_job(service: &RpcService, job: Job) {
    let Job {
        writer,
        req_id,
        body,
        _track: track,
    } = job;
    let response = dispatch(service, &body);
    // End the tracked span before the response leaves: once the frame is
    // on the wire the client may already be issuing its next request to
    // another server, and a serial client overlapping with our own
    // write-back would read as fan-out in the watermark.
    drop(track);
    let _ = wire::write_frame(&mut *writer.lock(), req_id, &response);
}

fn dispatch(service: &RpcService, body: &[u8]) -> Vec<u8> {
    let result = match service {
        RpcService::Block(store) => handle_block(&**store, body),
        RpcService::Meta(store) => handle_meta(&**store, body),
        RpcService::Version(vm) => handle_version(&**vm, body),
        RpcService::Placement(pm) => handle_placement(&**pm, body),
        RpcService::Gc(gc) => handle_gc(&**gc, body),
    };
    encode_response(result)
}

/// Validates a provider index against the hosted store — a malformed
/// request must answer with an error, not panic the handler.
fn check_provider(store: &dyn BlockStore, provider: u64) -> Result<usize> {
    let p = provider as usize;
    if p >= store.len() {
        return Err(Error::Internal(format!(
            "provider index {p} out of range (store has {})",
            store.len()
        )));
    }
    Ok(p)
}

/// Method tags of the block service (mirrored by `client::RpcBlockStore`).
pub(crate) mod block_tag {
    pub const DESCRIBE: u8 = 0;
    pub const PUT: u8 = 1;
    pub const GET: u8 = 2;
    pub const CONTAINS: u8 = 3;
    pub const DELETE: u8 = 4;
    pub const BLOCK_COUNT: u8 = 5;
    pub const BYTES_STORED: u8 = 6;
    pub const OP_COUNTS: u8 = 7;
    pub const PUT_MANY: u8 = 8;
    pub const GET_MANY: u8 = 9;
    pub const DELETE_MANY: u8 = 10;
}

fn handle_block(store: &dyn BlockStore, body: &[u8]) -> Result<WireWriter> {
    let mut r = WireReader::new(body);
    let tag = r.get_u8()?;
    let mut w = WireWriter::new();
    match tag {
        block_tag::DESCRIBE => {
            r.finish()?;
            w.put_u64(store.len() as u64);
            for i in 0..store.len() {
                w.put_u64(store.node(i).raw());
            }
        }
        block_tag::PUT => {
            let p = r.get_u64()?;
            let id = BlockId::new(r.get_u64()?);
            let data = Bytes::copy_from_slice(r.get_slice()?);
            r.finish()?;
            store.put(check_provider(store, p)?, id, data)?;
        }
        block_tag::GET => {
            let p = r.get_u64()?;
            let id = BlockId::new(r.get_u64()?);
            r.finish()?;
            let data = store.get(check_provider(store, p)?, id)?;
            w.put_slice(&data);
        }
        block_tag::CONTAINS => {
            let p = r.get_u64()?;
            let id = BlockId::new(r.get_u64()?);
            r.finish()?;
            w.put_bool(store.contains(check_provider(store, p)?, id));
        }
        block_tag::DELETE => {
            let p = r.get_u64()?;
            let id = BlockId::new(r.get_u64()?);
            r.finish()?;
            w.put_u64(store.delete(check_provider(store, p)?, id)?);
        }
        block_tag::PUT_MANY => {
            let p = r.get_u64()?;
            let n = r.get_u64()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let id = BlockId::new(r.get_u64()?);
                let data = Bytes::copy_from_slice(r.get_slice()?);
                items.push((id, data));
            }
            r.finish()?;
            let results = store.put_many(check_provider(store, p)?, &items);
            w.put_u64(results.len() as u64);
            for result in &results {
                wire::put_item_status(&mut w, result);
            }
        }
        block_tag::GET_MANY => {
            let p = r.get_u64()?;
            let n = r.get_u64()? as usize;
            let mut ids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ids.push(BlockId::new(r.get_u64()?));
            }
            r.finish()?;
            let results = store.get_many(check_provider(store, p)?, &ids);
            w.put_u64(results.len() as u64);
            // Encode items while they fit the batch budget — counting the
            // payload *about to be appended*, or a batch of large blocks
            // could overshoot the budget by one block and assemble a frame
            // past MAX_FRAME_LEN that the client must reject. The tail is
            // marked DEFERRED for the client to re-request. The first item
            // always encodes (whatever its size, matching the single-get
            // frame envelope), so a client loop over deferrals is
            // guaranteed progress.
            let mut included_any = false;
            for result in &results {
                let projected = w.as_slice().len() + result.as_ref().map_or(0, |d| d.len());
                if included_any && projected > wire::BATCH_BYTE_BUDGET {
                    w.put_u8(wire::batch_status::DEFERRED);
                    continue;
                }
                wire::put_item_status(&mut w, result);
                if let Ok(data) = result {
                    w.put_slice(data);
                }
                included_any = true;
            }
        }
        block_tag::DELETE_MANY => {
            let p = r.get_u64()?;
            let n = r.get_u64()? as usize;
            let mut ids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ids.push(BlockId::new(r.get_u64()?));
            }
            r.finish()?;
            let results = store.delete_many(check_provider(store, p)?, &ids);
            w.put_u64(results.len() as u64);
            for result in &results {
                wire::put_item_status(&mut w, result);
                if let Ok(freed) = result {
                    w.put_u64(*freed);
                }
            }
        }
        block_tag::BLOCK_COUNT => {
            let p = r.get_u64()?;
            r.finish()?;
            w.put_u64(store.block_count(check_provider(store, p)?) as u64);
        }
        block_tag::BYTES_STORED => {
            let p = r.get_u64()?;
            r.finish()?;
            w.put_u64(store.bytes_stored(check_provider(store, p)?));
        }
        block_tag::OP_COUNTS => {
            let p = r.get_u64()?;
            r.finish()?;
            let (puts, gets) = store.op_counts(check_provider(store, p)?);
            w.put_u64(puts);
            w.put_u64(gets);
        }
        t => return Err(Error::Transport(format!("unknown block method tag {t}"))),
    }
    Ok(w)
}

/// Method tags of the meta service (mirrored by `client::RpcMetaStore`).
pub(crate) mod meta_tag {
    pub const PUT: u8 = 0;
    pub const GET: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const SHARD_COUNT: u8 = 3;
    pub const NODE_COUNT: u8 = 4;
    pub const SHARD_STATS: u8 = 5;
    pub const CRASH_SHARD: u8 = 6;
    pub const PUT_MANY: u8 = 7;
    pub const GET_MANY: u8 = 8;
    pub const DELETE_MANY: u8 = 9;
}

fn handle_meta(store: &dyn MetaStore, body: &[u8]) -> Result<WireWriter> {
    let mut r = WireReader::new(body);
    let tag = r.get_u8()?;
    let mut w = WireWriter::new();
    match tag {
        meta_tag::PUT => {
            let key = wire::get_node_key(&mut r)?;
            let node = wire::get_tree_node(&mut r)?;
            r.finish()?;
            store.put(key, node)?;
        }
        meta_tag::GET => {
            let key = wire::get_node_key(&mut r)?;
            r.finish()?;
            let node = store.get(&key)?;
            wire::put_tree_node(&mut w, &node);
        }
        meta_tag::DELETE => {
            let key = wire::get_node_key(&mut r)?;
            r.finish()?;
            w.put_bool(store.delete(&key));
        }
        meta_tag::PUT_MANY => {
            let n = r.get_u64()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let key = wire::get_node_key(&mut r)?;
                let node = wire::get_tree_node(&mut r)?;
                items.push((key, node));
            }
            r.finish()?;
            let results = store.put_many(&items);
            w.put_u64(results.len() as u64);
            for result in &results {
                wire::put_item_status(&mut w, result);
            }
        }
        meta_tag::GET_MANY => {
            let n = r.get_u64()? as usize;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                keys.push(wire::get_node_key(&mut r)?);
            }
            r.finish()?;
            let results = store.get_many(&keys);
            w.put_u64(results.len() as u64);
            for result in &results {
                wire::put_item_status(&mut w, result);
                if let Ok(node) = result {
                    wire::put_tree_node(&mut w, node);
                }
            }
        }
        meta_tag::DELETE_MANY => {
            let n = r.get_u64()? as usize;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                keys.push(wire::get_node_key(&mut r)?);
            }
            r.finish()?;
            let results = store.delete_many(&keys);
            w.put_u64(results.len() as u64);
            for result in &results {
                wire::put_item_status(&mut w, result);
                if let Ok(existed) = result {
                    w.put_bool(*existed);
                }
            }
        }
        meta_tag::SHARD_COUNT => {
            r.finish()?;
            w.put_u64(store.shard_count() as u64);
        }
        meta_tag::NODE_COUNT => {
            r.finish()?;
            w.put_u64(store.node_count() as u64);
        }
        meta_tag::SHARD_STATS => {
            r.finish()?;
            let stats = store.shard_stats();
            w.put_u64(stats.len() as u64);
            for (nodes, puts, gets) in stats {
                w.put_u64(nodes as u64);
                w.put_u64(puts);
                w.put_u64(gets);
            }
        }
        meta_tag::CRASH_SHARD => {
            let shard = r.get_u64()? as usize;
            r.finish()?;
            if shard >= store.shard_count() {
                return Err(Error::Internal(format!(
                    "shard index {shard} out of range (dht has {})",
                    store.shard_count()
                )));
            }
            store.crash_shard(shard);
        }
        t => return Err(Error::Transport(format!("unknown meta method tag {t}"))),
    }
    Ok(w)
}

/// Method tags of the version service (mirrored by
/// `client::RpcVersionService`).
pub(crate) mod version_tag {
    pub const BLOCK_SIZE: u8 = 0;
    pub const CREATE_BLOB: u8 = 1;
    pub const BRANCH: u8 = 2;
    pub const ASSIGN: u8 = 3;
    pub const COMMIT: u8 = 4;
    pub const LATEST: u8 = 5;
    pub const SNAPSHOT_INFO: u8 = 6;
    pub const CHAIN: u8 = 7;
    pub const WAIT_REVEALED: u8 = 8;
    pub const PENDING_VERSIONS: u8 = 9;
    pub const DELETE_BLOB: u8 = 10;
    pub const COLLECT_BEFORE: u8 = 11;
}

fn handle_version(vm: &dyn VersionService, body: &[u8]) -> Result<WireWriter> {
    let mut r = WireReader::new(body);
    let tag = r.get_u8()?;
    let mut w = WireWriter::new();
    match tag {
        version_tag::BLOCK_SIZE => {
            r.finish()?;
            w.put_u64(vm.block_size());
        }
        version_tag::CREATE_BLOB => {
            r.finish()?;
            w.put_u64(vm.create_blob()?.raw());
        }
        version_tag::BRANCH => {
            let parent = BlobId::new(r.get_u64()?);
            let at = Version::new(r.get_u64()?);
            r.finish()?;
            w.put_u64(vm.branch(parent, at)?.raw());
        }
        version_tag::ASSIGN => {
            let blob = BlobId::new(r.get_u64()?);
            let intent = wire::get_write_intent(&mut r)?;
            r.finish()?;
            let ticket = vm.assign(blob, intent)?;
            wire::put_write_ticket(&mut w, &ticket);
        }
        version_tag::COMMIT => {
            let blob = BlobId::new(r.get_u64()?);
            let version = Version::new(r.get_u64()?);
            r.finish()?;
            vm.commit(blob, version)?;
        }
        version_tag::LATEST => {
            let blob = BlobId::new(r.get_u64()?);
            r.finish()?;
            let (v, size) = vm.latest(blob)?;
            w.put_u64(v.raw());
            w.put_u64(size);
        }
        version_tag::SNAPSHOT_INFO => {
            let blob = BlobId::new(r.get_u64()?);
            let version = Version::new(r.get_u64()?);
            r.finish()?;
            let info = vm.snapshot_info(blob, version)?;
            wire::put_snapshot_info(&mut w, &info);
        }
        version_tag::CHAIN => {
            let blob = BlobId::new(r.get_u64()?);
            r.finish()?;
            let chain = vm.chain(blob)?;
            wire::put_log_chain(&mut w, &chain);
        }
        version_tag::WAIT_REVEALED => {
            let blob = BlobId::new(r.get_u64()?);
            let version = Version::new(r.get_u64()?);
            let timeout = wire::get_duration(&mut r)?;
            r.finish()?;
            // Runs on a dedicated offload thread — the reader never
            // queues this tag (see `parks_a_thread`), so a parked wait
            // holds no worker slot and other requests on the same
            // connection keep flowing.
            vm.wait_revealed(blob, version, timeout)?;
        }
        version_tag::PENDING_VERSIONS => {
            let blob = BlobId::new(r.get_u64()?);
            r.finish()?;
            let versions = vm.pending_versions(blob)?;
            wire::put_versions(&mut w, &versions);
        }
        version_tag::DELETE_BLOB => {
            let blob = BlobId::new(r.get_u64()?);
            r.finish()?;
            let roots = vm.delete_blob(blob)?;
            wire::put_node_keys(&mut w, &roots);
        }
        version_tag::COLLECT_BEFORE => {
            let blob = BlobId::new(r.get_u64()?);
            let keep_from = Version::new(r.get_u64()?);
            r.finish()?;
            let roots = vm.collect_before(blob, keep_from)?;
            wire::put_node_keys(&mut w, &roots);
        }
        t => return Err(Error::Transport(format!("unknown version method tag {t}"))),
    }
    Ok(w)
}

/// Method tags of the placement service (mirrored by
/// `client::RpcPlacementService`).
pub(crate) mod placement_tag {
    pub const PROVIDER_COUNT: u8 = 0;
    pub const ALLOCATE: u8 = 1;
    pub const RELEASE_MANY: u8 = 2;
    pub const LOAD_VECTOR: u8 = 3;
    pub const REGISTER_PROVIDER: u8 = 4;
    pub const HEARTBEAT: u8 = 5;
}

fn handle_placement(pm: &dyn PlacementService, body: &[u8]) -> Result<WireWriter> {
    let mut r = WireReader::new(body);
    let tag = r.get_u8()?;
    let mut w = WireWriter::new();
    match tag {
        placement_tag::PROVIDER_COUNT => {
            r.finish()?;
            w.put_u64(pm.provider_count() as u64);
        }
        placement_tag::ALLOCATE => {
            let n_blocks = r.get_u64()? as usize;
            let replication = r.get_u64()? as usize;
            r.finish()?;
            let allocs = pm.allocate(n_blocks, replication)?;
            w.put_u64(allocs.len() as u64);
            for a in &allocs {
                wire::put_block_allocation(&mut w, a);
            }
        }
        placement_tag::RELEASE_MANY => {
            let n = r.get_u64()? as usize;
            let mut providers = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                providers.push(r.get_u64()? as usize);
            }
            r.finish()?;
            pm.release_many(&providers)?;
        }
        placement_tag::LOAD_VECTOR => {
            r.finish()?;
            let loads = pm.load_vector()?;
            w.put_u64(loads.len() as u64);
            for l in loads {
                w.put_u64(l);
            }
        }
        placement_tag::REGISTER_PROVIDER => {
            let node = NodeId::new(r.get_u64()?);
            r.finish()?;
            w.put_u64(pm.register_provider(node)? as u64);
        }
        placement_tag::HEARTBEAT => {
            let provider = r.get_u64()? as usize;
            r.finish()?;
            w.put_u64(pm.heartbeat(provider)?);
        }
        t => {
            return Err(Error::Transport(format!(
                "unknown placement method tag {t}"
            )))
        }
    }
    Ok(w)
}

/// Method tags of the GC service (mirrored by `client::RpcGcService`).
pub(crate) mod gc_tag {
    pub const INC_NODES: u8 = 0;
    pub const RELEASE_ROOTS: u8 = 1;
    pub const NODE_COUNT: u8 = 2;
    pub const TRACKED_NODES: u8 = 3;
}

fn handle_gc(gc: &dyn GcService, body: &[u8]) -> Result<WireWriter> {
    let mut r = WireReader::new(body);
    let tag = r.get_u8()?;
    let mut w = WireWriter::new();
    match tag {
        gc_tag::INC_NODES => {
            let keys = wire::get_node_keys(&mut r)?;
            r.finish()?;
            gc.inc_nodes(&keys)?;
        }
        gc_tag::RELEASE_ROOTS => {
            let roots = wire::get_node_keys(&mut r)?;
            r.finish()?;
            let report = gc.release_roots(&roots)?;
            wire::put_gc_report(&mut w, &report);
        }
        gc_tag::NODE_COUNT => {
            let key = wire::get_node_key(&mut r)?;
            r.finish()?;
            w.put_u64(gc.node_count(&key)?);
        }
        gc_tag::TRACKED_NODES => {
            r.finish()?;
            w.put_u64(gc.tracked_nodes()? as u64);
        }
        t => return Err(Error::Transport(format!("unknown gc method tag {t}"))),
    }
    Ok(w)
}
