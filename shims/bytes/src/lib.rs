//! Minimal, API-compatible stand-in for the `bytes` crate, vendored because
//! the build environment has no crates.io access.
//!
//! [`Bytes`] is a cheaply-clonable, immutable byte buffer: an
//! `Arc<[u8]>` plus a `(start, end)` window, so [`Bytes::slice`] and
//! [`Clone`] are O(1) and never copy payloads — the property
//! `blobseer-core`'s block store depends on ("get" hands back a refcount
//! bump, not a memcpy). [`BytesMut`] is a growable buffer that
//! [`BytesMut::freeze`]s into a `Bytes` without copying.
#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, sliceable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` viewing a static slice (copied once into the Arc;
    /// the real crate borrows, but callers only rely on the signature).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-window. Panics if the range is out of bounds,
    /// matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the viewed window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Resizes, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Splits off and returns the entire filled portion, leaving `self`
    /// empty (the `split()` form the streaming writer uses).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert!(Arc::ptr_eq(&b.data, &s2.data));
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.resize(4, 0);
        assert_eq!(&m[..], b"ab\0\0");
        let frozen = m.freeze();
        assert_eq!(frozen, b"ab\0\0"[..]);
    }

    #[test]
    fn split_drains_writer() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"chunk");
        let taken = m.split().freeze();
        assert_eq!(&taken[..], b"chunk");
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
