//! Pure tree-shape arithmetic, shared with the figure-scale experiment
//! models.
//!
//! The discrete-event simulator never builds real trees for 16 GB files —
//! it only needs to know *how many* metadata nodes a write creates (that
//! many DHT puts) and how many a read visits (that many DHT gets). These
//! functions compute exactly the counts the real implementation in
//! `meta::tree` produces; a test in `tests/` cross-checks them against the
//! live engine so the two can never drift.

use super::key::{BlockRange, Pos};
use super::log::LogEntry;

/// Number of tree levels for a capacity of `cap` blocks (`cap` ≥ 1, power
/// of two): depth of the root above the leaves.
pub fn tree_depth(cap: u64) -> u32 {
    debug_assert!(cap.is_power_of_two());
    cap.trailing_zeros()
}

/// Number of positions at level `len` (node span, power of two) that
/// intersect `r`.
#[inline]
fn intersecting_at_level(len: u64, r: &BlockRange) -> u64 {
    if r.is_empty() {
        return 0;
    }
    (r.end - 1) / len - r.start / len + 1
}

/// Number of metadata nodes the write described by `entry` materializes —
/// exactly the number `TreeStore::publish_write` stores in the DHT.
pub fn nodes_created(entry: &LogEntry) -> u64 {
    if entry.blocks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut len = 1;
    while len <= entry.cap_after {
        // Positions at this level intersecting the written range...
        count += intersecting_at_level(len, &entry.blocks);
        // ...plus the spine node (0, len), if it exists at this level and
        // was not already counted as intersecting.
        if entry.cap_before > 0 && len > entry.cap_before {
            let spine = Pos::new(0, len);
            if !spine.intersects(&entry.blocks) {
                count += 1;
            }
        }
        len *= 2;
    }
    count
}

/// Number of tree nodes a read of `query` visits when descending a tree of
/// capacity `cap` — exactly the number of DHT gets `TreeStore::locate`
/// issues when no leaf is an alias and no hole prunes the walk (the
/// worst/common case for fully-written files).
pub fn nodes_visited(cap: u64, query: BlockRange) -> u64 {
    if query.is_empty() || cap == 0 {
        return 0;
    }
    debug_assert!(query.end <= cap);
    let mut count = 0;
    let mut len = 1;
    while len <= cap {
        count += intersecting_at_level(len, &query);
        len *= 2;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::Version;

    fn entry(blocks: (u64, u64), cap_before: u64, cap_after: u64) -> LogEntry {
        LogEntry {
            version: Version::new(1),
            blocks: BlockRange::new(blocks.0, blocks.1),
            cap_before,
            cap_after,
            size_after: blocks.1 * 64,
        }
    }

    #[test]
    fn figure_1_counts() {
        // Fig. 1(a): append 4 blocks to empty → 4 leaves + 2 + 1 = 7 nodes.
        assert_eq!(nodes_created(&entry((0, 4), 0, 4)), 7);
        // Fig. 1(b): overwrite first two blocks → 2 leaves + (0,2) + root = 4.
        assert_eq!(nodes_created(&entry((0, 2), 4, 4)), 4);
        // Fig. 1(c): append one block, cap 4 → 8 → leaf + (4,2) + (4,4) +
        // new root = 4.
        assert_eq!(nodes_created(&entry((4, 5), 4, 8)), 4);
    }

    #[test]
    fn single_block_write_costs_depth_plus_one() {
        // Overwrite of one block in a big tree: path to root.
        assert_eq!(
            nodes_created(&entry((5, 6), 256, 256)),
            tree_depth(256) as u64 + 1
        );
    }

    #[test]
    fn spine_counted_when_append_does_not_touch_it() {
        // Write blocks [8,9) while cap was 2: path (8,1),(8,2),(8,4),(8,8)
        // plus root (0,16) plus spine (0,4),(0,8).
        let e = entry((8, 9), 2, 16);
        assert_eq!(nodes_created(&e), 7);
    }

    #[test]
    fn full_tree_visit() {
        // Reading all of a 4-block file: 4 + 2 + 1 nodes.
        assert_eq!(nodes_visited(4, BlockRange::new(0, 4)), 7);
        // One block from an 8-block file: root→leaf path = 4 nodes.
        assert_eq!(nodes_visited(8, BlockRange::new(3, 4)), 4);
        // Empty query.
        assert_eq!(nodes_visited(8, BlockRange::new(3, 3)), 0);
    }

    #[test]
    fn depth() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(1024), 10);
    }
}
