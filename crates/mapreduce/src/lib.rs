//! `mapreduce` — a Hadoop-style Map/Reduce engine over the shared
//! [`dfs::FileSystem`] API (§II-B).
//!
//! A single [`engine::JobTracker`] schedules map and reduce tasks onto
//! [`engine::TaskTracker`]s (one per node, two slots each, exactly like the
//! paper's deployment where tasktrackers are co-deployed with storage
//! nodes, §V-G). Scheduling is locality-aware: map tasks prefer the node
//! holding their input block, and the engine reports local vs remote map
//! counts — the quantity the storage layer's placement quality controls.
//!
//! Because the engine only sees `dyn FileSystem`, the same job binaries run
//! on BSFS and on the HDFS baseline, reproducing the paper's methodology
//! ("Hadoop Map/Reduce applications run out-of-the-box", §V-B).
//!
//! Shipping applications (§V-G): [`apps::RandomTextWriter`] (map-only,
//! massive parallel writes), [`apps::DistributedGrep`] (concurrent reads of
//! a shared file), and [`apps::WordCount`].
#![forbid(unsafe_code)]

pub mod apps;
pub mod engine;
pub mod job;
pub mod textgen;

pub use engine::{JobTracker, TaskTracker};
pub use job::{Emit, InputSpec, InputSplit, JobReport, JobSpec, Mapper, Reducer};
pub use textgen::TextGen;
