//! The write path: data phase, version assignment, metadata publish, commit
//! (§III-D), plus the writer-failure repair hook (§VI-B).

use crate::meta::node::BlockDescriptor;
use crate::ports::{ProtocolOp, ProtocolPhase};
use crate::stats::EngineStats;
use crate::version_manager::{WriteIntent, WriteTicket};
use blobseer_types::{BlobId, BlockId, Error, Result, Version};
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;
use std::sync::Arc;

use super::BlobClient;

/// A payload extended to block boundaries, ready for the data phase.
pub(crate) struct MergedPayload {
    pub(crate) start: u64,
    pub(crate) payload: Bytes,
}

/// Appends `item` to the group keyed by `key`, creating the group on first
/// sight. Groups keep first-appearance order and items keep insertion
/// order, so batch contents are deterministic — the shared grouping step
/// behind every per-provider vectored call on the client paths.
pub(crate) fn push_grouped<T>(groups: &mut Vec<(usize, Vec<T>)>, key: usize, item: T) {
    match groups.iter_mut().find(|(k, _)| *k == key) {
        Some((_, items)) => items.push(item),
        None => groups.push((key, vec![item])),
    }
}

impl BlobClient {
    /// Writes `data` at `offset`, producing a new snapshot. Returns its
    /// version (revealed once all lower versions commit).
    pub fn write(&self, blob: BlobId, offset: u64, data: &[u8]) -> Result<Version> {
        if data.is_empty() {
            return Err(Error::WriteAborted(
                "zero-length writes are rejected".into(),
            ));
        }
        let bs = self.sys.cfg.block_size;
        // Overflow-safe, mirroring the read path's check_bounds: a huge
        // offset must fail cleanly instead of wrapping (release) or
        // panicking on add/mul-overflow (debug) inside the geometry math.
        // The *block-rounded* end must fit too — the write's last block
        // would otherwise extend past the addressable range.
        // merge_boundaries re-checks defensively (it has other callers),
        // but rejecting here keeps the failure ahead of the Start
        // observation and the version-manager lookup: no trace left.
        let rounded_end = offset
            .checked_add(data.len() as u64)
            .and_then(|end| end.checked_next_multiple_of(bs));
        if rounded_end.is_none() {
            return Err(Error::WriteAborted(format!(
                "write range overflows: offset {offset} + {} bytes",
                data.len()
            )));
        }
        self.observe(ProtocolOp::Write, ProtocolPhase::Start);
        // Read-modify-write alignment against the latest revealed snapshot
        // (see module docs on block-granularity semantics). One lookup
        // pins the snapshot used for geometry and both boundary reads.
        let (revealed, base_size) = self.sys.vm.latest(blob)?;
        let merged = self.merge_boundaries(blob, offset, data, base_size, (revealed, base_size))?;
        let first_block = merged.start / bs;
        let leaves = self.store_blocks(merged.payload, first_block)?;
        self.observe(ProtocolOp::Write, ProtocolPhase::DataDone);
        let ticket = match self.sys.vm.assign(
            blob,
            WriteIntent::Write {
                offset,
                size: data.len() as u64,
            },
        ) {
            Ok(t) => t,
            Err(e) => {
                // No version exists, so the stored blocks can never be
                // referenced: undo the data phase or the orphans would skew
                // the provider manager's load accounting forever.
                self.release_stored(&leaves);
                return Err(e);
            }
        };
        self.observe(ProtocolOp::Write, ProtocolPhase::VersionAssigned);
        self.publish_and_commit(ProtocolOp::Write, &ticket, leaves)?;
        Ok(ticket.version)
    }

    /// Simulates a writer crashing right after version assignment, then
    /// repairs the hole so the reveal pipeline does not stall: the assigned
    /// version republishes the previous snapshot's content over the
    /// intended range (zeros where it extended the BLOB). Returns the
    /// repaired version.
    ///
    /// This is the fault-injection hook behind the fault-tolerance tests;
    /// the paper leaves writer failure to "minimal mechanisms" (§VI-B).
    pub fn simulate_failed_write(&self, blob: BlobId, intent: WriteIntent) -> Result<Version> {
        let ticket = self.sys.vm.assign(blob, intent)?;
        // The writer dies here: no data, no metadata. Repair:
        self.repair_aborted(&ticket)?;
        Ok(ticket.version)
    }

    /// Repairs an assigned-but-failed write (publishes alias metadata and
    /// commits). Public so integration tests can drive the two halves
    /// separately.
    pub fn repair_aborted(&self, ticket: &WriteTicket) -> Result<()> {
        let tree = self.sys.tree();
        let root = tree.publish_repair(ticket.blob, &ticket.entry, &ticket.chain)?;
        tree.register_root(root)?;
        EngineStats::add(&self.sys.stats.writes_aborted, 1);
        self.sys.vm.commit(ticket.blob, ticket.version)
    }

    /// Extends `data` to block boundaries by merging with the base snapshot
    /// content (or zeros where the base is shorter).
    ///
    /// `base_size` is the size of the *preceding* snapshot (which may still
    /// be in flight for unaligned appends); boundary content is read from
    /// one **pinned revealed** snapshot — the only kind readers may access
    /// (§III-A.5) — passed by the caller as `revealed = (version, size)`
    /// from the lookup it already performed. Pinning matters: reading
    /// "latest" twice could straddle a concurrent reveal and merge a
    /// boundary block from two different snapshots — a state no snapshot
    /// ever held. The gap up to `base_size` is zero-filled; this is the
    /// block-granularity conflict window documented in the module docs.
    pub(crate) fn merge_boundaries(
        &self,
        blob: BlobId,
        offset: u64,
        data: &[u8],
        base_size: u64,
        revealed: (Version, u64),
    ) -> Result<MergedPayload> {
        let bs = self.sys.cfg.block_size;
        let (pin, revealed_size) = revealed;
        let readable = revealed_size.min(base_size);
        let overflow = || Error::WriteAborted("write range overflows at block rounding".into());
        let end = offset.checked_add(data.len() as u64).ok_or_else(overflow)?;
        let lead = offset % bs;
        let start = offset - lead;
        let tail_end = end.checked_next_multiple_of(bs).ok_or_else(overflow)?;
        let suffix_end = base_size.min(tail_end).max(end);
        let mut payload = BytesMut::with_capacity((suffix_end - start) as usize);
        if lead > 0 {
            let avail = readable.min(offset).saturating_sub(start);
            if avail > 0 {
                payload.extend_from_slice(&self.read(blob, Some(pin), start, avail)?);
            }
            // Zero gap between readable content and the write offset.
            payload.resize((offset - start) as usize, 0);
        }
        payload.extend_from_slice(data);
        if suffix_end > end {
            let suffix_avail = readable.min(suffix_end).saturating_sub(end);
            if suffix_avail > 0 {
                payload.extend_from_slice(&self.read(blob, Some(pin), end, suffix_avail)?);
            }
            payload.resize((suffix_end - start) as usize, 0);
        }
        Ok(MergedPayload {
            start,
            payload: payload.freeze(),
        })
    }

    /// Data phase: allocates providers, stores the payload's blocks, and
    /// returns `(block_index, descriptor)` pairs keyed from `first_block`.
    ///
    /// The puts are **vectored** and **fanned out**: every block (and
    /// replica) destined for one provider ships in a single
    /// [`crate::ports::BlockStore::put_many`] call, and the per-provider
    /// calls are issued concurrently through the deployment's
    /// [`crate::exec::FanoutExecutor`] — the §III-D "store all blocks in
    /// parallel" structure expressed at the port boundary: one round trip
    /// per provider touched, and those round trips overlap.
    ///
    /// A failed block put aborts the whole write ("if writing of a block
    /// fails, then the whole write fails", §III-D). The data phase then
    /// undoes itself: `allocate` charged provider-manager load for *every*
    /// block of this call up front, so the blocks that did land are
    /// deleted and every allocation is released — otherwise a refused put
    /// would skew placement accounting forever. The version manager was
    /// never involved, so the snapshot history is untouched.
    pub(crate) fn store_blocks(
        &self,
        payload: Bytes,
        first_block: u64,
    ) -> Result<Vec<(u64, BlockDescriptor)>> {
        let bs = self.sys.cfg.block_size as usize;
        let n_blocks = payload.len().div_ceil(bs);
        let allocs = self.sys.pm.allocate(n_blocks, self.sys.cfg.replication)?;
        let mut out = Vec::with_capacity(n_blocks);
        let mut batches: Vec<(usize, Vec<(BlockId, Bytes)>)> = Vec::new();
        for (i, alloc) in allocs.iter().enumerate() {
            let lo = i * bs;
            let hi = ((i + 1) * bs).min(payload.len());
            let chunk = payload.slice(lo..hi);
            for &p in &alloc.providers {
                push_grouped(&mut batches, p, (alloc.block_id, chunk.clone()));
            }
            out.push((
                first_block + i as u64,
                BlockDescriptor {
                    block_id: alloc.block_id,
                    providers: alloc.providers.iter().map(|&p| p as u32).collect(),
                    len: (hi - lo) as u32,
                },
            ));
        }
        let jobs: Vec<_> = batches
            .into_iter()
            .map(|(provider, items)| {
                let providers = Arc::clone(&self.sys.providers);
                move || {
                    let results = providers.put_many(provider, &items);
                    (items, results)
                }
            })
            .collect();
        self.sys.stats.record_fanout(jobs.len());
        // Every batch settles before the first error is acted on, so the
        // undo below always sees the complete (post-fan-out) state; batch
        // and item order make the surfaced error deterministic.
        for (items, results) in self.sys.exec.fanout(jobs) {
            for ((_, data), result) in items.iter().zip(results) {
                if let Err(e) = result {
                    // Undo the whole allocation set: deleting a block that
                    // never landed is a no-op, and each replica's load was
                    // charged exactly once at allocate time. The load
                    // release is one batched call — and best-effort, like
                    // the block deletes: the write already failed.
                    let mut undo: Vec<(usize, Vec<BlockId>)> = Vec::new();
                    let mut released: Vec<usize> = Vec::new();
                    for a in &allocs {
                        for &q in &a.providers {
                            push_grouped(&mut undo, q, a.block_id);
                            released.push(q);
                        }
                    }
                    let _ = self.sys.pm.release_many(&released);
                    self.sys.stats.record_fanout(undo.len());
                    let undo_jobs: Vec<_> = undo
                        .into_iter()
                        .map(|(q, ids)| {
                            let providers = Arc::clone(&self.sys.providers);
                            move || {
                                let _ = providers.delete_many(q, &ids);
                            }
                        })
                        .collect();
                    self.sys.exec.fanout(undo_jobs);
                    return Err(e);
                }
                EngineStats::add(&self.sys.stats.blocks_written, 1);
                EngineStats::add(&self.sys.stats.bytes_written, data.len() as u64);
            }
        }
        Ok(out)
    }

    /// Undoes the data phase of a write whose later phases failed: deletes
    /// the stored blocks (one vectored call per provider) and releases
    /// their provider-manager load (one unit per replica). Blocks orphaned
    /// by a failed version assignment, metadata publish or commit are
    /// unreachable from every revealed snapshot — repair republishes
    /// *aliases* to the previous version, never these descriptors — so
    /// they are pure leaks until released.
    pub(crate) fn release_stored(&self, leaves: &[(u64, BlockDescriptor)]) {
        let mut batches: Vec<(usize, Vec<BlockId>)> = Vec::new();
        let mut released: Vec<usize> = Vec::new();
        for (_, d) in leaves {
            for &p in &d.providers {
                push_grouped(&mut batches, p as usize, d.block_id);
                released.push(p as usize);
            }
        }
        if batches.is_empty() {
            return;
        }
        // One batched, best-effort load release (the caller is already on
        // an error path; a refused control frame must not mask its error).
        let _ = self.sys.pm.release_many(&released);
        self.sys.stats.record_fanout(batches.len());
        let jobs: Vec<_> = batches
            .into_iter()
            .map(|(p, ids)| {
                let providers = Arc::clone(&self.sys.providers);
                move || {
                    let _ = providers.delete_many(p, &ids);
                }
            })
            .collect();
        self.sys.exec.fanout(jobs);
    }

    /// Metadata phase + commit.
    ///
    /// If the publish fails (backend refusing puts, a metadata conflict),
    /// the already-assigned version would otherwise stall the reveal
    /// pipeline forever — so the writer self-repairs ([`Self::
    /// repair_aborted`]) before surfacing the error, exactly like the
    /// unaligned-append timeout path. The repair is best-effort: it can
    /// itself fail (the backend may still be refusing puts, or a partially
    /// published tree conflicts with the alias nodes), in which case the
    /// version stays pending — the crashed-writer caveat of §VI-B,
    /// observable via `pending_versions` and repairable once the backend
    /// heals.
    pub(crate) fn publish_and_commit(
        &self,
        op: ProtocolOp,
        ticket: &WriteTicket,
        leaves: Vec<(u64, BlockDescriptor)>,
    ) -> Result<()> {
        let leaf_map: HashMap<u64, BlockDescriptor> = leaves.iter().cloned().collect();
        let tree = self.sys.tree();
        let root = match tree.publish_write(ticket.blob, &ticket.entry, &ticket.chain, &leaf_map) {
            Ok(root) => root,
            Err(e) => {
                let _ = self.repair_aborted(ticket);
                // Whether or not the repair landed, no revealed snapshot
                // can ever reference this write's blocks (repair aliases
                // the *previous* version's leaves): undo the data phase.
                self.release_stored(&leaves);
                return Err(e);
            }
        };
        if let Err(e) = tree.register_root(root) {
            // The tree is published but its root was never refcounted: a
            // later collection of this version would be an untracked
            // release. Repair-and-release exactly like a failed publish —
            // the version must not reveal with unprotected metadata.
            let _ = self.repair_aborted(ticket);
            self.release_stored(&leaves);
            return Err(e);
        }
        self.observe(op, ProtocolPhase::MetadataPublished);
        if let Err(e) = self.sys.vm.commit(ticket.blob, ticket.version) {
            // Release only when the BLOB is gone (deleted mid-write): the
            // version then provably never revealed and never will, so the
            // stored blocks are orphans. Other commit failures are
            // conservative no-ops — by this point the metadata *is*
            // published and root-registered, and e.g. an Internal
            // "double commit" would mean the version is live, where
            // deleting its blocks would corrupt readable data.
            if matches!(e, Error::NoSuchBlob(_)) {
                self.release_stored(&leaves);
            }
            return Err(e);
        }
        self.observe(op, ProtocolPhase::Committed);
        Ok(())
    }

    /// Reports a protocol phase boundary to the deployment's observer.
    #[inline]
    pub(crate) fn observe(&self, op: ProtocolOp, phase: ProtocolPhase) {
        self.sys.observer.phase(self.node, op, phase);
    }
}
