//! End-to-end tests for the workspace lint: each rule must fire on its
//! fixture, every escape hatch must suppress, and — the acceptance
//! criterion of the tooling PR — the real tree must lint clean.

use blobseer_analysis::{
    lint_source, lint_workspace, workspace_root, RULE_NO_PANIC_DECODE, RULE_NO_REAL_TIME,
    RULE_NO_STD_SYNC, RULE_NO_UNWRAP,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

#[test]
fn unwrap_rule_fires_in_protocol_code() {
    let findings = lint_source(
        "crates/blobseer-core/src/fixture.rs",
        &fixture("unwrap_violation.rs"),
    );
    assert_eq!(findings.len(), 2, "unwrap + expect: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_NO_UNWRAP));
}

#[test]
fn unwrap_rule_silent_outside_scope() {
    // Same source under a path the rule does not govern (bench code).
    let findings = lint_source(
        "crates/bench/src/fixture.rs",
        &fixture("unwrap_violation.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn std_sync_rule_fires_outside_shim() {
    let findings = lint_source(
        "crates/blobseer-core/src/fixture.rs",
        &fixture("std_sync_violation.rs"),
    );
    assert_eq!(findings.len(), 2, "use + static: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_NO_STD_SYNC));
}

#[test]
fn std_sync_rule_exempts_shim_and_gate() {
    let src = fixture("std_sync_violation.rs");
    for rel in [
        "shims/parking_lot/src/fixture.rs",
        "crates/simnet/src/gate.rs",
    ] {
        let findings = lint_source(rel, &src);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
}

#[test]
fn real_time_rule_fires_in_simgate_crates() {
    let findings = lint_source(
        "crates/simnet/src/fixture.rs",
        &fixture("real_time_violation.rs"),
    );
    assert_eq!(findings.len(), 2, "sleep + Instant::now: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_NO_REAL_TIME));
}

#[test]
fn panic_decode_rule_fires_in_wire_files() {
    let findings = lint_source(
        "crates/blobseer-rpc/src/wire.rs",
        &fixture("panic_decode_violation.rs"),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, RULE_NO_PANIC_DECODE);
}

#[test]
fn allows_tests_and_literals_suppress_everything() {
    let findings = lint_source(
        "crates/blobseer-core/src/fixture.rs",
        &fixture("allowed_clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let src =
        "fn f(v: &[u32]) -> u32 {\n    // lint:allow(no-unwrap):\n    *v.last().unwrap()\n}\n";
    let findings = lint_source("crates/blobseer-core/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "reason is mandatory: {findings:?}");
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let src =
        "fn f(v: &[u32]) -> u32 {\n    *v.last().unwrap() // lint:allow(no-std-sync): wrong rule\n}\n";
    let findings = lint_source("crates/blobseer-core/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn test_paths_are_skipped_entirely() {
    let src = fixture("unwrap_violation.rs");
    for rel in [
        "crates/blobseer-core/tests/fixture.rs",
        "crates/blobseer-core/benches/fixture.rs",
        "crates/blobseer-core/examples/fixture.rs",
    ] {
        assert!(lint_source(rel, &src).is_empty(), "{rel}");
    }
}

#[test]
fn multibyte_comments_do_not_break_scanning() {
    // Comment stripping walks chars, not bytes — a section sign or em
    // dash before a violation must neither panic nor mask it.
    let src =
        "fn f(v: &[u32]) -> u32 {\n    // §III — descriptor fan-out\n    *v.last().unwrap()\n}\n";
    let findings = lint_source("crates/blobseer-core/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
}

/// The acceptance criterion: the real tree is clean under every rule.
#[test]
fn real_tree_is_clean() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "lint violations in the real tree:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
