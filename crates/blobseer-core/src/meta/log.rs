//! The per-BLOB write log and the "materializing version" computation.
//!
//! The version manager records, for every assigned version, which blocks the
//! write touched and how the tree capacity evolved. Writers receive this log
//! with their ticket: it is the paper's *hint* mechanism ("the version
//! manager hints the client on such dependencies … the client is able to
//! predict the values corresponding to the metadata that is being written by
//! the concurrent writers", §III-D). From the log alone — without reading
//! the DHT — a writer can compute, for any tree position, the latest version
//! that materialized a node there, and thus weave references to subtrees of
//! lower versions even when those are still being written.
//!
//! # The materialization rule
//!
//! A write `v` with block range `R_v` and capacities `cap_before → cap_after`
//! materializes the node at position `P` iff `P` is a valid node of the
//! `cap_after` tree (`P.end() <= cap_after`) and either
//!
//! 1. `P` intersects `R_v` (the paths from every changed leaf to the root,
//!    §III-A.3: nodes "are created only if they do cover the range of the
//!    update"), or
//! 2. `P` is a *spine* node: `P.start == 0`, `P.len > cap_before > 0`.
//!    When an append grows the tree, the new levels above the old root must
//!    exist even where they do not overlap the appended range, otherwise
//!    old content would become unreachable from the new root.

use super::key::{BlockRange, Pos};
use blobseer_types::{BlobId, Version};
use parking_lot::RwLock;
use std::sync::Arc;

/// One assigned write/append in a BLOB's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The assigned snapshot version.
    pub version: Version,
    /// Blocks covered by the (block-aligned) update.
    pub blocks: BlockRange,
    /// Tree capacity (in blocks, power of two; 0 for the empty BLOB) before
    /// this write.
    pub cap_before: u64,
    /// Tree capacity after this write.
    pub cap_after: u64,
    /// BLOB size in bytes after this write.
    pub size_after: u64,
}

impl LogEntry {
    /// Does this write materialize a node at `pos`? See the module docs for
    /// the rule.
    #[inline]
    pub fn materializes(&self, pos: Pos) -> bool {
        if !pos.valid_in(self.cap_after) {
            return false;
        }
        pos.intersects(&self.blocks)
            || (pos.start == 0 && self.cap_before > 0 && pos.len > self.cap_before)
    }
}

/// A shareable, append-only run of log entries (one per blob lineage).
pub type SharedLog = Arc<RwLock<Vec<LogEntry>>>;

/// One lineage segment of a blob's history: `entries` of `blob`, visible
/// for versions in `(lo, hi]`.
#[derive(Clone)]
pub struct LogSegment {
    /// The lineage that owns these versions.
    pub blob: BlobId,
    /// Entries, sorted by version; entry `k` has version `vec_base + 1 + k`.
    /// May extend beyond `hi` (the parent kept writing after the branch) —
    /// lookups clamp to `hi`.
    pub entries: SharedLog,
    /// Version of the (virtual) entry preceding `entries[0]` — the owning
    /// blob's base. Index arithmetic uses this.
    pub vec_base: Version,
    /// Visibility floor: snapshot lookups for versions `<= lo` fail (they
    /// were garbage-collected before a branch, or belong to an earlier
    /// segment). Metadata *weaving* still scans below `lo` — collected
    /// versions' surviving shared nodes remain valid reference targets.
    pub lo: Version,
    /// Versions `> hi` are outside this segment.
    pub hi: Version,
}

impl LogSegment {
    /// A segment whose full entry vector is visible.
    pub fn full(blob: BlobId, entries: SharedLog, base: Version, hi: Version) -> Self {
        Self {
            blob,
            entries,
            vec_base: base,
            lo: base,
            hi,
        }
    }

    /// Finds the entry for exactly `version`, if it is visible in this
    /// segment.
    pub fn entry(&self, version: Version) -> Option<LogEntry> {
        if version <= self.lo || version > self.hi {
            return None;
        }
        let entries = self.entries.read();
        debug_assert!(version > self.vec_base);
        let idx = (version.raw() - self.vec_base.raw() - 1) as usize;
        let e = entries.get(idx).copied();
        debug_assert!(
            e.map(|e| e.version == version).unwrap_or(true),
            "log must be dense"
        );
        e
    }
}

/// A blob's full history: its own segment first, then ancestors
/// (youngest → oldest). Branching (§VI-A) makes this a chain.
#[derive(Clone)]
pub struct LogChain {
    segments: Vec<LogSegment>,
}

/// Identifies the write that materialized a node: lineage + version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Materializer {
    pub blob: BlobId,
    pub version: Version,
}

impl LogChain {
    /// Builds a chain from segments ordered youngest (own) to oldest.
    pub fn new(segments: Vec<LogSegment>) -> Self {
        debug_assert!(!segments.is_empty());
        Self { segments }
    }

    /// The segments, youngest first.
    pub fn segments(&self) -> &[LogSegment] {
        &self.segments
    }

    /// The log entry of exactly `version`, if assigned.
    pub fn entry(&self, version: Version) -> Option<LogEntry> {
        self.segments.iter().find_map(|s| s.entry(version))
    }

    /// The latest version `< before` that materialized a node at `pos`,
    /// with the lineage that owns it. `None` means no such node exists:
    /// the position is a hole (reads as zeros).
    ///
    /// The scan deliberately ignores the GC visibility floor (`lo`): a
    /// collected version's node can still be the correct weave target,
    /// because any node the latest surviving snapshot reaches stays alive
    /// through GC refcounts.
    pub fn materializer_before(&self, pos: Pos, before: Version) -> Option<Materializer> {
        for seg in &self.segments {
            if seg.vec_base >= before {
                continue; // every entry here has version > vec_base >= before
            }
            let hi = if seg.hi < before {
                seg.hi
            } else {
                Version::new(before.raw() - 1)
            };
            if hi <= seg.vec_base {
                continue;
            }
            let entries = seg.entries.read();
            // Entries [0, max_idx) have version <= hi.
            let max_idx = (hi.raw() - seg.vec_base.raw()) as usize;
            let upto = max_idx.min(entries.len());
            for e in entries[..upto].iter().rev() {
                debug_assert!(e.version <= hi && e.version > seg.vec_base);
                if e.materializes(pos) {
                    return Some(Materializer {
                        blob: seg.blob,
                        version: e.version,
                    });
                }
            }
        }
        None
    }

    /// Size and capacity of snapshot `version` (0 both for the empty BLOB).
    pub fn snapshot_geometry(&self, version: Version) -> Option<(u64, u64)> {
        if version.is_zero() {
            return Some((0, 0));
        }
        self.entry(version).map(|e| (e.size_after, e.cap_after))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        v: u64,
        blocks: (u64, u64),
        cap_before: u64,
        cap_after: u64,
        size_after: u64,
    ) -> LogEntry {
        LogEntry {
            version: Version::new(v),
            blocks: BlockRange::new(blocks.0, blocks.1),
            cap_before,
            cap_after,
            size_after,
        }
    }

    fn chain_of(blob: u64, entries: Vec<LogEntry>) -> LogChain {
        LogChain::new(vec![LogSegment::full(
            BlobId::new(blob),
            Arc::new(RwLock::new(entries)),
            Version::ZERO,
            Version::new(u64::MAX),
        )])
    }

    #[test]
    fn materializes_paths_to_root() {
        // Paper Fig. 1(b): tree of capacity 4, overwrite of blocks [0, 2).
        let e = entry(2, (0, 2), 4, 4, 4 * 64);
        assert!(e.materializes(Pos::new(0, 1)));
        assert!(e.materializes(Pos::new(1, 1)));
        assert!(e.materializes(Pos::new(0, 2)));
        assert!(e.materializes(Pos::new(0, 4)), "root always on the path");
        assert!(!e.materializes(Pos::new(2, 1)));
        assert!(!e.materializes(Pos::new(2, 2)));
        assert!(!e.materializes(Pos::new(0, 8)), "beyond capacity");
    }

    #[test]
    fn growth_materializes_spine() {
        // Paper Fig. 1(c): capacity grows 4 → 8 on an append of one block.
        let e = entry(3, (4, 5), 4, 8, 5 * 64);
        assert!(e.materializes(Pos::new(4, 1)), "the new leaf");
        assert!(e.materializes(Pos::new(4, 2)));
        assert!(e.materializes(Pos::new(4, 4)));
        assert!(e.materializes(Pos::new(0, 8)), "new root");
        assert!(
            !e.materializes(Pos::new(0, 4)),
            "old root is shared, not rebuilt"
        );
        assert!(!e.materializes(Pos::new(5, 1)));
    }

    #[test]
    fn hole_write_still_builds_spine() {
        // A write far past the end: blocks [8, 9) while old capacity was 2.
        let e = entry(2, (8, 9), 2, 16, 9 * 64);
        // Spine nodes keep old content reachable even though they do not
        // intersect the written range.
        assert!(e.materializes(Pos::new(0, 4)), "spine over old root");
        assert!(e.materializes(Pos::new(0, 8)), "spine");
        assert!(e.materializes(Pos::new(0, 16)), "root (intersects)");
        assert!(!e.materializes(Pos::new(0, 2)), "old root untouched");
        assert!(!e.materializes(Pos::new(4, 4)), "hole subtree");
    }

    #[test]
    fn first_write_has_no_spine() {
        let e = entry(1, (2, 3), 0, 4, 3 * 64);
        assert!(e.materializes(Pos::new(0, 4)), "root intersects");
        assert!(
            !e.materializes(Pos::new(0, 2)),
            "hole, not spine (empty blob before)"
        );
        assert!(e.materializes(Pos::new(2, 2)));
    }

    #[test]
    fn materializer_before_scans_backwards() {
        // v1 writes [0,4), v2 overwrites [0,2), v3 appends [4,5) growing to 8.
        let chain = chain_of(
            7,
            vec![
                entry(1, (0, 4), 0, 4, 4 * 64),
                entry(2, (0, 2), 4, 4, 4 * 64),
                entry(3, (4, 5), 4, 8, 5 * 64),
            ],
        );
        let mv = |pos, before| chain.materializer_before(pos, Version::new(before));
        // Reading version 3's tree: left-of-root (0,4) was last touched by v2.
        assert_eq!(mv(Pos::new(0, 4), 4).unwrap().version, Version::new(2));
        // Leaf 2 was last written by v1 (v2 only covered blocks 0–1).
        assert_eq!(mv(Pos::new(2, 1), 4).unwrap().version, Version::new(1));
        assert_eq!(mv(Pos::new(0, 1), 4).unwrap().version, Version::new(2));
        // Before v2, leaf 0 came from v1.
        assert_eq!(mv(Pos::new(0, 1), 2).unwrap().version, Version::new(1));
        // Never-written position: hole.
        assert_eq!(mv(Pos::new(5, 1), 4), None);
        // Nothing exists before v1.
        assert_eq!(mv(Pos::new(0, 1), 1), None);
    }

    #[test]
    fn chain_resolves_across_branch_segments() {
        // Parent blob 1 wrote v1..v3; child blob 2 branched at v2 and wrote v3'.
        let parent_entries = Arc::new(RwLock::new(vec![
            entry(1, (0, 2), 0, 2, 2 * 64),
            entry(2, (0, 1), 2, 2, 2 * 64),
            entry(3, (1, 2), 2, 2, 2 * 64), // parent write after the branch point
        ]));
        let child_entries = Arc::new(RwLock::new(vec![entry(3, (0, 1), 2, 2, 2 * 64)]));
        let chain = LogChain::new(vec![
            LogSegment::full(
                BlobId::new(2),
                child_entries,
                Version::new(2),
                Version::new(u64::MAX),
            ),
            LogSegment::full(
                BlobId::new(1),
                parent_entries,
                Version::ZERO,
                Version::new(2), // branch point: parent's v3 is invisible
            ),
        ]);
        // Child's view of leaf 0 before its own v3: parent's v2.
        let m = chain
            .materializer_before(Pos::new(0, 1), Version::new(3))
            .unwrap();
        assert_eq!((m.blob, m.version), (BlobId::new(1), Version::new(2)));
        // Leaf 1: parent's v1 — the parent's v3 write is beyond the branch point.
        let m = chain
            .materializer_before(Pos::new(1, 1), Version::new(4))
            .unwrap();
        assert_eq!((m.blob, m.version), (BlobId::new(1), Version::new(1)));
        // Child's own v3 wins for leaf 0 at `before = 4`.
        let m = chain
            .materializer_before(Pos::new(0, 1), Version::new(4))
            .unwrap();
        assert_eq!((m.blob, m.version), (BlobId::new(2), Version::new(3)));
        // Exact-entry lookup respects segment clamping.
        assert_eq!(
            chain.entry(Version::new(3)).unwrap().blocks,
            BlockRange::new(0, 1)
        );
        assert_eq!(
            chain.entry(Version::new(1)).unwrap().blocks,
            BlockRange::new(0, 2)
        );
    }

    #[test]
    fn snapshot_geometry() {
        let chain = chain_of(1, vec![entry(1, (0, 3), 0, 4, 180)]);
        assert_eq!(chain.snapshot_geometry(Version::ZERO), Some((0, 0)));
        assert_eq!(chain.snapshot_geometry(Version::new(1)), Some((180, 4)));
        assert_eq!(chain.snapshot_geometry(Version::new(2)), None);
    }
}
