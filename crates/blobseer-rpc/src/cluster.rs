//! [`LoopbackCluster`]: an N-process-shaped BlobSeer deployment over real
//! loopback sockets.
//!
//! Boots the paper's service decomposition as separate server thread
//! groups — one listener per data provider, one for the metadata DHT, one
//! for the version manager, one for the provider (placement) manager and
//! one for the GC refcount service — and wires client deployments to them
//! through the RPC adapters. Every `BlobClient` obtained from such a
//! deployment drives the *unchanged* protocol of `blobseer_core::client`
//! end to end over TCP: data phase, version assignment, metadata publish,
//! commit, reads, GC.
//!
//! Hosting the control plane is what makes N deployments behave like N
//! *processes of one system* rather than N private systems that happen to
//! share storage:
//!
//! * the **provider manager** is one server-side load table — blocks
//!   written through any deployment charge the same per-provider load
//!   vector, so placement balances globally; and
//! * the **GC refcount tracker** is one server-side count per metadata
//!   node — a subtree shared by snapshots written through two different
//!   client processes has one count, and cascades (DHT deletes, block
//!   deletes, load releases) run server-side next to the stores.
//!
//! With `version_replicas > 1` the version manager itself is a
//! leader-based replica group (`blobseer_control`) hosted behind the same
//! listener — the cluster survives version-manager crashes with no lost
//! or duplicated version numbers.

use crate::client::{
    RpcBlockStore, RpcGcService, RpcMetaStore, RpcPlacementService, RpcVersionService,
};
use crate::server::{InFlight, RpcServer, RpcService};
use blobseer_core::block_store::ProviderSet;
use blobseer_core::dht::MetaDht;
use blobseer_core::gc::GcHost;
use blobseer_core::ports::{BlockStore, GcService, MetaStore, PlacementService, ProtocolObserver};
use blobseer_core::provider_manager::ProviderManager;
use blobseer_core::version_manager::VersionManager;
use blobseer_core::{
    BlobSeer, CachedBlockStore, CachedMetaStore, EnginePorts, EngineStats, FanoutExecutor,
    NoopObserver,
};
use blobseer_disk::frame::FrameLog;
use blobseer_disk::volume::volume_path;
use blobseer_disk::{DiskMetaStore, DiskProviderSet, DiskVolume, DurableVersionService};
use blobseer_types::{BlobSeerConfig, BlockId, Error, NodeId, Result};
use bytes::Bytes;
use std::net::SocketAddr;
use std::sync::Arc;

/// A booted loopback cluster: the server processes of Fig. 2, each behind
/// its own TCP listener. Dropping the cluster shuts every server down and
/// joins its threads; client deployments outliving the cluster observe
/// [`Error::Transport`] on their next call.
pub struct LoopbackCluster {
    cfg: BlobSeerConfig,
    servers: Vec<RpcServer>,
    block_addrs: Vec<SocketAddr>,
    meta_addr: SocketAddr,
    vm_addr: SocketAddr,
    placement_addr: SocketAddr,
    gc_addr: SocketAddr,
    server_stats: Arc<EngineStats>,
    /// Cluster-wide in-flight request tracker shared by every server.
    in_flight: Arc<InFlight>,
    /// The replicated version-manager group, when the cluster was booted
    /// with `version_replicas > 1` (RAM or disk backend); `None` otherwise.
    replicated_vm: Option<Arc<blobseer_control::ReplicatedVersionService>>,
}

/// Block-id range width reserved per cluster *boot*: ~10^12 blocks each,
/// with room for 2^24 reboots of the same data directory. Within one
/// boot every deployment allocates from the shared hosted provider
/// manager, so disjointness needs no per-deployment carve-up.
const BLOCK_ID_RANGE: u64 = 1 << 40;

/// The cluster-side dense provider index space for the hosted GC service:
/// provider `i` is index 0 of the `i`-th single-provider server set. The
/// GC cascade deletes blocks through this adapter directly (in process,
/// next to the stores), not over the wire.
struct FannedProviders {
    sets: Vec<Arc<dyn BlockStore>>,
}

impl std::fmt::Debug for FannedProviders {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FannedProviders")
            .field("sets", &self.sets.len())
            .finish()
    }
}

impl BlockStore for FannedProviders {
    fn len(&self) -> usize {
        self.sets.len()
    }

    fn node(&self, provider: usize) -> NodeId {
        self.sets[provider].node(0)
    }

    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.sets
            .iter()
            .position(|s| s.index_of_node(node).is_some())
    }

    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.set(provider)?.put(0, id, data)
    }

    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.set(provider)?.get(0, id)
    }

    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.sets.get(provider).is_some_and(|s| s.contains(0, id))
    }

    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        self.set(provider)?.delete(0, id)
    }

    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        match self.set(provider) {
            Ok(s) => s.put_many(0, items),
            Err(e) => items.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        match self.set(provider) {
            Ok(s) => s.get_many(0, ids),
            Err(e) => ids.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        match self.set(provider) {
            Ok(s) => s.delete_many(0, ids),
            Err(e) => ids.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn block_count(&self, provider: usize) -> usize {
        self.sets.get(provider).map_or(0, |s| s.block_count(0))
    }

    fn bytes_stored(&self, provider: usize) -> u64 {
        self.sets.get(provider).map_or(0, |s| s.bytes_stored(0))
    }

    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.sets.get(provider).map_or((0, 0), |s| s.op_counts(0))
    }
}

impl FannedProviders {
    fn set(&self, provider: usize) -> Result<&Arc<dyn BlockStore>> {
        self.sets
            .get(provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))
    }
}

impl LoopbackCluster {
    /// Boots `n_providers` single-provider block servers (provider `i`
    /// hosted on node `i`), one metadata-DHT server, one version-manager
    /// server, one placement (provider-manager) server and one GC server,
    /// all on loopback ephemeral ports.
    pub fn boot(cfg: BlobSeerConfig, n_providers: usize) -> Result<Self> {
        Self::boot_seeded(cfg, n_providers, 0x5EED_0001)
    }

    /// [`Self::boot`] with an explicit provider-manager seed for the
    /// client deployments.
    pub fn boot_seeded(cfg: BlobSeerConfig, n_providers: usize, pm_seed: u64) -> Result<Self> {
        assert!(n_providers > 0, "need at least one data provider");
        // Worker-pool shape from the deployment config: N dispatcher
        // threads over a bounded queue per server.
        let workers = cfg.rpc_server_workers;
        let queue = cfg.rpc_server_queue_depth;
        // One tracker across all servers: its high watermark observes
        // requests overlapping *anywhere* in the cluster, which is what
        // client-side fan-out produces and a serial client cannot.
        let in_flight = Arc::new(InFlight::new());
        let spawn = {
            let in_flight = Arc::clone(&in_flight);
            move |svc: RpcService| {
                RpcServer::spawn_tracked(svc, workers, queue, Arc::clone(&in_flight))
                    .map_err(|e| Error::Transport(format!("spawn loopback server: {e}")))
            }
        };
        let mut servers = Vec::with_capacity(n_providers + 4);
        let mut block_addrs = Vec::with_capacity(n_providers);
        let mut sets: Vec<Arc<dyn BlockStore>> = Vec::with_capacity(n_providers);
        // Backend selection: `data_dir = None` hosts the in-memory
        // adapters (state dies with the cluster); `Some(dir)` hosts the
        // append-only disk stores of `blobseer-disk`, so booting again
        // with the same directory resumes exactly where the previous
        // cluster stopped. Same wire protocol, same client code, either
        // way. Note the disk metadata store keeps a single durable copy
        // per node — `metadata_replication` is an in-memory concern (its
        // durability comes from shard record logs, not replica shards).
        let server_stats = Arc::new(EngineStats::new());
        for i in 0..n_providers {
            let node = NodeId::new(i as u64);
            let set: Arc<dyn BlockStore> = match &cfg.data_dir {
                None => Arc::new(ProviderSet::new(1, |_| node)),
                Some(dir) => Arc::new(DiskProviderSet::from_volumes(vec![DiskVolume::open(
                    volume_path(&dir.join("block"), i),
                    node,
                )?])),
            };
            let server = spawn(RpcService::Block(Arc::clone(&set)))?;
            block_addrs.push(server.addr());
            servers.push(server);
            sets.push(set);
        }
        let dht: Arc<dyn MetaStore> = match &cfg.data_dir {
            None => Arc::new(MetaDht::new(
                cfg.metadata_providers,
                cfg.metadata_replication,
            )),
            Some(dir) => Arc::new(DiskMetaStore::open(
                dir.join("meta"),
                cfg.metadata_providers,
            )?),
        };
        let meta_server = spawn(RpcService::Meta(Arc::clone(&dht)))?;
        let meta_addr = meta_server.addr();
        servers.push(meta_server);
        // The version manager: a single VM (RAM or durable), or — with
        // `version_replicas > 1` — a leader-based replica group that
        // survives mid-storm leader kills (see `blobseer_control`).
        let mut replicated_vm = None;
        let vm: Arc<dyn blobseer_core::ports::VersionService> = if cfg.version_replicas > 1 {
            let group = match &cfg.data_dir {
                None => blobseer_control::ReplicatedVersionService::new(
                    cfg.version_replicas,
                    cfg.block_size,
                ),
                Some(dir) => blobseer_control::ReplicatedVersionService::open(
                    dir.join("vm-replog"),
                    cfg.version_replicas,
                    cfg.block_size,
                )?,
            };
            replicated_vm = Some(Arc::clone(&group));
            group
        } else {
            match &cfg.data_dir {
                None => Arc::new(VersionManager::new(
                    cfg.block_size,
                    Arc::clone(&server_stats),
                )),
                Some(dir) => Arc::new(DurableVersionService::open(
                    dir.join("version.log"),
                    cfg.block_size,
                )?),
            }
        };
        let vm_server = spawn(RpcService::Version(vm))?;
        let vm_addr = vm_server.addr();
        servers.push(vm_server);
        // Resume the boot counter from the persisted log: every past boot
        // of this data directory claimed a block-id range for its hosted
        // provider manager, so a rebooted cluster must allocate above all
        // of them (colliding ids would trip the providers' immutable-put
        // check).
        let boots = match &cfg.data_dir {
            None => 0,
            Some(dir) => {
                let mut past = 0u64;
                let mut log = FrameLog::open_with(dir.join("deployments.log"), |_, _| {
                    past += 1;
                    Ok(())
                })?;
                // One frame per boot, ever: the frame count is the next
                // boot index (the payload is only for humans reading the
                // log).
                let mut w = blobseer_types::wire::WireWriter::new();
                w.put_u64(past);
                log.append(&w.into_vec())?;
                past
            }
        };
        // The hosted control plane: ONE provider manager and ONE GC
        // refcount tracker shared by every deployment wired to this
        // cluster, each behind its own listener. The GC host cascades
        // in-process, next to the stores it deletes from.
        let pm = Arc::new(ProviderManager::with_block_base(
            n_providers,
            cfg.placement,
            pm_seed,
            1 + boots * BLOCK_ID_RANGE,
        ));
        let placement_server = spawn(RpcService::Placement(
            Arc::clone(&pm) as Arc<dyn PlacementService>
        ))?;
        let placement_addr = placement_server.addr();
        servers.push(placement_server);
        let gc_host: Arc<dyn GcService> = Arc::new(GcHost::new(
            dht,
            Arc::new(FannedProviders { sets }),
            pm,
            Arc::clone(&server_stats),
            Arc::new(FanoutExecutor::new(n_providers.min(8))),
        ));
        let gc_server = spawn(RpcService::Gc(gc_host))?;
        let gc_addr = gc_server.addr();
        servers.push(gc_server);
        Ok(Self {
            cfg,
            servers,
            block_addrs,
            meta_addr,
            vm_addr,
            placement_addr,
            gc_addr,
            server_stats,
            in_flight,
            replicated_vm,
        })
    }

    /// Wires a fresh client deployment to the cluster: RPC adapters for
    /// all five ports behind the unchanged [`BlobSeer::deploy_ports`].
    /// Call it once per simulated client process.
    ///
    /// Every deployment shares the cluster's hosted control plane: blob
    /// ids and versions come from the shared version-manager server,
    /// block ids and load accounting from the shared placement server,
    /// and metadata refcounts from the shared GC server — so blobs
    /// written through one deployment are readable (and collectable)
    /// through any other, and placement balances globally.
    pub fn deploy(&self) -> Result<Arc<BlobSeer>> {
        self.deploy_observed(Arc::new(NoopObserver))
    }

    /// [`Self::deploy`] with a custom [`ProtocolObserver`] wired into the
    /// deployment. Fault-injection tests use it to act at protocol phase
    /// boundaries — e.g. killing the version-manager leader between a
    /// storm's data phase and its version assignment
    /// (`tests/control_plane.rs`).
    pub fn deploy_observed(&self, observer: Arc<dyn ProtocolObserver>) -> Result<Arc<BlobSeer>> {
        // The data-path adapters account their round trips
        // (`port_round_trips`) and vectored items (`batched_items`) on
        // this deployment's stats; the control-plane adapters account on
        // `control_round_trips`.
        let stats = Arc::new(EngineStats::new());
        let budget = self.cfg.rpc_client_connections;
        let mut providers: Arc<dyn BlockStore> = Arc::new(RpcBlockStore::connect_with(
            &self.block_addrs,
            Arc::clone(&stats),
            budget,
        )?);
        let mut dht: Arc<dyn MetaStore> = Arc::new(RpcMetaStore::connect_with(
            self.meta_addr,
            Arc::clone(&stats),
            budget,
        )?);
        // Opt-in hot-read cache tier: LRU decorators over both read-path
        // ports, safe because revealed blocks and published tree nodes
        // are immutable. `read_cache_bytes == 0` (the default, and the
        // figure-reproduction setting) leaves the wire paths untouched.
        if self.cfg.read_cache_bytes > 0 {
            providers = Arc::new(CachedBlockStore::new(
                providers,
                self.cfg.read_cache_bytes,
                Arc::clone(&stats),
            ));
            dht = Arc::new(CachedMetaStore::new(
                dht,
                self.cfg.read_cache_bytes,
                Arc::clone(&stats),
            ));
        }
        let ports = EnginePorts {
            providers,
            dht,
            vm: Arc::new(RpcVersionService::connect_with(
                self.vm_addr,
                Arc::clone(&stats),
                budget,
            )?),
            pm: Arc::new(RpcPlacementService::connect_with(
                self.placement_addr,
                Arc::clone(&stats),
                budget,
            )?),
            gc: Some(Arc::new(RpcGcService::connect_with(
                self.gc_addr,
                Arc::clone(&stats),
                budget,
            )?)),
            stats,
            observer,
        };
        Ok(BlobSeer::deploy_ports(self.cfg.clone(), ports))
    }

    /// The deployment configuration the cluster was booted with.
    pub fn config(&self) -> &BlobSeerConfig {
        &self.cfg
    }

    /// Number of server processes (listeners): one per provider, plus the
    /// DHT, the version manager, the placement manager and the GC
    /// service.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total request frames served across every server of the cluster —
    /// the server-side view of the round trips the client adapters count
    /// in their deployment's `port_round_trips` (data path) and
    /// `control_round_trips` (placement + GC).
    pub fn frames_served(&self) -> u64 {
        self.servers.iter().map(|s| s.frames_served()).sum()
    }

    /// Total TCP connections accepted across every server of the cluster.
    /// With muxed clients this is bounded by `deployments × endpoints ×
    /// rpc_client_connections` no matter how many requests are in flight
    /// — the mux tests assert on it.
    pub fn connections_accepted(&self) -> u64 {
        self.servers.iter().map(|s| s.connections_accepted()).sum()
    }

    /// Highest number of simultaneously in-flight requests ever observed
    /// across the whole cluster — the structural proof of client-side
    /// fan-out. A deployment with `client_io_threads = Some(1)` can never
    /// push this above 1 per client thread; the fan-out executor can.
    pub fn in_flight_high_watermark(&self) -> u64 {
        self.in_flight.high_watermark()
    }

    /// Addresses of the per-provider block services.
    pub fn block_addrs(&self) -> &[SocketAddr] {
        &self.block_addrs
    }

    /// Address of the metadata-DHT service.
    pub fn meta_addr(&self) -> SocketAddr {
        self.meta_addr
    }

    /// Address of the version-manager service.
    pub fn vm_addr(&self) -> SocketAddr {
        self.vm_addr
    }

    /// Address of the placement (provider-manager) service.
    pub fn placement_addr(&self) -> SocketAddr {
        self.placement_addr
    }

    /// Address of the GC refcount service.
    pub fn gc_addr(&self) -> SocketAddr {
        self.gc_addr
    }

    /// The hosted replicated version-manager group, when the cluster was
    /// booted with `version_replicas > 1` — fault-injection tests use it
    /// to kill and revive replicas mid-storm.
    pub fn replicated_vm(&self) -> Option<&Arc<blobseer_control::ReplicatedVersionService>> {
        self.replicated_vm.as_ref()
    }

    /// Server-side engine counters (the hosted version manager's, e.g.
    /// `versions_assigned`). Client-side counters live on each
    /// deployment's own [`BlobSeer::stats`].
    pub fn server_stats(&self) -> &Arc<EngineStats> {
        &self.server_stats
    }

    /// Shuts every server down and joins its threads. Also runs on drop.
    pub fn shutdown(&mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
