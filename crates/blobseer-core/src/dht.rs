//! The metadata DHT: tree nodes distributed over metadata providers.
//!
//! "To favor efficient concurrent access to metadata, tree nodes are
//! distributed: they are stored on the metadata providers using a DHT"
//! (§III-A.3). Keys shard by hash; optional replication stores each node on
//! `k` consecutive buckets, which is the DHT-level fault tolerance the paper
//! mentions in §VI-B ("metadata is stored in a DHT … resilient to faults by
//! construction").

use crate::meta::key::NodeKey;
use crate::meta::node::TreeNode;
use blobseer_types::{Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;

/// One metadata provider: a shard of the DHT.
#[derive(Debug, Default)]
pub struct MetaProvider {
    map: RwLock<HashMap<NodeKey, TreeNode>>,
    puts: std::sync::atomic::AtomicU64,
    gets: std::sync::atomic::AtomicU64,
}

impl MetaProvider {
    fn put(&self, key: NodeKey, node: TreeNode) {
        self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut map = self.map.write();
        // Metadata, like data, is immutable: re-puts must carry identical
        // content (replica retries, abort repair idempotence).
        if let Some(existing) = map.get(&key) {
            debug_assert_eq!(
                existing, &node,
                "metadata node {key:?} rewritten with different content"
            );
            return;
        }
        map.insert(key, node);
    }

    fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.map.read().get(key).cloned()
    }

    fn delete(&self, key: &NodeKey) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// Number of nodes stored on this provider.
    pub fn node_count(&self) -> usize {
        self.map.read().len()
    }

    /// `(puts, gets)` served.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(std::sync::atomic::Ordering::Relaxed),
            self.gets.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

/// The distributed metadata store.
#[derive(Debug)]
pub struct MetaDht {
    shards: Vec<MetaProvider>,
    replication: usize,
}

impl MetaDht {
    /// A DHT over `n` metadata providers with `replication` copies per node.
    pub fn new(n: usize, replication: usize) -> Self {
        assert!(n > 0, "need at least one metadata provider");
        assert!(
            (1..=n).contains(&replication),
            "metadata replication {replication} must be in 1..={n}"
        );
        Self {
            shards: (0..n).map(|_| MetaProvider::default()).collect(),
            replication,
        }
    }

    /// Number of metadata providers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The primary shard index for a key.
    #[inline]
    pub fn shard_of(&self, key: &NodeKey) -> usize {
        (key.hash64() % self.shards.len() as u64) as usize
    }

    /// Stores a node on its `replication` home shards.
    pub fn put(&self, key: NodeKey, node: TreeNode) {
        let primary = self.shard_of(&key);
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            self.shards[shard].put(key, node.clone());
        }
    }

    /// Fetches a node, trying replicas in order.
    pub fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        let primary = self.shard_of(key);
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            if let Some(node) = self.shards[shard].get(key) {
                return Ok(node);
            }
        }
        Err(Error::MissingMetadata(format!("{key:?}")))
    }

    /// Simulates the crash of one shard by dropping its contents; used by
    /// fault-tolerance tests to show replicated metadata survives.
    pub fn crash_shard(&self, shard: usize) {
        self.shards[shard].map.write().clear();
    }

    /// Deletes a node from all its replicas. Returns true if any replica
    /// existed.
    pub fn delete(&self, key: &NodeKey) -> bool {
        let primary = self.shard_of(key);
        let mut existed = false;
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            existed |= self.shards[shard].delete(key);
        }
        existed
    }

    /// Total nodes stored across shards (replicas counted).
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }

    /// Per-shard `(nodes, puts, gets)` — the metadata load distribution.
    pub fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let (p, g) = s.op_counts();
                (s.node_count(), p, g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::key::Pos;
    use crate::meta::node::{BlockDescriptor, NodeRef};
    use blobseer_types::{BlobId, BlockId, Version};

    fn key(v: u64, start: u64, len: u64) -> NodeKey {
        NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(start, len))
    }

    fn leaf(b: u64) -> TreeNode {
        TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(b),
            providers: vec![0],
            len: 64,
        })
    }

    #[test]
    fn put_get_roundtrip() {
        let dht = MetaDht::new(4, 1);
        dht.put(key(1, 0, 1), leaf(10));
        assert_eq!(dht.get(&key(1, 0, 1)).unwrap(), leaf(10));
        assert!(matches!(
            dht.get(&key(2, 0, 1)),
            Err(Error::MissingMetadata(_))
        ));
    }

    #[test]
    fn keys_spread_over_shards() {
        let dht = MetaDht::new(8, 1);
        for v in 0..256 {
            dht.put(key(v, 0, 1), leaf(v));
        }
        let stats = dht.shard_stats();
        let nonempty = stats.iter().filter(|(n, _, _)| *n > 0).count();
        assert_eq!(nonempty, 8, "all shards should hold nodes: {stats:?}");
        let max = stats.iter().map(|(n, _, _)| *n).max().unwrap();
        assert!(max < 100, "no shard should dominate: {stats:?}");
    }

    #[test]
    fn replication_survives_one_shard_crash() {
        let dht = MetaDht::new(4, 2);
        for v in 0..64 {
            dht.put(key(v, 0, 1), leaf(v));
        }
        dht.crash_shard(0);
        for v in 0..64 {
            assert!(dht.get(&key(v, 0, 1)).is_ok(), "v{v} lost after crash");
        }
    }

    #[test]
    fn unreplicated_dht_loses_data_on_crash() {
        let dht = MetaDht::new(4, 1);
        for v in 0..64 {
            dht.put(key(v, 0, 1), leaf(v));
        }
        dht.crash_shard(1);
        let lost = (0..64).filter(|&v| dht.get(&key(v, 0, 1)).is_err()).count();
        assert!(lost > 0, "some keys must have lived on shard 1");
    }

    #[test]
    fn delete_removes_all_replicas() {
        let dht = MetaDht::new(3, 2);
        dht.put(
            key(1, 0, 2),
            TreeNode::Inner {
                left: None,
                right: None,
            },
        );
        assert!(dht.delete(&key(1, 0, 2)));
        assert!(!dht.delete(&key(1, 0, 2)));
        assert!(dht.get(&key(1, 0, 2)).is_err());
        assert_eq!(dht.node_count(), 0);
    }

    #[test]
    fn idempotent_reput_accepted() {
        let dht = MetaDht::new(2, 1);
        let n = TreeNode::LeafAlias(Some(NodeRef {
            blob: BlobId::new(1),
            version: Version::new(1),
        }));
        dht.put(key(2, 0, 1), n.clone());
        dht.put(key(2, 0, 1), n.clone());
        assert_eq!(dht.get(&key(2, 0, 1)).unwrap(), n);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_replication_rejected() {
        let _ = MetaDht::new(2, 3);
    }
}
