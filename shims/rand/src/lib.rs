//! Minimal, API-compatible stand-in for the `rand` crate, vendored because
//! the build environment has no crates.io access.
//!
//! Only the surface the workspace uses is provided: `StdRng::seed_from_u64`
//! plus `Rng::gen_range` over integer ranges. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic for a given
//! seed, which the placement experiments require for reproducible layouts.
//! It is **not** the real `StdRng` stream (ChaCha12), so absolute sampled
//! sequences differ from upstream rand; nothing in this workspace encodes
//! the upstream stream.
#![forbid(unsafe_code)]

pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructor trait (only the `seed_from_u64` form is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_seed_u64(state)
    }
}

/// A range that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

// Wrapping arithmetic throughout: for signed types the `as u128` casts
// sign-extend, so a plain subtraction would overflow on negative starts.
// Modulo 2^128 the span and the final `start + v` come out right in
// two's complement for every integer type up to 64 bits.
macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The slice of rand's `Rng` extension trait the workspace uses.
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Uniform `bool` (used by a few experiment scripts).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
            let x = rng.gen_range(0usize..5);
            assert!(x < 5);
        }
    }

    #[test]
    fn signed_ranges_with_negative_starts() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain sample must not overflow
            let x = rng.gen_range(-3i64..=-1);
            assert!((-3..=-1).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
