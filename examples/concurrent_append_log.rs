//! Concurrent appends to one shared file — the §V-F scenario that HDFS
//! cannot express, exercised with real threads: eight writers build one
//! shared event log, every record lands exactly once, and the log is
//! totally ordered by the version manager.
//!
//! ```text
//! cargo run --example concurrent_append_log
//! ```

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, Error, HdfsConfig, NodeId};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::read_fully;
use hdfs_sim::HdfsCluster;

const WRITERS: usize = 8;
const RECORDS_PER_WRITER: usize = 25;

fn main() {
    let system = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(256)
            .with_metadata_providers(4),
        8,
    );
    let cluster = BsfsCluster::new(system);
    let fs0 = cluster.mount(NodeId::new(0));
    dfs::util::write_file(&fs0, "/events.log", b"").ok();

    // Eight threads append records concurrently to the same file.
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let fs = cluster.mount(NodeId::new(w as u64));
            scope.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    let mut out = fs.append("/events.log").unwrap();
                    out.write(format!("writer-{w} event-{i:03}\n").as_bytes())
                        .unwrap();
                    out.close().unwrap();
                }
            });
        }
    });

    let log = read_fully(&fs0, "/events.log").unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&log).unwrap().lines().collect();
    println!(
        "shared log holds {} records from {WRITERS} concurrent writers",
        lines.len()
    );
    assert_eq!(lines.len(), WRITERS * RECORDS_PER_WRITER);

    // Every record exactly once…
    let mut seen = std::collections::HashSet::new();
    for l in &lines {
        assert!(seen.insert(*l), "duplicate record: {l}");
    }
    // …and per-writer order is preserved (each writer's appends were
    // serialized by the version manager in submission order).
    for w in 0..WRITERS {
        let mine: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with(&format!("writer-{w} ")))
            .collect();
        let mut sorted = mine.clone();
        sorted.sort();
        assert_eq!(mine, sorted, "writer {w}'s records out of order");
    }
    println!("each record exactly once, per-writer order preserved ✓");

    // Version history: the log has one snapshot per append — time travel!
    let client = cluster.system().client(NodeId::new(0));
    let blob = fs0.file_blob("/events.log").unwrap();
    let (latest, size) = client.latest(blob).unwrap();
    println!("log blob has {latest} snapshots, {size} bytes at head");
    let halfway = blobseer_types::Version::new(latest.raw() / 2);
    let old_size = client.size(blob, halfway).unwrap();
    println!("at {halfway} the log had only {old_size} bytes");

    // The HDFS baseline refuses this workload outright (§V-F).
    let hdfs = HdfsCluster::new(HdfsConfig::default().with_chunk_size(256), 4);
    let hfs = hdfs.mount(NodeId::new(0));
    dfs::util::write_file(&hfs, "/events.log", b"seed\n").unwrap();
    let err = hfs.append("/events.log").map(|_| ()).unwrap_err();
    match err {
        Error::Unsupported(what) => {
            println!("\nHDFS 0.20 baseline says: unsupported — {what}");
        }
        other => panic!("expected Unsupported, got {other}"),
    }
}
