//! Fig. 6: Map/Reduce application benchmarks (§V-G).
//!
//! * **Fig. 6(a) — RandomTextWriter**: M mappers (co-deployed with storage
//!   on 50 nodes) each generate `6.4 GB / M` of random text and write it to
//!   their own output file. Writes are the measured path: HDFS writes
//!   locally (its co-located policy) but pays the 0.20 chunk pipeline and
//!   the namenode's synchronously-fsynced, O(block-list) edit log — which
//!   *all mappers share*; BSFS streams blocks to round-robin remote
//!   providers, overlapping disks across the cluster, and its version
//!   manager does O(1) work per append.
//! * **Fig. 6(b) — distributed grep**: a shared input file of 6.4→12.8 GB
//!   (100→200 chunks) is scanned by one mapper per chunk on 150
//!   co-deployed nodes. The jobtracker assigns tasks on 3-second
//!   heartbeats, preferring data-local tasks. BSFS's balanced layout makes
//!   nearly every map local; HDFS's sticky layout concentrates chunks on
//!   hot datanodes whose disks and NICs become stragglers served remotely.
//!
//! Completion time = storage/compute makespan + fixed job overhead (setup
//! and cleanup tasks) + (grep only) the small reduce phase.

use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::{Backend, Services};
use blobseer_core::meta::key::BlockRange;
use blobseer_core::meta::log::LogEntry;
use blobseer_core::meta::shape;
use blobseer_core::placement::Placer;
use blobseer_types::{NodeId, Version};
use simnet::{start_flow, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime};

/// Nodes in the RandomTextWriter deployment (§V-G: 50 machines).
pub const RTW_NODES: usize = 50;
/// Nodes in the grep deployment (§V-G: 150 machines).
pub const GREP_NODES: usize = 150;
/// Map slots per tasktracker (Hadoop default).
const SLOTS: u8 = 2;

// ---------------------------------------------------------------------------
// Fig. 6(a): RandomTextWriter
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct WTok {
    mapper: usize,
    provider: usize,
    started: SimTime,
}

struct RtwWorld {
    net: FlowNet<WTok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    backend: Backend,
    services: Services,
    chunks_per_mapper: usize,
    /// Chunks written so far, per mapper.
    progress: Vec<usize>,
    /// Global round-robin provider cursor (BSFS placement).
    rr: usize,
    /// Versions assigned so far per output BLOB == chunk index (BSFS).
    done_at: Vec<Option<SimTime>>,
}

impl NetWorld for RtwWorld {
    type Token = WTok;
    fn net_mut(&mut self) -> &mut FlowNet<WTok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: WTok) {
        let disk_done = self.disks[tok.provider].submit(tok.started, self.c.block_bytes);
        let ack = disk_done.max(sched.now()) + self.c.provider_svc;
        sched.schedule_at(ack, move |w: &mut RtwWorld, s| {
            w.bsfs_metadata(s, tok.mapper)
        });
    }
}

impl RtwWorld {
    fn new(c: Constants, backend: Backend, mappers: usize, chunks_per_mapper: usize) -> Self {
        let meta_shards = if backend == Backend::Bsfs { 10 } else { 0 }; // §V-G: 10 for RTW
        let services = Services::new(&c, backend, meta_shards);
        Self {
            net: FlowNet::new(RTW_NODES, NicSpec::symmetric(c.nic_bps)),
            disks: (0..RTW_NODES)
                .map(|_| simnet::Disk::new(c.disk_write_bps))
                .collect(),
            c,
            backend,
            services,
            chunks_per_mapper,
            progress: vec![0; mappers],
            rr: 13,
            done_at: vec![None; mappers],
        }
    }

    /// Generate the next chunk's text, then write it.
    fn next_chunk(&mut self, sched: &mut Scheduler<Self>, mapper: usize) {
        if self.progress[mapper] == self.chunks_per_mapper {
            self.done_at[mapper] = Some(sched.now());
            return;
        }
        let gen = SimDuration::from_secs_f64(self.c.block_bytes as f64 / self.c.textgen_bps);
        sched.schedule_at(sched.now() + gen, move |w: &mut RtwWorld, s| {
            w.write_chunk(s, mapper)
        });
    }

    fn write_chunk(&mut self, sched: &mut Scheduler<Self>, mapper: usize) {
        let now = sched.now();
        let chunk_idx = self.progress[mapper] as u64;
        match self.backend {
            Backend::Hdfs => {
                // Local-first placement: the mapper's own datanode. The
                // namenode allocation — shared by every mapper — fsyncs an
                // edit-log record containing the file's whole block list.
                let svc = self.c.nn_svc
                    + self.c.nn_editlog_fsync
                    + SimDuration::from_nanos(self.c.nn_blocklist_per_chunk.as_nanos() * chunk_idx);
                let allocated = self.services.central_call(now, svc, self.c.latency);
                let start = allocated + self.c.hdfs_chunk_overhead_local;
                let disk_done = {
                    // Delay the disk submission to the (simulated) start
                    // instant by computing from `start`.
                    self.disks[mapper].submit(start, self.c.block_bytes)
                };
                self.progress[mapper] += 1;
                sched.schedule_at(disk_done, move |w: &mut RtwWorld, s| {
                    w.next_chunk(s, mapper)
                });
            }
            Backend::Bsfs => {
                let at = now + self.c.bsfs_block_overhead + self.c.rtt();
                sched.schedule_at(at, move |w: &mut RtwWorld, s| {
                    let provider = w.rr % RTW_NODES;
                    w.rr += 1;
                    let tok = WTok {
                        mapper,
                        provider,
                        started: s.now(),
                    };
                    if provider == mapper {
                        let disk_done = w.disks[provider].submit(s.now(), w.c.block_bytes);
                        let ack = disk_done + w.c.provider_svc;
                        s.schedule_at(ack, move |w: &mut RtwWorld, s| w.bsfs_metadata(s, mapper));
                    } else {
                        start_flow(
                            w,
                            s,
                            NodeId::new(mapper as u64),
                            NodeId::new(provider as u64),
                            w.c.block_bytes,
                            tok,
                        );
                    }
                });
            }
        }
    }

    /// BSFS metadata phase for the mapper's own output BLOB.
    fn bsfs_metadata(&mut self, sched: &mut Scheduler<Self>, mapper: usize) {
        let now = sched.now();
        let assigned = self
            .services
            .central_call(now, self.c.vm_assign_svc, self.c.latency);
        let k = self.progress[mapper] as u64;
        let entry = LogEntry {
            version: Version::new(k + 1),
            blocks: BlockRange::new(k, k + 1),
            cap_before: if k == 0 { 0 } else { k.next_power_of_two() },
            cap_after: (k + 1).next_power_of_two(),
            size_after: (k + 1) * self.c.block_bytes,
        };
        let puts =
            self.services
                .meta_parallel(assigned, shape::nodes_created(&entry), self.c.latency);
        self.progress[mapper] += 1;
        sched.schedule_at(puts + self.c.rtt(), move |w: &mut RtwWorld, s| {
            w.next_chunk(s, mapper)
        });
    }
}

/// Simulates one RandomTextWriter job; returns completion time in seconds.
pub fn rtw_job_secs(c: &Constants, backend: Backend, mappers: usize, total_bytes: u64) -> f64 {
    assert!((1..=RTW_NODES).contains(&mappers));
    let chunks_per_mapper = ((total_bytes / mappers as u64) as f64 / c.block_bytes as f64)
        .round()
        .max(1.0) as usize;
    let mut sim = Sim::new(RtwWorld::new(
        c.clone(),
        backend,
        mappers,
        chunks_per_mapper,
    ));
    for m in 0..mappers {
        // Heartbeat-staggered dispatch plus the per-task JVM spawn.
        let stagger =
            SimDuration::from_millis((m as u64 * 137) % sim.world.c.heartbeat.as_millis());
        sim.schedule_in(stagger + c.task_overhead, move |w: &mut RtwWorld, s| {
            w.next_chunk(s, m)
        });
    }
    sim.run_until_idle();
    let makespan = sim
        .world
        .done_at
        .iter()
        .map(|d| d.expect("mapper finished"))
        .max()
        .expect("at least one mapper");
    (makespan + c.job_overhead).as_secs_f64()
}

/// Reproduces Fig. 6(a): job completion time vs data generated per mapper
/// (total fixed at 6.4 GB).
pub fn run_rtw(c: &Constants, mapper_counts: &[usize]) -> Figure {
    let total: u64 = 6_871_947_674; // 6.4 GB
    let mut fig = Figure::new(
        "Fig. 6(a)",
        "RandomTextWriter: job completion time, 6.4 GB total output",
        "data per mapper (GB)",
        "job completion time (s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        let mut points: Vec<(f64, f64)> = mapper_counts
            .iter()
            .map(|&m| {
                let per_mapper_gb = 6.4 / m as f64;
                (per_mapper_gb, rtw_job_secs(c, backend, m, total))
            })
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        series.points = points;
        fig.series.push(series);
    }
    fig
}

/// The paper's sweep: 50 mappers (128 MB each) → 1 mapper (6.4 GB).
pub fn rtw_paper_mappers() -> Vec<usize> {
    vec![50, 25, 10, 5, 2, 1]
}

// ---------------------------------------------------------------------------
// Fig. 6(b): distributed grep
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct GTok {
    task: usize,
    host: usize,
    started: SimTime,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum TaskState {
    Pending,
    Running,
    Done,
}

struct GrepWorld {
    net: FlowNet<GTok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    backend: Backend,
    services: Services,
    /// Input-chunk host per task.
    task_host: Vec<usize>,
    state: Vec<TaskState>,
    free_slots: Vec<u8>,
    /// Which tracker runs each task (for slot release).
    assigned_to: Vec<usize>,
    remaining: usize,
    local_maps: usize,
    maps_done_at: Option<SimTime>,
}

impl NetWorld for GrepWorld {
    type Token = GTok;
    fn net_mut(&mut self) -> &mut FlowNet<GTok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: GTok) {
        let disk_done = self.disks[tok.host].submit(tok.started, self.c.block_bytes);
        let data_at = disk_done.max(sched.now());
        let scan = SimDuration::from_secs_f64(self.c.block_bytes as f64 / self.c.grep_scan_bps);
        sched.schedule_at(data_at + scan, move |w: &mut GrepWorld, s| {
            w.finish_task(s, tok.task)
        });
    }
}

impl GrepWorld {
    fn new(c: Constants, backend: Backend, n_chunks: usize, seed: u64) -> Self {
        // Input layout: the boot file was written from a non-colocated
        // client (§V-G), so HDFS spreads sticky-randomly, BSFS round-robin.
        let mut placer = Placer::new(policy_for(&c, backend), seed);
        let loads = vec![0u64; GREP_NODES];
        let task_host: Vec<usize> = match backend {
            Backend::Bsfs => (0..n_chunks).map(|i| (i + 13) % GREP_NODES).collect(),
            Backend::Hdfs => (0..n_chunks).map(|_| placer.pick(&loads, &[])).collect(),
        };
        let meta_shards = if backend == Backend::Bsfs {
            c.meta_shards
        } else {
            0
        };
        let services = Services::new(&c, backend, meta_shards);
        Self {
            net: FlowNet::new(GREP_NODES, NicSpec::symmetric(c.nic_bps)),
            disks: (0..GREP_NODES)
                .map(|_| simnet::Disk::new(c.disk_read_bps))
                .collect(),
            c,
            backend,
            services,
            state: vec![TaskState::Pending; n_chunks],
            assigned_to: vec![0; n_chunks],
            task_host,
            free_slots: vec![SLOTS; GREP_NODES],
            remaining: n_chunks,
            local_maps: 0,
            maps_done_at: None,
        }
    }

    /// One tasktracker heartbeat: 0.20 assigns at most *one* new task per
    /// tracker per heartbeat, preferring node-local tasks (greedy, no
    /// delay scheduling).
    fn heartbeat(&mut self, sched: &mut Scheduler<Self>, tracker: usize) {
        if self.remaining == 0 {
            return;
        }
        if self.free_slots[tracker] > 0 {
            let local = (0..self.state.len())
                .find(|&t| self.state[t] == TaskState::Pending && self.task_host[t] == tracker);
            let pick = local
                .or_else(|| (0..self.state.len()).find(|&t| self.state[t] == TaskState::Pending));
            if let Some(task) = pick {
                self.state[task] = TaskState::Running;
                self.assigned_to[task] = tracker;
                self.free_slots[tracker] -= 1;
                if local.is_some() {
                    self.local_maps += 1;
                }
                self.launch_task(sched, task, tracker);
            }
        }
        let next = sched.now() + self.c.heartbeat;
        sched.schedule_at(next, move |w: &mut GrepWorld, s| w.heartbeat(s, tracker));
    }

    fn launch_task(&mut self, sched: &mut Scheduler<Self>, task: usize, tracker: usize) {
        // JVM spawn + task init, then open: one central query (namenode /
        // version manager), plus the BSFS tree descent.
        let now = sched.now() + self.c.task_overhead;
        let opened = self
            .services
            .central_call(now, self.c.nn_svc, self.c.latency);
        let ready = match self.backend {
            Backend::Hdfs => opened,
            Backend::Bsfs => {
                let cap = (self.task_host.len() as u64).next_power_of_two();
                let hops = shape::tree_depth(cap) as u64 + 1;
                self.services.meta_sequential(opened, hops, self.c.latency)
            }
        };
        let host = self.task_host[task];
        sched.schedule_at(ready, move |w: &mut GrepWorld, s| {
            let scan = SimDuration::from_secs_f64(w.c.block_bytes as f64 / w.c.grep_scan_bps);
            if host == tracker {
                // Local map: read from the node's own disk.
                let disk_done = w.disks[host].submit(s.now(), w.c.block_bytes);
                s.schedule_at(disk_done + scan, move |w: &mut GrepWorld, s| {
                    w.finish_task(s, task)
                });
            } else {
                // Remote map: pull the chunk over the network.
                let tok = GTok {
                    task,
                    host,
                    started: s.now(),
                };
                start_flow(
                    w,
                    s,
                    NodeId::new(host as u64),
                    NodeId::new(tracker as u64),
                    w.c.block_bytes,
                    tok,
                );
            }
        });
    }

    fn finish_task(&mut self, sched: &mut Scheduler<Self>, task: usize) {
        debug_assert_eq!(self.state[task], TaskState::Running);
        self.state[task] = TaskState::Done;
        self.free_slots[self.assigned_to[task]] += 1;
        self.remaining -= 1;
        if self.remaining == 0 {
            self.maps_done_at = Some(sched.now());
        }
    }
}

/// Outcome of one grep job simulation.
#[derive(Clone, Copy, Debug)]
pub struct GrepOutcome {
    /// Completion time in seconds (maps + reduce + job overhead).
    pub secs: f64,
    /// Fraction of maps that were data-local.
    pub locality: f64,
}

/// Simulates one distributed-grep job over `n_chunks` input chunks.
pub fn grep_job(c: &Constants, backend: Backend, n_chunks: usize, seed: u64) -> GrepOutcome {
    let mut sim = Sim::new(GrepWorld::new(c.clone(), backend, n_chunks, seed));
    for tracker in 0..GREP_NODES {
        // Staggered heartbeats, as in a real cluster.
        // Scrambled phases: real tasktrackers do not heartbeat in node-id
        // order, and ordered phases would let idle trackers steal every
        // local task 20 ms before its owner's first heartbeat.
        let phase = SimDuration::from_millis(
            ((tracker as u64 * 7919) % GREP_NODES as u64) * sim.world.c.heartbeat.as_millis()
                / GREP_NODES as u64,
        );
        sim.schedule_in(phase, move |w: &mut GrepWorld, s| w.heartbeat(s, tracker));
    }
    sim.run_until_idle();
    let maps_done = sim.world.maps_done_at.expect("all maps finished");
    let total = maps_done + c.reduce_phase + c.job_overhead;
    GrepOutcome {
        secs: total.as_secs_f64(),
        locality: sim.world.local_maps as f64 / n_chunks as f64,
    }
}

/// Reproduces Fig. 6(b): grep job completion time vs input size (GB).
pub fn run_grep(c: &Constants, sizes_gb: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 6(b)",
        "Distributed grep: job completion time vs input size",
        "total text size to be searched (GB)",
        "job completion time (s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &gb in sizes_gb {
            let n_chunks =
                ((gb * 1024.0 * 1024.0 * 1024.0) / c.block_bytes as f64).round() as usize;
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| grep_job(c, backend, n_chunks, 0xF166B + rep).secs)
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(gb, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's grep x grid: 6.4 → 12.8 GB in 1.6 GB increments.
pub fn grep_paper_sizes() -> Vec<f64> {
    vec![6.4, 8.0, 9.6, 11.2, 12.8]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtw_bsfs_beats_hdfs_with_growing_gain() {
        let c = Constants::default();
        let total = 6_871_947_674u64;
        let gain = |m: usize| {
            let h = rtw_job_secs(&c, Backend::Hdfs, m, total);
            let b = rtw_job_secs(&c, Backend::Bsfs, m, total);
            (h - b) / h
        };
        let g50 = gain(50);
        let g1 = gain(1);
        // Paper: 7 % at 50 mappers → 11 % at 1 mapper.
        assert!(g50 > 0.02, "BSFS must win at 50 mappers: gain {g50:.3}");
        assert!(g1 > 0.06, "BSFS must win clearly at 1 mapper: gain {g1:.3}");
        assert!(
            g1 > g50,
            "gain grows as mappers decrease: {g50:.3} → {g1:.3}"
        );
    }

    #[test]
    fn rtw_single_mapper_time_in_paper_band() {
        // Paper Fig. 6(a): a single mapper writing 6.4 GB takes ≈ 200–250 s.
        let c = Constants::default();
        let h = rtw_job_secs(&c, Backend::Hdfs, 1, 6_871_947_674);
        let b = rtw_job_secs(&c, Backend::Bsfs, 1, 6_871_947_674);
        assert!((180.0..320.0).contains(&h), "HDFS 1 mapper: {h:.0}s");
        assert!((160.0..300.0).contains(&b), "BSFS 1 mapper: {b:.0}s");
    }

    #[test]
    fn grep_bsfs_wins_and_gap_holds_as_input_grows() {
        let c = Constants::default();
        let g64 = (
            grep_job(&c, Backend::Hdfs, 100, 1).secs,
            grep_job(&c, Backend::Bsfs, 100, 1).secs,
        );
        let g128 = (
            grep_job(&c, Backend::Hdfs, 200, 1).secs,
            grep_job(&c, Backend::Bsfs, 200, 1).secs,
        );
        let gain_64 = (g64.0 - g64.1) / g64.0;
        let gain_128 = (g128.0 - g128.1) / g128.0;
        // Paper: 35 % at 6.4 GB, 38 % at 12.8 GB.
        assert!(gain_64 > 0.15, "gain at 6.4 GB: {gain_64:.2} ({g64:?})");
        assert!(
            gain_128 >= gain_64 - 0.03,
            "gap must not shrink: {gain_64:.2} → {gain_128:.2}"
        );
    }

    #[test]
    fn grep_locality_tracks_placement_quality() {
        let c = Constants::default();
        let b = grep_job(&c, Backend::Bsfs, 150, 2);
        let h = grep_job(&c, Backend::Hdfs, 150, 2);
        assert!(
            b.locality > 0.9,
            "balanced layout → nearly all local: {:.2}",
            b.locality
        );
        assert!(
            h.locality < b.locality,
            "skewed layout loses locality: {:.2}",
            h.locality
        );
    }
}
