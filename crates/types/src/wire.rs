//! Dependency-free binary wire codec primitives.
//!
//! The RPC backend (`blobseer-rpc`) serializes every port call into
//! length-prefixed frames built from three primitives: LEB128 varints,
//! length-prefixed byte strings, and single bytes. Those primitives — and
//! the codec for [`Error`], which must survive a wire round-trip so service
//! failures propagate to remote clients as themselves rather than degrading
//! into transport errors — live here, next to the types they serialize.
//! Domain types owned by `blobseer-core` (tree nodes, tickets, log chains)
//! get their codecs in `blobseer-rpc`, built on these primitives.
//!
//! Malformed input never panics: every decode returns
//! [`Error::Transport`], so a corrupt frame surfaces as a transport
//! failure on the connection that produced it.

use crate::error::{Error, Result};

/// Writes wire primitives into a growing buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends an unsigned LEB128 varint (1–10 bytes).
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` (as a varint).
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_slice(s.as_bytes());
    }

    /// Appends an [`Error`], tag plus payload; [`WireReader::get_error`]
    /// reconstructs the exact variant.
    pub fn put_error(&mut self, e: &Error) {
        match e {
            Error::NoSuchBlob(b) => {
                self.put_u8(0);
                self.put_u64(*b);
            }
            Error::NoSuchVersion { blob, version } => {
                self.put_u8(1);
                self.put_u64(*blob);
                self.put_u64(*version);
            }
            Error::VersionNotRevealed { blob, version } => {
                self.put_u8(2);
                self.put_u64(*blob);
                self.put_u64(*version);
            }
            Error::OutOfBounds {
                requested_end,
                snapshot_size,
            } => {
                self.put_u8(3);
                self.put_u64(*requested_end);
                self.put_u64(*snapshot_size);
            }
            Error::MissingMetadata(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Error::MetadataConflict(s) => {
                self.put_u8(5);
                self.put_str(s);
            }
            Error::MissingBlock(b) => {
                self.put_u8(6);
                self.put_u64(*b);
            }
            Error::NoProviderAvailable(s) => {
                self.put_u8(7);
                self.put_str(s);
            }
            Error::NotFound(s) => {
                self.put_u8(8);
                self.put_str(s);
            }
            Error::AlreadyExists(s) => {
                self.put_u8(9);
                self.put_str(s);
            }
            Error::NotADirectory(s) => {
                self.put_u8(10);
                self.put_str(s);
            }
            Error::DirectoryNotEmpty(s) => {
                self.put_u8(11);
                self.put_str(s);
            }
            Error::InvalidPath(s) => {
                self.put_u8(12);
                self.put_str(s);
            }
            Error::LeaseConflict(s) => {
                self.put_u8(13);
                self.put_str(s);
            }
            Error::Unsupported(s) => {
                self.put_u8(14);
                self.put_str(s);
            }
            Error::WriteAborted(s) => {
                self.put_u8(15);
                self.put_str(s);
            }
            Error::StreamClosed => self.put_u8(16),
            Error::Timeout(s) => {
                self.put_u8(17);
                self.put_str(s);
            }
            Error::Transport(s) => {
                self.put_u8(18);
                self.put_str(s);
            }
            Error::Storage(s) => {
                self.put_u8(20);
                self.put_str(s);
            }
            Error::Internal(s) => {
                self.put_u8(19);
                self.put_str(s);
            }
        }
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads wire primitives from a byte slice. All methods fail with
/// [`Error::Transport`] on truncated or malformed input.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// The error every truncated read maps to.
fn truncated(what: &str) -> Error {
    Error::Transport(format!("wire: truncated {what}"))
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| truncated("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a bool (rejecting anything but 0/1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Transport(format!("wire: invalid bool byte {b}"))),
        }
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_u64(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(Error::Transport("wire: varint overflows u64".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a `u32` varint, rejecting out-of-range values.
    pub fn get_u32(&mut self) -> Result<u32> {
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| Error::Transport(format!("wire: {v} overflows u32")))
    }

    /// Reads a length-prefixed byte string (borrowed from the input).
    pub fn get_slice(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u64()? as usize;
        if self.remaining() < len {
            return Err(truncated("byte string"));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let s = self.get_slice()?;
        String::from_utf8(s.to_vec())
            .map_err(|_| Error::Transport("wire: invalid UTF-8 string".into()))
    }

    /// Reads an [`Error`] encoded by [`WireWriter::put_error`].
    pub fn get_error(&mut self) -> Result<Error> {
        let tag = self.get_u8()?;
        Ok(match tag {
            0 => Error::NoSuchBlob(self.get_u64()?),
            1 => Error::NoSuchVersion {
                blob: self.get_u64()?,
                version: self.get_u64()?,
            },
            2 => Error::VersionNotRevealed {
                blob: self.get_u64()?,
                version: self.get_u64()?,
            },
            3 => Error::OutOfBounds {
                requested_end: self.get_u64()?,
                snapshot_size: self.get_u64()?,
            },
            4 => Error::MissingMetadata(self.get_str()?),
            5 => Error::MetadataConflict(self.get_str()?),
            6 => Error::MissingBlock(self.get_u64()?),
            7 => Error::NoProviderAvailable(self.get_str()?),
            8 => Error::NotFound(self.get_str()?),
            9 => Error::AlreadyExists(self.get_str()?),
            10 => Error::NotADirectory(self.get_str()?),
            11 => Error::DirectoryNotEmpty(self.get_str()?),
            12 => Error::InvalidPath(self.get_str()?),
            13 => Error::LeaseConflict(self.get_str()?),
            14 => Error::Unsupported(intern_unsupported(self.get_str()?)),
            15 => Error::WriteAborted(self.get_str()?),
            16 => Error::StreamClosed,
            17 => Error::Timeout(self.get_str()?),
            18 => Error::Transport(self.get_str()?),
            19 => Error::Internal(self.get_str()?),
            20 => Error::Storage(self.get_str()?),
            t => return Err(Error::Transport(format!("wire: unknown error tag {t}"))),
        })
    }

    /// Asserts the whole input was consumed (trailing garbage is a framing
    /// bug on the peer).
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Transport(format!(
                "wire: {} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Interns the message of a decoded [`Error::Unsupported`].
///
/// The variant carries `&'static str`, so decoding needs a static
/// allocation. Honest peers only ever send a handful of fixed operation
/// names; interning makes repeats free, and the table is capped so a
/// hostile peer flooding unique messages cannot grow memory without
/// bound — on overflow (or an implausibly long message) the decode
/// collapses to a fixed placeholder rather than leaking.
fn intern_unsupported(msg: String) -> &'static str {
    const MAX_INTERNED: usize = 64;
    const MAX_LEN: usize = 128;
    static TABLE: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new()); // lint:allow(no-std-sync): blobseer-types stays dependency-free; bounded, leaf-level table
    if msg.len() > MAX_LEN {
        return "unsupported operation (message too long to preserve)";
    }
    let mut table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&interned) = table.iter().find(|&&s| s == msg) {
        return interned;
    }
    if table.len() >= MAX_INTERNED {
        return "unsupported operation (message table full)";
    }
    let interned: &'static str = Box::leak(msg.into_boxed_str());
    table.push(interned);
    interned
}

/// Every [`Error`] variant, with representative payloads — the fixture
/// behind "all error variants survive a wire round-trip" assertions here
/// and in the RPC equivalence tests.
pub fn error_fixture() -> Vec<Error> {
    vec![
        Error::NoSuchBlob(7),
        Error::NoSuchVersion {
            blob: 1,
            version: 9,
        },
        Error::VersionNotRevealed {
            blob: 2,
            version: 3,
        },
        Error::OutOfBounds {
            requested_end: u64::MAX,
            snapshot_size: 100,
        },
        Error::MissingMetadata("blob#1/v2@(0,4)".into()),
        Error::MetadataConflict("blob#1/v2@(0,1)".into()),
        Error::MissingBlock(42),
        Error::NoProviderAvailable("replication 3 exceeds provider count 2".into()),
        Error::NotFound("/a/b".into()),
        Error::AlreadyExists("/a".into()),
        Error::NotADirectory("/f".into()),
        Error::DirectoryNotEmpty("/d".into()),
        Error::InvalidPath("../x".into()),
        Error::LeaseConflict("/locked".into()),
        Error::Unsupported("append"),
        Error::WriteAborted("zero-length writes are rejected".into()),
        Error::StreamClosed,
        Error::Timeout("reveal of blob#1 v4".into()),
        Error::Transport("connection reset by peer".into()),
        Error::Internal("double commit of blob#1 v1".into()),
        Error::Storage("volume frame crc mismatch at offset 4096".into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip_across_magnitudes() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = WireWriter::new();
        for &v in &values {
            w.put_u64(v);
        }
        let mut r = WireReader::new(w.as_slice());
        for &v in &values {
            assert_eq!(r.get_u64().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn slices_strings_and_bools_roundtrip() {
        let mut w = WireWriter::new();
        w.put_slice(b"hello");
        w.put_str("wörld");
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(u32::MAX);
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.get_slice().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), u32::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn every_error_variant_roundtrips() {
        for e in error_fixture() {
            let mut w = WireWriter::new();
            w.put_error(&e);
            let mut r = WireReader::new(w.as_slice());
            assert_eq!(r.get_error().unwrap(), e);
            r.finish().unwrap();
        }
    }

    #[test]
    fn unsupported_decode_interns_and_bounds_memory() {
        // Repeats of the same message intern to one static allocation.
        let decode = |msg: &str| {
            let mut w = WireWriter::new();
            w.put_u8(14);
            w.put_str(msg);
            match WireReader::new(w.as_slice()).get_error().unwrap() {
                Error::Unsupported(s) => s,
                e => panic!("wrong variant: {e}"),
            }
        };
        let a = decode("append-intern-test");
        let b = decode("append-intern-test");
        assert!(std::ptr::eq(a, b), "repeat decodes must share the intern");
        // An implausibly long message collapses to a placeholder instead
        // of leaking attacker-controlled bytes.
        let long = "x".repeat(1000);
        assert!(decode(&long).contains("too long"));
    }

    #[test]
    fn malformed_input_fails_with_transport_errors() {
        // Truncated varint.
        let mut r = WireReader::new(&[0x80]);
        assert!(matches!(r.get_u64(), Err(Error::Transport(_))));
        // Varint overflowing u64 (11 continuation bytes).
        let mut r = WireReader::new(&[0xFF; 11]);
        assert!(matches!(r.get_u64(), Err(Error::Transport(_))));
        // Byte string longer than the buffer.
        let mut w = WireWriter::new();
        w.put_u64(100);
        let mut r = WireReader::new(w.as_slice());
        assert!(matches!(r.get_slice(), Err(Error::Transport(_))));
        // Unknown error tag.
        let mut r = WireReader::new(&[200]);
        assert!(matches!(r.get_error(), Err(Error::Transport(_))));
        // Invalid bool.
        let mut r = WireReader::new(&[7]);
        assert!(matches!(r.get_bool(), Err(Error::Transport(_))));
        // Trailing bytes.
        let r = WireReader::new(&[1, 2]);
        assert!(matches!(r.finish(), Err(Error::Transport(_))));
    }

    #[test]
    fn u32_range_is_enforced() {
        let mut w = WireWriter::new();
        w.put_u64(u32::MAX as u64 + 1);
        let mut r = WireReader::new(w.as_slice());
        assert!(matches!(r.get_u32(), Err(Error::Transport(_))));
    }
}
