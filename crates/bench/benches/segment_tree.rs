//! Microbenchmarks of the versioned segment tree: the cost of publishing
//! write metadata and locating blocks, as a function of file size and
//! update width. These are the O(log n) paths the paper's decentralized
//! metadata design relies on (§III-A.3).

use blobseer_core::dht::MetaDht;
use blobseer_core::gc::GcTracker;
use blobseer_core::meta::key::BlockRange;
use blobseer_core::meta::log::{LogChain, LogEntry, LogSegment};
use blobseer_core::meta::node::BlockDescriptor;
use blobseer_core::meta::tree::TreeStore;
use blobseer_core::ports::{GcService, MetaStore};
use blobseer_core::stats::EngineStats;
use blobseer_core::FanoutExecutor;
use blobseer_types::{BlobId, BlockId, Version};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

struct Fx {
    dht: Arc<dyn MetaStore>,
    gc: Arc<dyn GcService>,
    stats: EngineStats,
    exec: FanoutExecutor,
    log: Arc<RwLock<Vec<LogEntry>>>,
    blob: BlobId,
}

impl Fx {
    fn new() -> Self {
        Self {
            dht: Arc::new(MetaDht::new(20, 1)),
            gc: Arc::new(GcTracker::new()),
            stats: EngineStats::new(),
            exec: FanoutExecutor::new(1),
            log: Arc::new(RwLock::new(Vec::new())),
            blob: BlobId::new(1),
        }
    }

    fn chain(&self) -> LogChain {
        LogChain::new(vec![LogSegment::full(
            self.blob,
            Arc::clone(&self.log),
            Version::ZERO,
            Version::new(u64::MAX),
        )])
    }

    fn write(&self, v: u64, start: u64, end: u64, cap: u64) {
        let entry = LogEntry {
            version: Version::new(v),
            blocks: BlockRange::new(start, end),
            cap_before: if v == 1 { 0 } else { cap },
            cap_after: cap,
            size_after: cap * 64,
        };
        self.log.write().push(entry);
        let leaves: HashMap<u64, BlockDescriptor> = (start..end)
            .map(|b| {
                (
                    b,
                    BlockDescriptor {
                        block_id: BlockId::new(v * 100_000 + b),
                        providers: vec![0],
                        len: 64,
                    },
                )
            })
            .collect();
        let store = TreeStore {
            dht: &self.dht,
            gc: &self.gc,
            stats: &self.stats,
            exec: &self.exec,
        };
        store
            .publish_write(self.blob, &entry, &self.chain(), &leaves)
            .unwrap();
    }
}

/// Publishing a full initial tree of `n` blocks.
fn bench_publish_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_tree/publish_full");
    for &blocks in &[64u64, 256, 1024] {
        g.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                b.iter(|| {
                    let fx = Fx::new();
                    fx.write(1, 0, blocks, blocks);
                    black_box(fx.dht.node_count())
                });
            },
        );
    }
    g.finish();
}

/// Publishing a single-block overwrite into an existing tree (the per-append
/// cost in steady state — one root-to-leaf path).
fn bench_publish_single_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_tree/publish_one_block_update");
    for &blocks in &[64u64, 1024] {
        g.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                let fx = Fx::new();
                fx.write(1, 0, blocks, blocks);
                let mut v = 2u64;
                b.iter(|| {
                    fx.write(v, v % blocks, v % blocks + 1, blocks);
                    v += 1;
                });
            },
        );
    }
    g.finish();
}

/// Locating one block vs the whole range in a 1024-block snapshot.
fn bench_locate(c: &mut Criterion) {
    let fx = Fx::new();
    let blocks = 1024;
    fx.write(1, 0, blocks, blocks);
    let store = TreeStore {
        dht: &fx.dht,
        gc: &fx.gc,
        stats: &fx.stats,
        exec: &fx.exec,
    };
    let mut g = c.benchmark_group("segment_tree/locate");
    g.bench_function("one_block", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % blocks;
            black_box(
                store
                    .locate(fx.blob, Version::new(1), blocks, BlockRange::new(i, i + 1))
                    .unwrap(),
            )
        });
    });
    g.bench_function("full_range", |b| {
        b.iter(|| {
            black_box(
                store
                    .locate(fx.blob, Version::new(1), blocks, BlockRange::new(0, blocks))
                    .unwrap(),
            )
        });
    });
    g.finish();
}

/// The pure shape arithmetic used by the experiment models.
fn bench_shape(c: &mut Criterion) {
    use blobseer_core::meta::shape;
    c.bench_function("segment_tree/shape_nodes_created", |b| {
        let entry = LogEntry {
            version: Version::new(5),
            blocks: BlockRange::new(100, 101),
            cap_before: 1024,
            cap_after: 1024,
            size_after: 1024 * 64,
        };
        b.iter(|| black_box(shape::nodes_created(black_box(&entry))));
    });
}

criterion_group!(
    benches,
    bench_publish_full,
    bench_publish_single_block,
    bench_locate,
    bench_shape
);
criterion_main!(benches);
