//! Per-op vs vectored port traffic over the RPC loopback cluster.
//!
//! The vectored port API exists so the data phase, tree publish and
//! descent pay one wire frame per batch instead of one per item. This
//! bench measures that directly at the port boundary: storing and
//! fetching a 64-block write's worth of blocks through the
//! `RpcBlockStore` adapter, once as 64 single-op round trips and once as
//! one `put_many`/`get_many` per provider — real sockets, real frames,
//! laptop-scale 4 KB blocks (the round trips under comparison are
//! size-independent; the paper's 64 MB blocks only add stream time on
//! both sides).

//! Two follow-on groups measure this PR's transport work at the same
//! boundary: `rpc_mux` drives 1000 simulated client requests through a
//! fixed per-endpoint connection budget (the multiplexed frames are what
//! keep a 1-connection budget from serialising into 1000 blocking round
//! trips), and `rpc_cache` compares a hot-snapshot re-read served by the
//! client-side LRU tier against the same fetch over the wire.

use blobseer_core::ports::BlockStore;
use blobseer_core::EngineStats;
use blobseer_rpc::{LoopbackCluster, RpcBlockStore};
use blobseer_types::{BlobSeerConfig, BlockId, NodeId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

const PROVIDERS: usize = 4;
const BLOCKS: u64 = 64;
const BLOCK_BYTES: usize = 4096;

/// The provider each block of the "write" lands on (round-robin, like the
/// provider manager's default placement).
fn provider_of(block: u64) -> usize {
    (block % PROVIDERS as u64) as usize
}

fn bench_rpc_batching(c: &mut Criterion) {
    let cluster = LoopbackCluster::boot(
        BlobSeerConfig::small_for_tests().with_block_size(BLOCK_BYTES as u64),
        PROVIDERS,
    )
    .unwrap();
    let sys = cluster.deploy().unwrap();
    let store = sys.providers();
    let payload = Bytes::from(vec![0xB1u8; BLOCK_BYTES]);

    // --- write side: 64 blocks to 4 providers ------------------------------
    let mut g = c.benchmark_group("rpc_batching/store_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    let mut round = 0u64;
    g.bench_function("per_op", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            for k in 0..BLOCKS {
                store
                    .put(provider_of(k), BlockId::new(base + k), payload.clone())
                    .unwrap();
            }
            // Keep the servers from growing without bound across samples.
            for p in 0..PROVIDERS {
                let ids: Vec<BlockId> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| BlockId::new(base + k))
                    .collect();
                let _ = store.delete_many(p, &ids);
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            for p in 0..PROVIDERS {
                let items: Vec<(BlockId, Bytes)> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| (BlockId::new(base + k), payload.clone()))
                    .collect();
                for result in store.put_many(p, &items) {
                    result.unwrap();
                }
                let ids: Vec<BlockId> = items.iter().map(|&(id, _)| id).collect();
                let _ = store.delete_many(p, &ids);
            }
        });
    });
    g.finish();

    // --- read side: fetch the same 64 blocks back --------------------------
    let base = u64::MAX / 2;
    for k in 0..BLOCKS {
        store
            .put(provider_of(k), BlockId::new(base + k), payload.clone())
            .unwrap();
    }
    let mut g = c.benchmark_group("rpc_batching/fetch_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    g.bench_function("per_op", |b| {
        b.iter(|| {
            for k in 0..BLOCKS {
                black_box(store.get(provider_of(k), BlockId::new(base + k)).unwrap());
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            for p in 0..PROVIDERS {
                let ids: Vec<BlockId> = (0..BLOCKS)
                    .filter(|&k| provider_of(k) == p)
                    .map(|k| BlockId::new(base + k))
                    .collect();
                for result in store.get_many(p, &ids) {
                    black_box(result.unwrap());
                }
            }
        });
    });
    g.finish();

    // --- mux pipelining: 1000 simulated client requests, fixed sockets -----
    // 8 worker threads replay 125 single-block fetches each — 1000
    // logically independent client requests — through one shared adapter.
    // The budget sweep shows what multiplexing buys: even a single
    // connection carries all 1000 requests concurrently instead of
    // falling back to serialized checkout round trips.
    let mut g = c.benchmark_group("rpc_mux/pipelined_1000_requests");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(1000 * BLOCK_BYTES as u64));
    for budget in [1usize, 4] {
        let stats = Arc::new(EngineStats::new());
        let shared =
            Arc::new(RpcBlockStore::connect_with(cluster.block_addrs(), stats, budget).unwrap());
        g.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                let threads: Vec<_> = (0..8u64)
                    .map(|t| {
                        let store = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            for i in 0..125u64 {
                                let k = (t * 125 + i) % BLOCKS;
                                black_box(
                                    store.get(provider_of(k), BlockId::new(base + k)).unwrap(),
                                );
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
            });
        });
    }
    g.finish();

    // --- cache tier: a hot snapshot re-read vs the wire --------------------
    // Same 64-block fetch as `rpc_batching/fetch_64_blocks`, but through a
    // deployment with the read cache enabled. The puts write-allocate, so
    // every fetch here is a cache hit — the delta against the `wire`
    // baseline is the round-trip cost the cache removes for fig-4-style
    // many-readers-one-snapshot workloads.
    let cached_cluster = LoopbackCluster::boot(
        BlobSeerConfig::small_for_tests()
            .with_block_size(BLOCK_BYTES as u64)
            .with_read_cache_bytes(64 << 20),
        PROVIDERS,
    )
    .unwrap();
    let cached_sys = cached_cluster.deploy().unwrap();
    let cached_store = cached_sys.providers();
    for k in 0..BLOCKS {
        cached_store
            .put(provider_of(k), BlockId::new(base + k), payload.clone())
            .unwrap();
    }
    let mut g = c.benchmark_group("rpc_cache/fetch_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    for (name, st) in [("wire", store), ("warm_cache", cached_store)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                for p in 0..PROVIDERS {
                    let ids: Vec<BlockId> = (0..BLOCKS)
                        .filter(|&k| provider_of(k) == p)
                        .map(|k| BlockId::new(base + k))
                        .collect();
                    for result in st.get_many(p, &ids) {
                        black_box(result.unwrap());
                    }
                }
            });
        });
    }
    g.finish();
}

/// Client-side fan-out vs a serial executor, end to end: the same
/// 64-block write and read driven through the full protocol (data phase,
/// tree publish, descent, fetch) against 4- and 8-provider clusters, once
/// with `client_io_threads = 1` (every batch inline, one at a time) and
/// once with one thread per provider. The delta is the overlap the
/// fan-out executor buys on the multi-provider hot paths — the bytes and
/// frame counts are identical by construction (see `tests/parallel_io.rs`).
fn bench_fanout(c: &mut Criterion) {
    let payload = vec![0xFAu8; BLOCKS as usize * BLOCK_BYTES];
    let setups: Vec<_> = [(4usize, 1usize), (4, 4), (8, 1), (8, 8)]
        .into_iter()
        .map(|(providers, threads)| {
            let cluster = LoopbackCluster::boot(
                BlobSeerConfig::small_for_tests()
                    .with_block_size(BLOCK_BYTES as u64)
                    .with_client_io_threads(threads),
                providers,
            )
            .unwrap();
            let sys = cluster.deploy().unwrap();
            let client = sys.client(NodeId::new(100));
            let mode = if threads == 1 { "serial" } else { "fanout" };
            (format!("{mode}_{providers}p"), cluster, client)
        })
        .collect();

    let mut g = c.benchmark_group("fanout/store_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    for (label, _cluster, client) in &setups {
        g.bench_function(label.clone(), |b| {
            b.iter(|| {
                let blob = client.create();
                client.write(blob, 0, &payload).unwrap();
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fanout/fetch_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    for (label, _cluster, client) in &setups {
        let blob = client.create();
        client.write(blob, 0, &payload).unwrap();
        g.bench_function(label.clone(), |b| {
            b.iter(|| {
                black_box(client.read(blob, None, 0, payload.len() as u64).unwrap());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rpc_batching, bench_fanout);
criterion_main!(benches);
