//! Quickstart: deploy BlobSeer, mount BSFS, write and read a file, look at
//! block locations — the five-minute tour of the public API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, NodeId};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};

fn main() {
    // 1. Deploy a BlobSeer system: 8 data providers, 4 metadata providers,
    //    64 KB blocks (the paper uses 64 MB — same code, bigger constant).
    let system = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(64 * 1024)
            .with_metadata_providers(4),
        8,
    );

    // 2. Put the BSFS file-system layer on top and mount it on a node.
    let cluster = BsfsCluster::new(system);
    let fs = cluster.mount(NodeId::new(0));

    // 3. Use it like a file system.
    fs.mkdirs("/data").unwrap();
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    write_file(&fs, "/data/hello.bin", &payload).unwrap();
    assert_eq!(read_fully(&fs, "/data/hello.bin").unwrap(), payload);
    println!(
        "wrote and read back {} bytes through {}",
        payload.len(),
        fs.backend_name()
    );

    // 4. Appends work — including from other nodes (HDFS 0.20 cannot do
    //    this at all, §V-F of the paper).
    let fs2 = cluster.mount(NodeId::new(5));
    let mut out = fs2.append("/data/hello.bin").unwrap();
    out.write(b"...and some appended bytes").unwrap();
    out.close().unwrap();
    println!(
        "appended; file is now {} bytes",
        fs.status("/data/hello.bin").unwrap().len
    );

    // 5. The locality API the Hadoop scheduler uses (§IV-C): where does
    //    each block live?
    println!("\nblock locations (round-robin striping):");
    for loc in fs.block_locations("/data/hello.bin", 0, u64::MAX).unwrap() {
        println!(
            "  bytes [{:>7}, {:>7})  on {:?}",
            loc.offset,
            loc.offset + loc.length,
            loc.hosts
        );
    }

    // 6. Engine statistics.
    let stats = cluster.system().stats().snapshot();
    println!(
        "\nengine stats: {} blocks written, {} metadata nodes published, {} versions assigned",
        stats.blocks_written, stats.meta_nodes_written, stats.versions_assigned
    );
}
