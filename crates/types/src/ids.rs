//! Strongly-typed identifiers.
//!
//! Using newtypes instead of bare integers prevents the classic confusion
//! between "version 3 of blob 7" and "blob 3 at version 7", at zero runtime
//! cost.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw integer id.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer id.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// Identifies a BLOB (Binary Large OBject) in the system (§III-A.1).
    ///
    /// Each BLOB is a huge, flat, versioned sequence of bytes. Ids are
    /// allocated by the version manager on `create`.
    BlobId,
    "blob#"
);

id_newtype!(
    /// Identifies a data block stored on a data provider.
    ///
    /// Block ids are globally unique: each write/append allocates fresh ids
    /// for the blocks of its differential patch, so no block is ever
    /// overwritten (the "no existing data is ever modified" invariant of
    /// §III-A.4).
    BlockId,
    "blk#"
);

id_newtype!(
    /// Identifies a physical node of the (simulated) cluster: a machine that
    /// may host a data provider, a metadata provider, a manager process, a
    /// Map/Reduce tasktracker, or a client.
    NodeId,
    "node#"
);

id_newtype!(
    /// Identifies a client process (used for diagnostics and for deriving
    /// deterministic per-client RNG streams in experiments).
    ClientId,
    "client#"
);

/// A snapshot version of a BLOB (§III-A.1).
///
/// Versions are assigned by the version manager in a strictly increasing
/// sequence per BLOB, starting at 1 for the first write; version 0 denotes the
/// empty BLOB that `create` produces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version of a freshly created, empty BLOB.
    pub const ZERO: Version = Version(0);

    /// Wraps a raw version number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw version number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next version in sequence.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The previous version, saturating at zero.
    #[inline]
    #[must_use]
    pub const fn prev(self) -> Self {
        Self(self.0.saturating_sub(1))
    }

    /// True for the empty-BLOB version.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    #[inline]
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        let b = BlobId::new(1);
        let n = NodeId::new(1);
        // These comparisons only compile within a type; raw values match.
        assert_eq!(b.raw(), n.raw());
        assert_eq!(format!("{b}"), "blob#1");
        assert_eq!(format!("{n}"), "node#1");
        assert_eq!(format!("{:?}", BlockId::new(9)), "blk#9");
        assert_eq!(format!("{}", ClientId::new(2)), "client#2");
    }

    #[test]
    fn version_sequence() {
        let v = Version::ZERO;
        assert!(v.is_zero());
        assert_eq!(v.next(), Version::new(1));
        assert_eq!(v.next().prev(), Version::ZERO);
        assert_eq!(Version::ZERO.prev(), Version::ZERO);
        assert_eq!(format!("{}", Version::new(4)), "v4");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(BlobId::new(1));
        set.insert(BlobId::new(1));
        set.insert(BlobId::new(2));
        assert_eq!(set.len(), 2);
        assert!(Version::new(3) < Version::new(10));
        assert!(NodeId::new(3) < NodeId::new(10));
    }

    #[test]
    fn from_u64_roundtrip() {
        assert_eq!(BlobId::from(7).raw(), 7);
        assert_eq!(Version::from(7).raw(), 7);
    }
}
