//! The metadata DHT: tree nodes distributed over metadata providers.
//!
//! "To favor efficient concurrent access to metadata, tree nodes are
//! distributed: they are stored on the metadata providers using a DHT"
//! (§III-A.3). Keys shard by hash; optional replication stores each node on
//! `k` consecutive buckets, which is the DHT-level fault tolerance the paper
//! mentions in §VI-B ("metadata is stored in a DHT … resilient to faults by
//! construction").

use crate::meta::key::NodeKey;
use crate::meta::node::TreeNode;
use crate::sharded::{stripe_runs, ShardedMap, DEFAULT_SHARDS};
use blobseer_types::{Error, Result};

/// One metadata provider: a shard of the DHT. Internally lock-striped so
/// concurrent writers publishing different tree nodes to the same provider
/// do not serialize on one lock.
#[derive(Debug)]
pub struct MetaProvider {
    map: ShardedMap<NodeKey, TreeNode>,
    puts: std::sync::atomic::AtomicU64,
    gets: std::sync::atomic::AtomicU64,
}

impl Default for MetaProvider {
    fn default() -> Self {
        Self::with_stripes(DEFAULT_SHARDS)
    }
}

impl MetaProvider {
    fn with_stripes(n_stripes: usize) -> Self {
        Self {
            map: ShardedMap::named(n_stripes, "meta_dht.map"),
            puts: std::sync::atomic::AtomicU64::new(0),
            gets: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Stores a node. Metadata, like data, is immutable: a re-put must carry
    /// identical content (replica retries, abort-repair idempotence). A
    /// conflicting re-put returns [`Error::MetadataConflict`] in **every**
    /// build profile and leaves the stored copy untouched — silently keeping
    /// either version would let two diverged writers both believe they
    /// published (the seed only `debug_assert`ed here, so release builds
    /// silently kept the old node).
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut map = self.map.shard_for(&key).write();
        if let Some(existing) = map.get(&key) {
            if existing != &node {
                return Err(Error::MetadataConflict(format!("{key:?}")));
            }
            return Ok(());
        }
        map.insert(key, node);
        Ok(())
    }

    /// Batched [`Self::put`]: each lock stripe is taken once per batch;
    /// items land in batch order within a stripe, so the per-item results
    /// match the equivalent sequence of single puts exactly.
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        self.puts
            .fetch_add(items.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let mut out: Vec<Result<()>> = (0..items.len()).map(|_| Ok(())).collect();
        for (stripe, range) in stripe_runs(&self.map, items.iter().map(|(k, _)| k)) {
            let mut map = self.map.shard_at(stripe).write();
            for i in range {
                let (key, node) = &items[i];
                match map.get(key) {
                    Some(existing) if existing != node => {
                        out[i] = Err(Error::MetadataConflict(format!("{key:?}")));
                    }
                    Some(_) => {}
                    None => {
                        map.insert(*key, node.clone());
                    }
                }
            }
        }
        out
    }

    fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.map.get_cloned(key)
    }

    /// Batched [`Self::get`], one read-lock acquisition per stripe.
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Option<TreeNode>> {
        self.gets
            .fetch_add(keys.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let mut out: Vec<Option<TreeNode>> = vec![None; keys.len()];
        for (stripe, range) in stripe_runs(&self.map, keys.iter()) {
            let map = self.map.shard_at(stripe).read();
            for i in range {
                out[i] = map.get(&keys[i]).cloned();
            }
        }
        out
    }

    /// Batched [`Self::delete`], one write-lock acquisition per stripe.
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<bool> {
        let mut out = vec![false; keys.len()];
        for (stripe, range) in stripe_runs(&self.map, keys.iter()) {
            let mut map = self.map.shard_at(stripe).write();
            for i in range {
                out[i] = map.remove(&keys[i]).is_some();
            }
        }
        out
    }

    /// Lookup without touching the op counters (internal validation reads).
    fn peek(&self, key: &NodeKey) -> Option<TreeNode> {
        self.map.get_cloned(key)
    }

    fn delete(&self, key: &NodeKey) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of nodes stored on this provider.
    pub fn node_count(&self) -> usize {
        self.map.len()
    }

    /// `(puts, gets)` served.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(std::sync::atomic::Ordering::Relaxed),
            self.gets.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

/// The distributed metadata store.
#[derive(Debug)]
pub struct MetaDht {
    shards: Vec<MetaProvider>,
    replication: usize,
}

impl MetaDht {
    /// A DHT over `n` metadata providers with `replication` copies per node.
    pub fn new(n: usize, replication: usize) -> Self {
        Self::with_stripes(n, replication, DEFAULT_SHARDS)
    }

    /// Same, with an explicit per-provider lock-stripe count (`1` = the
    /// seed's global-lock layout; see `tests/ports_equivalence.rs`).
    pub fn with_stripes(n: usize, replication: usize, n_stripes: usize) -> Self {
        assert!(n > 0, "need at least one metadata provider");
        assert!(
            (1..=n).contains(&replication),
            "metadata replication {replication} must be in 1..={n}"
        );
        Self {
            shards: (0..n)
                .map(|_| MetaProvider::with_stripes(n_stripes))
                .collect(),
            replication,
        }
    }

    /// Number of metadata providers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The primary shard index for a key.
    #[inline]
    pub fn shard_of(&self, key: &NodeKey) -> usize {
        (key.hash64() % self.shards.len() as u64) as usize
    }

    /// Stores a node on its `replication` home shards.
    ///
    /// The put is validated against **every** replica that already holds
    /// the key *before* anything is inserted: a conflicting re-put
    /// ([`Error::MetadataConflict`]) must not install the forged node on a
    /// replica that happens to lack the key (e.g. a crashed-and-restarted
    /// shard) while a surviving replica still serves the original — that
    /// would diverge the replicas and let `get` answer with either copy.
    /// A matching re-put, by contrast, re-populates missing replicas
    /// (per-replica idempotent, which is also the natural re-replication
    /// path after a shard crash). Each replica's own put re-validates
    /// under its stripe lock, so concurrent racing re-puts still cannot
    /// overwrite committed content.
    pub fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        let primary = self.shard_of(&key);
        // The divergence scenario needs a second replica; with replication
        // 1 the per-replica validation below already covers everything, so
        // skip the pre-pass on the hot single-replica publish path.
        if self.replication > 1 {
            for i in 0..self.replication {
                let shard = (primary + i) % self.shards.len();
                if let Some(existing) = self.shards[shard].peek(&key) {
                    if existing != node {
                        return Err(Error::MetadataConflict(format!("{key:?}")));
                    }
                }
            }
        }
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            self.shards[shard].put(key, node.clone())?;
        }
        Ok(())
    }

    /// Batched [`Self::put`] with per-item results, in input order.
    ///
    /// On the hot single-replica publish path the batch is grouped by home
    /// shard and each shard processes its group under one stripe lock per
    /// stripe touched. With `replication > 1` the batch falls back to
    /// sequential per-item puts: the cross-replica divergence validation
    /// must observe every earlier item's install before the next item's
    /// pre-pass, which a grouped apply cannot guarantee.
    pub fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        if self.replication > 1 {
            return items
                .iter()
                .map(|(key, node)| self.put(*key, node.clone()))
                .collect();
        }
        let mut out: Vec<Result<()>> = (0..items.len()).map(|_| Ok(())).collect();
        for (shard, range) in self.shard_groups(items.iter().map(|(k, _)| k)) {
            let group: Vec<(NodeKey, TreeNode)> = range.iter().map(|&i| items[i].clone()).collect();
            for (slot, result) in range.into_iter().zip(self.shards[shard].put_many(&group)) {
                out[slot] = result;
            }
        }
        out
    }

    /// Batched [`Self::get`] with per-item results, in input order. Single
    /// replica: grouped by home shard, one lock acquisition per stripe.
    pub fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        if self.replication > 1 {
            return keys.iter().map(|key| self.get(key)).collect();
        }
        let mut out: Vec<Result<TreeNode>> = keys
            .iter()
            .map(|key| Err(Error::MissingMetadata(format!("{key:?}"))))
            .collect();
        for (shard, range) in self.shard_groups(keys.iter()) {
            let group: Vec<NodeKey> = range.iter().map(|&i| keys[i]).collect();
            for (slot, found) in range.into_iter().zip(self.shards[shard].get_many(&group)) {
                if let Some(node) = found {
                    out[slot] = Ok(node);
                }
            }
        }
        out
    }

    /// Batched [`Self::delete`]: true per item if any replica existed.
    pub fn delete_many(&self, keys: &[NodeKey]) -> Vec<bool> {
        if self.replication > 1 {
            return keys.iter().map(|key| self.delete(key)).collect();
        }
        let mut out = vec![false; keys.len()];
        for (shard, range) in self.shard_groups(keys.iter()) {
            let group: Vec<NodeKey> = range.iter().map(|&i| keys[i]).collect();
            for (slot, existed) in range
                .into_iter()
                .zip(self.shards[shard].delete_many(&group))
            {
                out[slot] = existed;
            }
        }
        out
    }

    /// Groups batch item indices by primary shard, preserving input order
    /// within each group (groups in first-appearance order).
    fn shard_groups<'a>(
        &self,
        keys: impl Iterator<Item = &'a NodeKey>,
    ) -> Vec<(usize, Vec<usize>)> {
        crate::sharded::group_indices_by(keys, |key| self.shard_of(key))
    }

    /// Fetches a node, trying replicas in order.
    pub fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        let primary = self.shard_of(key);
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            if let Some(node) = self.shards[shard].get(key) {
                return Ok(node);
            }
        }
        Err(Error::MissingMetadata(format!("{key:?}")))
    }

    /// Simulates the crash of one shard by dropping its contents; used by
    /// fault-tolerance tests to show replicated metadata survives.
    pub fn crash_shard(&self, shard: usize) {
        self.shards[shard].map.clear();
    }

    /// Deletes a node from all its replicas. Returns true if any replica
    /// existed.
    pub fn delete(&self, key: &NodeKey) -> bool {
        let primary = self.shard_of(key);
        let mut existed = false;
        for i in 0..self.replication {
            let shard = (primary + i) % self.shards.len();
            existed |= self.shards[shard].delete(key);
        }
        existed
    }

    /// Total nodes stored across shards (replicas counted).
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }

    /// Per-shard `(nodes, puts, gets)` — the metadata load distribution.
    pub fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let (p, g) = s.op_counts();
                (s.node_count(), p, g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::key::Pos;
    use crate::meta::node::{BlockDescriptor, NodeRef};
    use blobseer_types::{BlobId, BlockId, Version};

    fn key(v: u64, start: u64, len: u64) -> NodeKey {
        NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(start, len))
    }

    fn leaf(b: u64) -> TreeNode {
        TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(b),
            providers: vec![0],
            len: 64,
        })
    }

    #[test]
    fn put_get_roundtrip() {
        let dht = MetaDht::new(4, 1);
        dht.put(key(1, 0, 1), leaf(10)).unwrap();
        assert_eq!(dht.get(&key(1, 0, 1)).unwrap(), leaf(10));
        assert!(matches!(
            dht.get(&key(2, 0, 1)),
            Err(Error::MissingMetadata(_))
        ));
    }

    #[test]
    fn keys_spread_over_shards() {
        let dht = MetaDht::new(8, 1);
        for v in 0..256 {
            dht.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        let stats = dht.shard_stats();
        let nonempty = stats.iter().filter(|(n, _, _)| *n > 0).count();
        assert_eq!(nonempty, 8, "all shards should hold nodes: {stats:?}");
        let max = stats.iter().map(|(n, _, _)| *n).max().unwrap();
        assert!(max < 100, "no shard should dominate: {stats:?}");
    }

    #[test]
    fn replication_survives_one_shard_crash() {
        let dht = MetaDht::new(4, 2);
        for v in 0..64 {
            dht.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        dht.crash_shard(0);
        for v in 0..64 {
            assert!(dht.get(&key(v, 0, 1)).is_ok(), "v{v} lost after crash");
        }
    }

    #[test]
    fn unreplicated_dht_loses_data_on_crash() {
        let dht = MetaDht::new(4, 1);
        for v in 0..64 {
            dht.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        dht.crash_shard(1);
        let lost = (0..64).filter(|&v| dht.get(&key(v, 0, 1)).is_err()).count();
        assert!(lost > 0, "some keys must have lived on shard 1");
    }

    #[test]
    fn delete_removes_all_replicas() {
        let dht = MetaDht::new(3, 2);
        dht.put(
            key(1, 0, 2),
            TreeNode::Inner {
                left: None,
                right: None,
            },
        )
        .unwrap();
        assert!(dht.delete(&key(1, 0, 2)));
        assert!(!dht.delete(&key(1, 0, 2)));
        assert!(dht.get(&key(1, 0, 2)).is_err());
        assert_eq!(dht.node_count(), 0);
    }

    #[test]
    fn idempotent_reput_accepted() {
        let dht = MetaDht::new(2, 1);
        let n = TreeNode::LeafAlias(Some(NodeRef {
            blob: BlobId::new(1),
            version: Version::new(1),
        }));
        dht.put(key(2, 0, 1), n.clone()).unwrap();
        dht.put(key(2, 0, 1), n.clone()).unwrap();
        assert_eq!(dht.get(&key(2, 0, 1)).unwrap(), n);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_replication_rejected() {
        let _ = MetaDht::new(2, 3);
    }

    #[test]
    fn conflicting_reput_is_rejected_in_all_profiles() {
        // The seed's duplicate-content check was a `debug_assert_eq!`, so a
        // release build silently kept the old node. Now the conflict is a
        // hard error everywhere and the stored copy survives.
        let dht = MetaDht::new(4, 1);
        dht.put(key(1, 0, 1), leaf(10)).unwrap();
        let err = dht.put(key(1, 0, 1), leaf(11)).unwrap_err();
        assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
        assert_eq!(dht.get(&key(1, 0, 1)).unwrap(), leaf(10), "original kept");
    }

    #[test]
    fn conflict_propagates_through_replication_path() {
        // With replication 2 the conflict is detected on every replica and
        // surfaces once; matching replicas stay intact.
        let dht = MetaDht::new(4, 2);
        dht.put(key(3, 0, 1), leaf(30)).unwrap();
        let err = dht.put(key(3, 0, 1), leaf(31)).unwrap_err();
        assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
        // Both replicas still serve the original, even after one "crashes".
        dht.crash_shard(dht.shard_of(&key(3, 0, 1)));
        assert_eq!(dht.get(&key(3, 0, 1)).unwrap(), leaf(30));
    }

    #[test]
    fn conflict_cannot_diverge_replicas_after_shard_crash() {
        // A conflicting re-put arriving while one replica is freshly
        // crashed (empty) must not install the forged node there: the
        // surviving replica's copy wins the validation for the whole put.
        let dht = MetaDht::new(4, 2);
        let k = key(5, 0, 1);
        dht.put(k, leaf(50)).unwrap();
        dht.crash_shard(dht.shard_of(&k)); // primary loses its copy
        let err = dht.put(k, leaf(51)).unwrap_err();
        assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
        // Every surviving path still serves the original — the primary was
        // not repopulated with the forged node.
        assert_eq!(dht.get(&k).unwrap(), leaf(50));
        // A *matching* re-put, however, re-replicates onto the crashed
        // shard: after it, even crashing the surviving replica loses
        // nothing.
        dht.put(k, leaf(50)).unwrap();
        dht.crash_shard((dht.shard_of(&k) + 1) % 4);
        assert_eq!(dht.get(&k).unwrap(), leaf(50));
    }

    #[test]
    fn single_stripe_dht_matches_sharded_semantics() {
        let global = MetaDht::with_stripes(4, 1, 1);
        let striped = MetaDht::with_stripes(4, 1, 32);
        for v in 0..64 {
            global.put(key(v, 0, 1), leaf(v)).unwrap();
            striped.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        for v in 0..64 {
            assert_eq!(
                global.get(&key(v, 0, 1)).unwrap(),
                striped.get(&key(v, 0, 1)).unwrap()
            );
        }
        assert_eq!(global.node_count(), striped.node_count());
    }
}
