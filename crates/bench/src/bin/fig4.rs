//! Regenerates Fig. 4: concurrent readers of a shared file — average
//! per-client throughput for 1→250 clients (§V-E).

use experiments::{fig4, Constants};

fn main() {
    let c = Constants::default();
    let counts = if bench::quick_mode() {
        vec![1, 100, 250]
    } else {
        fig4::paper_counts()
    };
    bench::print_figure(&fig4::run(&c, &counts));
    if bench::verbose_mode() {
        println!("--- diagnostics ---");
        println!("{}", experiments::lock_stats_line());
    }
}
