//! The distributed deployment: the unchanged client protocol running over
//! real TCP loopback sockets.
//!
//! `blobseer_rpc::LoopbackCluster` boots the paper's process decomposition
//! (§III-B) as separate server thread groups — one listener per data
//! provider, one for the metadata DHT, one for the version manager — and
//! these tests drive the full stack against it: the §III write/append/read
//! protocol, error variants crossing the wire as themselves, concurrent
//! appenders, GC, BSFS and a complete Map-Reduce job.

use blobseer_core::BlobSeer;
use blobseer_rpc::LoopbackCluster;
use blobseer_types::{BlobSeerConfig, Error, NodeId, Version};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};
use mapreduce::apps::WordCount;
use mapreduce::{JobTracker, TaskTracker, TextGen};
use std::sync::Arc;
use std::time::Duration;

const BLOCK: u64 = 256;

fn cluster_with_block(block_size: u64, n_providers: usize) -> LoopbackCluster {
    LoopbackCluster::boot(
        BlobSeerConfig::small_for_tests()
            .with_block_size(block_size)
            .with_unaligned_append_timeout(Duration::from_millis(200)),
        n_providers,
    )
    .unwrap()
}

#[test]
fn full_protocol_roundtrip_over_sockets() {
    let cluster = cluster_with_block(BLOCK, 4);
    // One server process per provider, plus the DHT, the version manager,
    // and the hosted control plane (placement + GC servers).
    assert_eq!(cluster.server_count(), 8);
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(100));

    // Write/read, sub-ranges, holes, unaligned writes.
    let blob = c.create();
    let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
    let v1 = c.write(blob, 0, &data).unwrap();
    assert_eq!(v1, Version::new(1));
    assert_eq!(c.latest(blob).unwrap(), (v1, 1000));
    assert_eq!(&c.read(blob, None, 0, 1000).unwrap()[..], &data[..]);
    assert_eq!(&c.read(blob, None, 300, 400).unwrap()[..], &data[300..700]);

    // Appends, including the unaligned slow path (1000 % 256 != 0).
    let (off, v2) = c.append(blob, &[7u8; 100]).unwrap();
    assert_eq!(off, 1000);
    assert_eq!(v2, Version::new(2));
    let tail = c.read(blob, None, 990, 110).unwrap();
    assert_eq!(&tail[..10], &data[990..]);
    assert!(tail[10..].iter().all(|&b| b == 7));

    // Every version stays readable; history works over the wire.
    let h = c.history(blob).unwrap();
    assert_eq!(h.len(), 2);
    assert_eq!(h[0].size, 1000);
    assert_eq!(h[1].size, 1100);

    // Branching shares history across the wire.
    let fork = c.branch(blob, v1).unwrap();
    c.write(fork, 0, &[9u8; 10]).unwrap();
    let f = c.read(fork, None, 0, 1000).unwrap();
    assert!(f[..10].iter().all(|&b| b == 9));
    assert_eq!(&f[10..], &data[10..]);
    assert_eq!(
        c.read(blob, Some(v1), 0, 1000).unwrap(),
        c.read(fork, Some(v1), 0, 1000).unwrap()
    );

    // The data layout is observable through the remote port: round-robin
    // spread the blocks over all four provider processes.
    let layout = sys.providers().layout_vector();
    assert_eq!(layout.len(), 4);
    assert!(
        layout.iter().all(|&n| n > 0),
        "all providers used: {layout:?}"
    );

    // Locations expose the per-provider node identities fetched at
    // connect time.
    let locs = c.locations(blob, Some(v1), 0, 1000).unwrap();
    assert_eq!(locs.len(), 4);
    let hosts: std::collections::HashSet<_> = locs.iter().map(|l| l.nodes[0]).collect();
    assert_eq!(hosts.len(), 4, "one block per provider node");

    // GC cascades over the wire: DHT deletes and block deletes are RPCs.
    // (A fresh, un-branched blob — the fork above holds a GC reference on
    // `blob`'s v1 root, which would correctly pin its subtree.)
    let gc_blob = c.create();
    c.write(gc_blob, 0, &[1u8; 2 * BLOCK as usize]).unwrap();
    c.write(gc_blob, 0, &[2u8; BLOCK as usize]).unwrap();
    let report = c.gc_before(gc_blob, Version::new(2)).unwrap();
    assert!(report.nodes_deleted > 0);
    assert!(report.blocks_deleted > 0);
    assert_eq!(report.untracked_releases, 0);
    assert!(matches!(
        c.read(gc_blob, Some(Version::new(1)), 0, 1),
        Err(Error::NoSuchVersion { .. })
    ));
    let kept = c.read(gc_blob, None, 0, 2 * BLOCK).unwrap();
    assert!(kept[..BLOCK as usize].iter().all(|&b| b == 2));
    assert!(kept[BLOCK as usize..].iter().all(|&b| b == 1));

    // Deleting the fork frees its private storage on the remote providers.
    let blocks_before = sys.providers().total_block_count();
    let report = c.delete_blob(fork).unwrap();
    assert!(report.nodes_deleted > 0);
    assert!(sys.providers().total_block_count() < blocks_before);

    // The server-side version manager really assigned all those versions.
    assert!(cluster.server_stats().snapshot().versions_assigned >= 4);
}

#[test]
fn vectored_ports_cost_frames_proportional_to_levels_not_blocks() {
    // The acceptance scenario of the vectored port API: a 64-block write
    // and a full-blob read over the loopback cluster complete in
    // O(tree levels + providers touched) wire frames — not O(blocks +
    // nodes) — asserted via the deployment's round-trip counters, with
    // results byte-identical to the in-memory backend.
    let cfg = BlobSeerConfig::small_for_tests().with_block_size(64);
    let cluster = LoopbackCluster::boot(cfg.clone(), 4).unwrap();
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(0));
    let blob = c.create();
    let data: Vec<u8> = (0..64 * 64u32).map(|i| (i % 251) as u8).collect(); // 64 blocks

    let served_before = cluster.frames_served();
    let before = sys.stats().snapshot();
    c.write(blob, 0, &data).unwrap();
    let after_write = sys.stats().snapshot();

    // Write = 1 latest + 4 data put_many (one per provider, round-robin
    // touches all 4) + 1 assign + 7 metadata put_many (a cap-64 tree has
    // levels of 64/32/16/8/4/2/1 nodes) + 1 commit = 14 frames. The same
    // write unbatched would pay 64 block puts + 127 node puts alone.
    let write_frames = after_write.port_round_trips - before.port_round_trips;
    assert_eq!(write_frames, 14, "write frames: O(levels + providers)");
    // All 64 blocks and all 127 tree nodes crossed inside those frames.
    assert_eq!(after_write.batched_items - before.batched_items, 64 + 127);
    // The fan-out executor dispatched one concurrent group per phase: the
    // data phase (4 provider batches wide) and one group per tree level
    // (width 1 each — the RPC DHT is a single endpoint, so levels stay
    // one vectored frame and the 14-frame invariant above holds).
    assert_eq!(
        after_write.fanout_batches - before.fanout_batches,
        8,
        "one data-phase fan-out + one per tree level"
    );
    assert_eq!(after_write.fanout_max_width, 4, "width = providers touched");

    let full = c.read(blob, None, 0, data.len() as u64).unwrap();
    assert_eq!(&full[..], &data[..], "byte-identical to what was written");
    let after_read = sys.stats().snapshot();

    // Read = 2 snapshot resolution (latest + snapshot_info) + 7 descent
    // get_many (one per level) + 4 block get_many (one per provider) = 13.
    let read_frames = after_read.port_round_trips - after_write.port_round_trips;
    assert_eq!(read_frames, 13, "read frames: O(levels + providers)");
    assert_eq!(
        after_read.batched_items - after_write.batched_items,
        64 + 127
    );
    // Same shape on the read side: one fetch-phase fan-out (4 provider
    // batches) plus one descent group per level, and no fallback retries.
    assert_eq!(
        after_read.fanout_batches - after_write.fanout_batches,
        8,
        "one fetch-phase fan-out + one per descent level"
    );
    assert_eq!(after_read.read_replica_fallbacks, 0);

    // The control plane is hosted too, but it stays off the data-path
    // counters: a clean write costs exactly three control frames (one
    // placement `allocate`, one batched `inc_nodes` for the published
    // tree, one for the committed root) and a read costs none.
    assert_eq!(
        after_write.control_round_trips - before.control_round_trips,
        3,
        "write control frames: allocate + tree inc_nodes + root inc_nodes"
    );
    assert_eq!(
        after_read.control_round_trips - after_write.control_round_trips,
        0,
        "reads never touch the control plane"
    );

    // The servers saw exactly the frames the client adapters counted —
    // data-path and control-plane together.
    assert_eq!(
        cluster.frames_served() - served_before,
        (after_read.port_round_trips - before.port_round_trips)
            + (after_read.control_round_trips - before.control_round_trips)
    );

    // And the bytes agree with the in-memory backend end to end.
    let mem = BlobSeer::deploy(cfg, 4);
    let mc = mem.client(NodeId::new(0));
    let mem_blob = mc.create();
    mc.write(mem_blob, 0, &data).unwrap();
    assert_eq!(
        mc.read(mem_blob, None, 0, data.len() as u64).unwrap(),
        full,
        "vectored RPC backend is byte-identical to in-memory"
    );
}

#[test]
fn batched_get_defers_instead_of_overshooting_the_frame_cap() {
    // Two blocks whose payloads together exceed the 64 MB batch budget
    // (and would exceed the 80 MB frame cap): the server must answer the
    // batch across two frames via DEFERRED items — budget accounting has
    // to include the payload *about to be encoded*, or the response
    // overshoots by one block and the client rejects the frame.
    let cluster = cluster_with_block(BLOCK, 1);
    let sys = cluster.deploy().unwrap();
    let store = sys.providers();
    let big = 45 * 1024 * 1024;
    let a = bytes::Bytes::from(vec![0xAAu8; big]);
    let b = bytes::Bytes::from(vec![0xBBu8; big]);
    let id = |k: u64| blobseer_types::BlockId::new(k);
    store.put(0, id(1), a.clone()).unwrap();
    store.put(0, id(2), b.clone()).unwrap();
    let before = sys.stats().snapshot().port_round_trips;
    let got = store.get_many(0, &[id(1), id(2)]);
    assert_eq!(got[0].as_ref().unwrap(), &a);
    assert_eq!(got[1].as_ref().unwrap(), &b);
    assert_eq!(
        sys.stats().snapshot().port_round_trips - before,
        2,
        "the second block must arrive in a deferred follow-up frame"
    );
}

#[test]
fn service_errors_cross_the_wire_as_themselves() {
    let cluster = cluster_with_block(BLOCK, 2);
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 100]).unwrap();

    // Out-of-bounds read: the exact variant with the exact payload.
    assert_eq!(
        c.read(blob, None, 50, 51).unwrap_err(),
        Error::OutOfBounds {
            requested_end: 101,
            snapshot_size: 100
        }
    );
    // Unknown blob.
    assert_eq!(
        c.latest(blobseer_types::BlobId::new(999)).unwrap_err(),
        Error::NoSuchBlob(999)
    );
    // Unknown version.
    assert_eq!(
        c.read(blob, Some(Version::new(9)), 0, 1).unwrap_err(),
        Error::NoSuchVersion {
            blob: blob.raw(),
            version: 9
        }
    );
    // Zero-length writes are rejected by the remote version manager with
    // the same variant the in-memory one raises.
    assert!(matches!(
        sys.version_manager()
            .assign(blob, blobseer_core::WriteIntent::Append { size: 0 }),
        Err(Error::WriteAborted(_))
    ));
    // An assigned-but-uncommitted version is VersionNotRevealed, and the
    // remote wait_revealed surfaces the server-enforced timeout.
    let stuck = sys
        .version_manager()
        .assign(blob, blobseer_core::WriteIntent::Append { size: BLOCK })
        .unwrap();
    assert_eq!(
        c.read(blob, Some(stuck.version), 0, 1).unwrap_err(),
        Error::VersionNotRevealed {
            blob: blob.raw(),
            version: stuck.version.raw()
        }
    );
    let err = c
        .wait_revealed(blob, stuck.version, Duration::from_millis(50))
        .unwrap_err();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    // Metadata conflicts propagate from the remote DHT.
    let root = sys
        .version_manager()
        .snapshot_info(blob, Version::new(1))
        .unwrap()
        .root_key();
    let forged = blobseer_core::meta::node::TreeNode::LeafAlias(None);
    let err = sys.dht().put(root, forged).unwrap_err();
    assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
    // Missing metadata keys answer with the real variant too.
    let bogus = blobseer_core::meta::key::NodeKey::new(
        blobseer_types::BlobId::new(77),
        Version::new(1),
        blobseer_core::meta::key::Pos::new(0, 1),
    );
    assert!(matches!(
        sys.dht().get(&bogus),
        Err(Error::MissingMetadata(_))
    ));
}

#[test]
fn concurrent_appenders_through_shared_sockets() {
    // The Fig. 5 access pattern over TCP: N appender threads, one shared
    // BLOB, every append lands exactly once at a distinct offset. The
    // connection pools grow under the concurrency; the version manager
    // server serializes assignment exactly like the in-process one.
    let cluster = cluster_with_block(64, 4);
    let sys = cluster.deploy().unwrap();
    let c0 = sys.client(NodeId::new(0));
    let blob = c0.create();
    let n_threads = 8u8;
    let per_thread = 16u8;
    let mut handles = Vec::new();
    for t in 0..n_threads {
        let c = sys.client(NodeId::new(t as u64));
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                c.append(blob, &[t * 16 + i; 64]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (v, size) = c0.latest(blob).unwrap();
    assert_eq!(v.raw(), (n_threads as u64) * (per_thread as u64));
    assert_eq!(size, n_threads as u64 * per_thread as u64 * 64);
    let data = c0.read(blob, None, 0, size).unwrap();
    let mut seen = std::collections::HashSet::new();
    for chunk in data.chunks(64) {
        assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append");
        assert!(seen.insert(chunk[0]), "duplicate append content");
    }
    assert_eq!(seen.len(), (n_threads * per_thread) as usize);
}

/// Builds a BSFS-backed Map-Reduce stack over any BlobSeer deployment and
/// runs WordCount, returning the concatenated reducer outputs.
fn run_wordcount(sys: Arc<BlobSeer>, input: &[u8], nodes: usize) -> Vec<u8> {
    let fs_cluster = BsfsCluster::new(sys);
    let jt = JobTracker::new(
        (0..nodes)
            .map(|i| {
                TaskTracker::new(
                    NodeId::new(i as u64),
                    Box::new(fs_cluster.mount(NodeId::new(i as u64))),
                )
            })
            .collect(),
    );
    let fs = fs_cluster.mount(NodeId::new(0));
    write_file(&fs, "/in.txt", input).unwrap();
    jt.run_job(
        &WordCount::job("/in.txt", "/out", 2),
        &WordCount,
        &WordCount,
    )
    .unwrap();
    let mut all = Vec::new();
    for r in 0..2 {
        all.extend(read_fully(&fs, &format!("/out/part-r-{r:05}")).unwrap());
    }
    all
}

#[test]
fn wordcount_over_sockets_is_byte_identical_to_in_memory() {
    // The acceptance scenario: a BSFS-backed Map-Reduce job, end to end
    // over the TCP loopback cluster, producing byte-identical output to
    // the in-memory backend. Same config, same PM seed, same input — so
    // even the placement decisions agree.
    let nodes = 4usize;
    let cfg = BlobSeerConfig::small_for_tests().with_block_size(4096);
    let input = TextGen::new(42).text(4 * 4096);

    let in_memory = run_wordcount(BlobSeer::deploy(cfg.clone(), nodes), &input, nodes);

    let cluster = LoopbackCluster::boot(cfg, nodes).unwrap();
    let over_sockets = run_wordcount(cluster.deploy().unwrap(), &input, nodes);

    assert!(!in_memory.is_empty());
    assert_eq!(
        in_memory, over_sockets,
        "socket-backed wordcount output must be byte-identical"
    );
}

#[test]
fn bsfs_streams_and_namespace_work_over_sockets() {
    let cluster = cluster_with_block(BLOCK, 4);
    let fs_cluster = BsfsCluster::new(cluster.deploy().unwrap());
    let fs = fs_cluster.mount(NodeId::new(0));
    fs.mkdirs("/a/b").unwrap();
    let payload = TextGen::new(7).text(3 * BLOCK as usize + 17);
    write_file(&fs, "/a/b/f", &payload).unwrap();
    fs.rename("/a/b/f", "/a/f").unwrap();
    assert_eq!(read_fully(&fs, "/a/f").unwrap(), payload);
    // Appends through the stream layer (write-behind cache flushing whole
    // blocks over TCP).
    let mut out = fs.append("/a/f").unwrap();
    out.write(b" tail").unwrap();
    out.close().unwrap();
    let all = read_fully(&fs, "/a/f").unwrap();
    assert_eq!(&all[..payload.len()], &payload[..]);
    assert_eq!(&all[payload.len()..], b" tail");
    // Deleting through BSFS reclaims storage on the remote providers.
    fs.delete("/a/f", false).unwrap();
    assert_eq!(fs_cluster.system().providers().total_block_count(), 0);
}

#[test]
fn independent_deployments_share_one_cluster_without_colliding() {
    // Two client "processes" (deployments) against the same cluster. With
    // the provider manager *hosted* (PlacementService behind the placement
    // server), both deployments draw block ids and placement decisions
    // from one shared allocator — so ids are disjoint by construction and
    // load accounting is globally consistent, instead of each process
    // running a private manager that silently double-books provider load
    // (the seam PR 4 documented). Blob ids come from the shared
    // version-manager server, so data written through one deployment is
    // readable through the other.
    let cluster = cluster_with_block(BLOCK, 3);
    let sys_a = cluster.deploy().unwrap();
    let sys_b = cluster.deploy().unwrap();
    let a = sys_a.client(NodeId::new(0));
    let b = sys_b.client(NodeId::new(1));

    let blob_a = a.create();
    let blob_b = b.create();
    assert_ne!(blob_a, blob_b, "shared VM hands out distinct blob ids");
    let pa = TextGen::new(1).text(2 * BLOCK as usize + 5);
    let pb = TextGen::new(2).text(2 * BLOCK as usize + 5);
    a.write(blob_a, 0, &pa).unwrap();
    b.write(blob_b, 0, &pb).unwrap();

    // Each deployment reads its own data back intact...
    assert_eq!(
        &a.read(blob_a, None, 0, pa.len() as u64).unwrap()[..],
        &pa[..]
    );
    assert_eq!(
        &b.read(blob_b, None, 0, pb.len() as u64).unwrap()[..],
        &pb[..]
    );
    // ...and the *other* deployment's data too (cross-process visibility
    // through the shared services).
    assert_eq!(
        &b.read(blob_a, None, 0, pa.len() as u64).unwrap()[..],
        &pa[..]
    );
    assert_eq!(
        &a.read(blob_b, None, 0, pb.len() as u64).unwrap()[..],
        &pb[..]
    );

    // Interleaved appends from both deployments to ONE shared blob: the
    // shared version manager serializes them; nothing is lost or torn.
    let shared = a.create();
    for i in 0..4u8 {
        a.append(shared, &[10 + i; BLOCK as usize]).unwrap();
        b.append(shared, &[20 + i; BLOCK as usize]).unwrap();
    }
    let (v, size) = b.latest(shared).unwrap();
    assert_eq!(v.raw(), 8);
    assert_eq!(size, 8 * BLOCK);
    let data = a.read(shared, None, 0, size).unwrap();
    for chunk in data.chunks(BLOCK as usize) {
        assert!(chunk.iter().all(|&x| x == chunk[0]), "torn append");
    }

    // Shared-global load accounting: both deployments observe the SAME
    // hosted load vector, and it charges every block either process
    // allocated — with private per-process managers each side would see
    // only its own half.
    let load_a = sys_a.provider_manager().load_vector().unwrap();
    let load_b = sys_b.provider_manager().load_vector().unwrap();
    assert_eq!(load_a, load_b, "one hosted allocator, one load vector");
    let live_blocks = sys_a.providers().total_block_count() as u64;
    assert_eq!(
        load_a.iter().sum::<u64>(),
        live_blocks,
        "global accounting covers both deployments' allocations"
    );
    assert_eq!(sys_a.provider_manager().provider_count(), 3);
    assert_eq!(sys_b.provider_manager().provider_count(), 3);
}

#[test]
fn shutdown_surfaces_transport_errors_not_hangs() {
    let mut cluster = cluster_with_block(BLOCK, 2);
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(0));
    let blob = c.create();
    c.write(blob, 0, &[1u8; 64]).unwrap();
    // Graceful shutdown: joins every server thread deterministically even
    // with client connections still open.
    cluster.shutdown();
    // Calls against the dead cluster fail fast with Transport, never a
    // degraded service variant and never a hang.
    let err = c.latest(blob).unwrap_err();
    assert!(matches!(err, Error::Transport(_)), "{err}");
    let err = c.write(blob, 0, &[2u8; 64]).unwrap_err();
    assert!(matches!(err, Error::Transport(_)), "{err}");
}
