//! The append path: optimistic block-aligned data phase, version-manager
//! offset fixing, and the rare unaligned-tail slow path (§III-D).

use crate::version_manager::WriteIntent;
use blobseer_types::{BlobId, Error, Result, Version};

use super::BlobClient;

impl BlobClient {
    /// Appends `data` at the end of the BLOB. The offset is fixed by the
    /// version manager *after* the data phase (§III-D); returns
    /// `(offset, version)`.
    pub fn append(&self, blob: BlobId, data: &[u8]) -> Result<(u64, Version)> {
        if data.is_empty() {
            return Err(Error::WriteAborted(
                "zero-length appends are rejected".into(),
            ));
        }
        let bs = self.sys.cfg.block_size;
        // Optimistic data phase: chunk as if the append lands block-aligned
        // (always true for BSFS's write-behind cache and for the paper's
        // workloads). Descriptors are keyed relative to block 0 for now.
        let optimistic = self.store_blocks(data, 0)?;
        let ticket = self.sys.vm.assign(
            blob,
            WriteIntent::Append {
                size: data.len() as u64,
            },
        )?;
        let leaves = if ticket.offset.is_multiple_of(bs) {
            // Re-key descriptors at the real first block index.
            let first = ticket.offset / bs;
            optimistic
                .into_iter()
                .map(|(i, d)| (first + i, d))
                .collect()
        } else {
            // Rare slow path: the file tail is unaligned. Discard the
            // optimistic blocks and redo the data phase with boundary
            // merging at the now-known offset.
            for (_, d) in &optimistic {
                for &p in &d.providers {
                    self.sys.providers.delete(p as usize, d.block_id);
                    self.sys.pm.release(p as usize);
                }
            }
            // An unaligned append rewrites the preceding snapshot's tail
            // block, so its content must be *exact*: wait until the
            // preceding version is revealed (block-aligned appends — the
            // paper's workloads — never take this path and keep full
            // parallelism). On timeout (crashed predecessor), repair our
            // assigned version so the reveal pipeline is not stalled. The
            // patience comes from `BlobSeerConfig::unaligned_append_timeout`
            // so tests and simulation runs can shrink it.
            if let Err(e) = self.wait_revealed(
                blob,
                ticket.version.prev(),
                self.sys.cfg.unaligned_append_timeout,
            ) {
                self.repair_aborted(&ticket)?;
                return Err(e);
            }
            // A failure in the redone data phase would also strand the
            // assigned version: self-repair before surfacing it.
            let redo = self
                .merge_boundaries(blob, ticket.offset, data, ticket.prev_size)
                .and_then(|merged| self.store_blocks(&merged.payload, merged.start / bs));
            match redo {
                Ok(leaves) => leaves.into_iter().collect(),
                Err(e) => {
                    let _ = self.repair_aborted(&ticket);
                    return Err(e);
                }
            }
        };
        self.publish_and_commit(&ticket, leaves)?;
        Ok((ticket.offset, ticket.version))
    }
}
