//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Integer nanoseconds keep event ordering exact and runs reproducible; all
//! rate computations convert to `f64` seconds at the edges and round *up*
//! when producing durations, so completions never fire early.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Raw nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; saturates to zero if `earlier`
    /// is later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Builds a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Builds a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding up to the next
    /// nanosecond so that transfers never complete early.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Self((s * 1e9).ceil() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by an integer factor.
    #[inline]
    #[must_use]
    pub const fn saturating_mul(self, k: u64) -> Self {
        Self(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        assert_eq!(t.as_millis(), 3);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_nanos(), 500_000);
        assert_eq!((t - t2).as_nanos(), 0, "saturating subtraction");
    }

    #[test]
    fn float_roundtrip_rounds_up() {
        // 1/3 of a second is not representable in nanoseconds exactly; the
        // conversion must round up so completions never fire early.
        let d = SimDuration::from_secs_f64(1.0 / 3.0);
        assert!(d.as_secs_f64() >= 1.0 / 3.0);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
        assert_eq!(
            format!("{:?}", SimTime::from_nanos(1_500_000)),
            "t=0.001500s"
        );
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            SimDuration::from_secs(2).saturating_mul(3),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            SimDuration::from_nanos(u64::MAX)
                .saturating_mul(2)
                .as_nanos(),
            u64::MAX
        );
    }
}
