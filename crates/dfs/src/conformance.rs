//! A backend-agnostic conformance suite for [`FileSystem`] implementations.
//!
//! BSFS and the HDFS baseline must expose *identical* namespace and I/O
//! semantics — the paper's comparison is only meaningful because "Hadoop
//! Map/Reduce applications run out-of-the-box … just like in the original,
//! unmodified environment" (§V-B). Each backend's test module calls these
//! functions; a panic pinpoints the divergence. Only `append` semantics may
//! differ (HDFS 0.20 lacks it), so append behaviour is exercised in
//! backend-specific tests instead.

use crate::api::FileSystem;
use crate::util::{read_fully, write_file};
use blobseer_types::Error;

/// Runs every conformance check.
pub fn run_all(fs: &dyn FileSystem) {
    namespace_tree(fs);
    create_read_roundtrip(fs);
    create_semantics(fs);
    delete_semantics(fs);
    rename_semantics(fs);
    streaming_io(fs);
    seek_and_partial_reads(fs);
    block_locations(fs);
    status_and_list(fs);
}

/// mkdirs creates chains; files and dirs are distinguished.
pub fn namespace_tree(fs: &dyn FileSystem) {
    fs.mkdirs("/conf/a/b/c").unwrap();
    assert!(fs.exists("/conf/a/b/c").unwrap());
    assert!(fs.exists("/conf/a").unwrap());
    assert!(fs.status("/conf/a").unwrap().is_dir);
    // mkdirs is idempotent.
    fs.mkdirs("/conf/a/b").unwrap();
    // mkdirs through a file fails.
    write_file(fs, "/conf/a/file", b"x").unwrap();
    assert!(matches!(
        fs.mkdirs("/conf/a/file/sub"),
        Err(Error::NotADirectory(_)) | Err(Error::AlreadyExists(_))
    ));
    // Invalid paths are rejected.
    assert!(fs.mkdirs("relative/path").is_err());
    assert!(fs.open("/conf/does/not/exist").is_err());
}

/// Bytes written are bytes read, across block boundaries.
pub fn create_read_roundtrip(fs: &dyn FileSystem) {
    let bs = fs.block_size() as usize;
    // Spans several blocks, ends unaligned.
    let data: Vec<u8> = (0..bs * 3 + 123).map(|i| (i * 31 % 251) as u8).collect();
    write_file(fs, "/conf/roundtrip", &data).unwrap();
    assert_eq!(read_fully(fs, "/conf/roundtrip").unwrap(), data);
    assert_eq!(fs.status("/conf/roundtrip").unwrap().len, data.len() as u64);
}

/// create() honours `overwrite` and implicitly creates parents.
pub fn create_semantics(fs: &dyn FileSystem) {
    write_file(fs, "/conf/new/implicit/parents/f", b"1").unwrap();
    assert!(fs.status("/conf/new/implicit").unwrap().is_dir);
    // No overwrite → AlreadyExists.
    assert!(matches!(
        fs.create("/conf/new/implicit/parents/f", false),
        Err(Error::AlreadyExists(_))
    ));
    // Overwrite truncates.
    write_file(fs, "/conf/new/implicit/parents/f", b"22").unwrap();
    assert_eq!(
        read_fully(fs, "/conf/new/implicit/parents/f").unwrap(),
        b"22"
    );
    // Creating over a directory fails even with overwrite.
    fs.mkdirs("/conf/new/dir").unwrap();
    assert!(fs.create("/conf/new/dir", true).is_err());
}

/// delete() of files, empty dirs, recursive trees.
pub fn delete_semantics(fs: &dyn FileSystem) {
    write_file(fs, "/conf/del/x/f1", b"a").unwrap();
    write_file(fs, "/conf/del/x/f2", b"b").unwrap();
    // Non-recursive delete of a non-empty dir fails.
    assert!(matches!(
        fs.delete("/conf/del/x", false),
        Err(Error::DirectoryNotEmpty(_))
    ));
    fs.delete("/conf/del/x/f1", false).unwrap();
    assert!(!fs.exists("/conf/del/x/f1").unwrap());
    fs.delete("/conf/del", true).unwrap();
    assert!(!fs.exists("/conf/del").unwrap());
    assert!(matches!(
        fs.delete("/conf/del", true),
        Err(Error::NotFound(_))
    ));
}

/// rename() moves files and whole subtrees.
pub fn rename_semantics(fs: &dyn FileSystem) {
    write_file(fs, "/conf/mv/src/inner/f", b"payload").unwrap();
    fs.mkdirs("/conf/mv/dstparent").unwrap();
    fs.rename("/conf/mv/src", "/conf/mv/dstparent/dst").unwrap();
    assert!(!fs.exists("/conf/mv/src").unwrap());
    assert_eq!(
        read_fully(fs, "/conf/mv/dstparent/dst/inner/f").unwrap(),
        b"payload"
    );
    // Destination exists → error.
    write_file(fs, "/conf/mv/a", b"1").unwrap();
    write_file(fs, "/conf/mv/b", b"2").unwrap();
    assert!(matches!(
        fs.rename("/conf/mv/a", "/conf/mv/b"),
        Err(Error::AlreadyExists(_))
    ));
    // Source missing → error.
    assert!(matches!(
        fs.rename("/conf/mv/ghost", "/conf/mv/c"),
        Err(Error::NotFound(_))
    ));
}

/// Many small writes stream into correct content (write-behind cache), and
/// data is visible after close.
pub fn streaming_io(fs: &dyn FileSystem) {
    let mut out = fs.create("/conf/stream", true).unwrap();
    let mut expect = Vec::new();
    // 4 KB-ish records, the paper's record size, across block boundaries.
    for i in 0..200u32 {
        let rec = vec![(i % 251) as u8; 1000 + (i as usize % 17)];
        out.write(&rec).unwrap();
        expect.extend_from_slice(&rec);
    }
    assert_eq!(out.pos(), expect.len() as u64);
    out.close().unwrap();
    out.close().unwrap(); // idempotent
    assert_eq!(read_fully(fs, "/conf/stream").unwrap(), expect);
}

/// seek() repositions reads, including backwards and to EOF.
pub fn seek_and_partial_reads(fs: &dyn FileSystem) {
    let bs = fs.block_size() as usize;
    let data: Vec<u8> = (0..2 * bs + 77).map(|i| (i % 256) as u8).collect();
    write_file(fs, "/conf/seek", &data).unwrap();
    let mut input = fs.open("/conf/seek").unwrap();
    let mut buf = [0u8; 16];
    // Forward seek into the second block.
    input.seek(bs as u64 + 5).unwrap();
    input.read_exact(&mut buf).unwrap();
    assert_eq!(&buf[..], &data[bs + 5..bs + 21]);
    // Backward seek.
    input.seek(3).unwrap();
    input.read_exact(&mut buf).unwrap();
    assert_eq!(&buf[..], &data[3..19]);
    // Seek to EOF reads 0.
    input.seek(data.len() as u64).unwrap();
    assert_eq!(input.read(&mut buf).unwrap(), 0);
    // Seek past EOF is an error.
    assert!(input.seek(data.len() as u64 + 1).is_err());
}

/// Block locations tile the file and carry hosts.
pub fn block_locations(fs: &dyn FileSystem) {
    let bs = fs.block_size();
    let data = vec![7u8; (3 * bs + bs / 2) as usize];
    write_file(fs, "/conf/locs", &data).unwrap();
    let locs = fs
        .block_locations("/conf/locs", 0, data.len() as u64)
        .unwrap();
    assert_eq!(locs.len(), 4);
    for (i, l) in locs.iter().enumerate() {
        assert_eq!(l.offset, i as u64 * bs);
        assert!(!l.hosts.is_empty(), "block {i} must report hosts");
    }
    assert_eq!(locs[3].length, bs / 2);
    // Sub-range query returns only overlapping blocks.
    let locs = fs.block_locations("/conf/locs", bs, 1).unwrap();
    assert_eq!(locs.len(), 1);
    assert_eq!(locs[0].offset, bs);
}

/// status()/list() agree with what was created.
pub fn status_and_list(fs: &dyn FileSystem) {
    fs.mkdirs("/conf/ls/d1").unwrap();
    write_file(fs, "/conf/ls/f1", b"abc").unwrap();
    write_file(fs, "/conf/ls/f2", b"defg").unwrap();
    let mut names: Vec<String> = fs
        .list("/conf/ls")
        .unwrap()
        .into_iter()
        .map(|s| s.path)
        .collect();
    names.sort();
    assert_eq!(names, vec!["/conf/ls/d1", "/conf/ls/f1", "/conf/ls/f2"]);
    let st = fs.status("/conf/ls/f2").unwrap();
    assert!(!st.is_dir);
    assert_eq!(st.len, 4);
    assert_eq!(st.block_size, fs.block_size());
    // list of a file is an error; status of a missing path is NotFound.
    assert!(fs.list("/conf/ls/f1").is_err());
    assert!(matches!(
        fs.status("/conf/ls/nope"),
        Err(Error::NotFound(_))
    ));
}
