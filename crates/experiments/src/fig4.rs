//! Fig. 4: average per-client read throughput as 1→250 clients
//! concurrently read *distinct* 64 MB chunks of one shared file (§V-E).
//!
//! **BSFS** runs the real client protocol end-to-end through the
//! concurrent harness ([`crate::concurrent`]): a boot client appends the
//! N-chunk file through the live provider manager (round-robin layout),
//! then N reader threads call the genuine `BlobClient::read` concurrently.
//! Everything the seed's model hand-computed now *emerges* from the code
//! under test: the version-manager lookup queues in the shared central
//! server, the root-to-leaf descent costs one sequential DHT hop per
//! segment-tree level actually fetched, the balanced layout gives every
//! reader its own provider disk, and co-located readers (the paper places
//! readers on storage machines) skip the network entirely.
//!
//! **HDFS** is the comparison baseline — it has no `BlobClient`, so its
//! leg stays a cost model, composed from the same gate primitives
//! ([`crate::concurrent::BaselineWorld`]): one namenode query, a
//! sticky-random layout that lands several readers' chunks on the same
//! datanode — whose disk queue and egress NIC then serialize them under
//! max-min sharing — plus the 0.20 read path's per-block CRC verification.
//! Average throughput falls as N grows.

use crate::concurrent::{self, BaselineWorld, ClientTask};
use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::Backend;
use blobseer_core::placement::Placer;
use blobseer_core::BlobClient;
use blobseer_types::NodeId;
use parking_lot::Mutex;
use simnet::SimDuration;

/// Real engine bytes behind each modeled 64 MB chunk: one block per chunk,
/// small enough that a 250-chunk file costs nothing to materialize.
const REAL_CHUNK: u64 = 256;

/// Chunk read by reader `i`: a fixed permutation decoupling the reader's
/// node from its chunk's provider, as in a real deployment where reader
/// machines and layout are unrelated.
fn chunk_of(i: usize, n: usize) -> usize {
    (i + 13) % n
}

/// The BSFS leg: N concurrent readers driving the real read path.
fn bsfs_avg_mbps(c: &Constants, n_clients: usize, seed: u64) -> f64 {
    let providers = Backend::Bsfs.microbench_storage_nodes();
    let n_nodes = providers.max(n_clients);
    let dep = concurrent::deploy(
        c,
        providers,
        n_nodes,
        policy_for(c, Backend::Bsfs),
        seed,
        REAL_CHUNK,
    );
    // Boot-up phase (uncharged): a dedicated client writes the N×64 MB
    // file; the layout comes from the live provider manager.
    let boot = dep.sys.client(NodeId::new(0));
    let blob = boot.create();
    let payload = vec![0u8; REAL_CHUNK as usize];
    for _ in 0..n_clients {
        boot.append(blob, &payload).unwrap();
    }
    dep.set_charging(true);
    // Measurement: reader i, co-located with storage node i (§V-C: reader
    // machines are chosen among the storage machines), reads its chunk.
    let durations: Mutex<Vec<Option<SimDuration>>> = Mutex::new(vec![None; n_clients]);
    let clients: Vec<ClientTask<'_>> = (0..n_clients)
        .map(|i| {
            let (durations, fabric) = (&durations, &dep.fabric);
            (
                NodeId::new(i as u64),
                Box::new(move |cl: BlobClient| {
                    let t0 = fabric.gate().now();
                    let chunk = chunk_of(i, n_clients) as u64;
                    cl.read(blob, None, chunk * REAL_CHUNK, REAL_CHUNK).unwrap();
                    durations.lock()[i] = Some(fabric.gate().now() - t0);
                }) as Box<dyn FnOnce(BlobClient) + Send>,
            )
        })
        .collect();
    dep.run_clients(clients);
    let rates = concurrent::client_mbps(c.block_bytes, &durations.into_inner());
    rates.iter().sum::<f64>() / n_clients as f64
}

/// The HDFS baseline leg: the same workload against the modeled 0.20 read
/// path over a sticky-random layout.
fn hdfs_avg_mbps(c: &Constants, n_clients: usize, seed: u64) -> f64 {
    let datanodes = Backend::Hdfs.microbench_storage_nodes();
    let n_nodes = datanodes.max(n_clients);
    // Boot-up layout: the file was written sticky-randomly (the "fair"
    // second experiment of §V-E, where HDFS also spreads the file).
    let mut placer = Placer::new(policy_for(c, Backend::Hdfs), seed);
    let loads = vec![0u64; datanodes];
    let layout: Vec<usize> = (0..n_clients).map(|_| placer.pick(&loads, &[])).collect();
    let w = BaselineWorld::new(c, n_nodes);
    let durations: Mutex<Vec<Option<SimDuration>>> = Mutex::new(vec![None; n_clients]);
    let tasks: Vec<simnet::SimTask<'_>> = (0..n_clients)
        .map(|i| {
            let (w, durations, layout) = (&w, &durations, &layout);
            Box::new(move || {
                let t0 = w.gate.now();
                // Namenode block-location query, then the block fetch with
                // the 0.20 CRC-verification overhead.
                w.central_call(w.constants().nn_svc);
                w.fetch_block(
                    layout[i],
                    NodeId::new(i as u64),
                    w.constants().hdfs_read_overhead,
                );
                durations.lock()[i] = Some(w.gate.now() - t0);
            }) as simnet::SimTask<'_>
        })
        .collect();
    w.gate.run(tasks);
    let rates = concurrent::client_mbps(c.block_bytes, &durations.into_inner());
    rates.iter().sum::<f64>() / n_clients as f64
}

/// Simulates N concurrent readers; returns the average per-client
/// throughput in MB/s.
pub fn avg_client_mbps(c: &Constants, backend: Backend, n_clients: usize, seed: u64) -> f64 {
    match backend {
        Backend::Bsfs => bsfs_avg_mbps(c, n_clients, seed),
        Backend::Hdfs => hdfs_avg_mbps(c, n_clients, seed),
    }
}

/// Reproduces Fig. 4: average read throughput per client vs client count.
pub fn run(c: &Constants, client_counts: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 4",
        "Concurrent readers of a shared file: average client throughput",
        "number of clients",
        "average throughput (MB/s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &n in client_counts {
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| avg_client_mbps(c, backend, n, 0xF164 + rep))
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(n as f64, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's x grid: 1 → 250 clients.
pub fn paper_counts() -> Vec<usize> {
    vec![1, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsfs_stays_flat_hdfs_declines() {
        let c = Constants::default();
        let fig = run(&c, &[1, 100, 250]);
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        // BSFS sustains per-client throughput (paper: "it is able to
        // deliver the same throughput even when the number of clients
        // increases").
        let (b1, b250) = (bsfs.y_at(1.0).unwrap(), bsfs.y_at(250.0).unwrap());
        assert!(
            b250 > b1 * 0.85,
            "BSFS should stay near-flat: {b1:.1} → {b250:.1}"
        );
        // HDFS collapses under contention.
        let (h1, h250) = (hdfs.y_at(1.0).unwrap(), hdfs.y_at(250.0).unwrap());
        assert!(h250 < h1 * 0.75, "HDFS should decline: {h1:.1} → {h250:.1}");
        // And BSFS leads at every point.
        for (&(x, h), &(_, b)) in hdfs.points.iter().zip(&bsfs.points) {
            assert!(b > h, "BSFS ahead at {x}: {b:.1} vs {h:.1}");
        }
    }

    #[test]
    fn absolute_levels_in_paper_band() {
        // Paper: BSFS ≈ 60 flat; HDFS from ≈ 45 down to ≈ 25.
        let c = Constants::default();
        let bsfs = avg_client_mbps(&c, Backend::Bsfs, 200, 3);
        let hdfs = avg_client_mbps(&c, Backend::Hdfs, 200, 3);
        assert!(
            (50.0..75.0).contains(&bsfs),
            "BSFS at 200 clients: {bsfs:.1}"
        );
        assert!(
            (15.0..40.0).contains(&hdfs),
            "HDFS at 200 clients: {hdfs:.1}"
        );
    }

    #[test]
    fn single_reader_is_disk_bound_not_contention_bound() {
        let c = Constants::default();
        let bsfs = avg_client_mbps(&c, Backend::Bsfs, 1, 3);
        // One reader: 64 MB over a 80 MB/s disk + overheads ≈ 60 MB/s.
        assert!((50.0..70.0).contains(&bsfs), "{bsfs:.1}");
    }

    #[test]
    fn bsfs_leg_reads_real_bytes_through_the_real_tree() {
        // The figure path must leave genuine engine evidence: the reader
        // bytes equal the booted content and the DHT holds the file's
        // segment tree — proof the curve comes from the live client, not
        // from modeled hop counts.
        let c = Constants::default();
        let providers = Backend::Bsfs.microbench_storage_nodes();
        let dep = concurrent::deploy(
            &c,
            providers,
            providers,
            policy_for(&c, Backend::Bsfs),
            1,
            REAL_CHUNK,
        );
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        for i in 0..8u8 {
            boot.append(blob, &vec![i; REAL_CHUNK as usize]).unwrap();
        }
        assert!(dep.sys.dht().node_count() >= 8, "segment tree published");
        dep.set_charging(true);
        let hits = Mutex::new(0u32);
        let clients: Vec<ClientTask<'_>> = (0..8u64)
            .map(|i| {
                let hits = &hits;
                (
                    NodeId::new(i),
                    Box::new(move |cl: BlobClient| {
                        let data = cl.read(blob, None, i * REAL_CHUNK, REAL_CHUNK).unwrap();
                        assert!(data.iter().all(|&b| b == i as u8));
                        *hits.lock() += 1;
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        assert_eq!(hits.into_inner(), 8);
    }
}
