//! BSFS streams: the client-side caching layer of §IV-B.
//!
//! "Hadoop manipulates data sequentially in small chunks of a few KB
//! (usually, 4 KB) at a time. … We implemented a similar caching mechanism
//! in BSFS. It prefetches a whole block when the requested data is not
//! already cached, and delays committing writes until a whole block has
//! been filled in the cache."
//!
//! The read stream pins the snapshot version at open time: readers enjoy
//! BlobSeer's snapshot isolation and never observe concurrent writers.

use blobseer_core::{BlobClient, Pending};
use blobseer_types::{BlobId, Error, Result, Version};
use bytes::{Bytes, BytesMut};
use dfs::api::{DfsInput, DfsOutput};
use std::time::Duration;

/// Upper bound on the reveal wait performed by `Drop` (an abandoned
/// stream). `close()` waits the full configured
/// `BlobSeerConfig::close_reveal_timeout`; `Drop` is best-effort and must
/// never stall a harness for the production patience — in particular, a
/// simulated-time SimGate turn can never satisfy a real condvar wait, so
/// an unbounded drop-wait would hang the whole simulation.
const DROP_REVEAL_BOUND: Duration = Duration::from_millis(100);

/// A buffered, seekable reader over one file snapshot.
///
/// With `BlobSeerConfig::readahead_bytes > 0` the stream also issues a
/// sequential read-ahead: after each cache fill it prefetches the next
/// `readahead_bytes` (whole blocks) through the deployment's fan-out
/// executor, so sequential consumers overlap decompression/compute with the
/// next fetch. The prefetch reads the *pinned* snapshot version, so the
/// delivered bytes are identical to a non-read-ahead stream even under
/// concurrent appends.
pub struct BsfsInput {
    client: BlobClient,
    blob: BlobId,
    version: Version,
    size: u64,
    pos: u64,
    /// Cached run of whole blocks: (first block index, payload). One block
    /// long without read-ahead; up to `readahead` blocks long with it.
    cache: Option<(u64, Bytes)>,
    block_size: u64,
    /// Read-ahead window in blocks (0 = off).
    readahead: u64,
    /// In-flight prefetch: (first block index, requested bytes, handle).
    pending: Option<(u64, u64, Pending<Result<Bytes>>)>,
    /// Fetch requests issued, prefetches included (effectiveness metric).
    fetches: u64,
}

impl BsfsInput {
    /// Opens the latest revealed snapshot of `blob`.
    pub fn open(client: BlobClient, blob: BlobId) -> Result<Self> {
        let (version, size) = client.latest(blob)?;
        Ok(Self::open_version(client, blob, version, size))
    }

    /// Opens a pinned snapshot (version-aware readers, §VI-A).
    pub fn open_version(client: BlobClient, blob: BlobId, version: Version, size: u64) -> Self {
        let cfg = client.system().config();
        let block_size = cfg.block_size;
        let readahead = cfg.readahead_blocks();
        Self {
            client,
            blob,
            version,
            size,
            pos: 0,
            cache: None,
            block_size,
            readahead,
            pending: None,
            fetches: 0,
        }
    }

    /// The snapshot version this stream reads.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Whole-block fetches issued so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches
    }

    /// Whether the cached run covers the absolute byte position.
    fn covers(&self, pos: u64) -> bool {
        match &self.cache {
            Some((first, data)) => {
                let start = first * self.block_size;
                pos >= start && pos < start + data.len() as u64
            }
            None => false,
        }
    }

    fn fill_cache(&mut self, block: u64) -> Result<()> {
        // Consume the in-flight prefetch when it covers the needed block;
        // discard it otherwise (a seek jumped away from the sequence).
        if let Some((first, len, pending)) = self.pending.take() {
            let blocks = len.div_ceil(self.block_size);
            if block >= first && block < first + blocks {
                let data = pending.wait()?;
                self.cache = Some((first, data));
                self.maybe_prefetch();
                return Ok(());
            }
        }
        let start = block * self.block_size;
        let len = self.block_size.min(self.size - start);
        let data = self
            .client
            .read(self.blob, Some(self.version), start, len)?;
        self.fetches += 1;
        self.cache = Some((block, data));
        self.maybe_prefetch();
        Ok(())
    }

    /// Issues the sequential read-ahead for the blocks after the cached
    /// run, if enabled and none is already in flight.
    fn maybe_prefetch(&mut self) {
        if self.readahead == 0 || self.pending.is_some() {
            return;
        }
        let Some((first, data)) = &self.cache else {
            return;
        };
        let next = first + (data.len() as u64).div_ceil(self.block_size);
        let start = next * self.block_size;
        if start >= self.size {
            return;
        }
        let len = (self.readahead * self.block_size).min(self.size - start);
        let client = self.client.clone();
        let (blob, version) = (self.blob, self.version);
        let handle = self
            .client
            .system()
            .executor()
            .spawn(move || client.read(blob, Some(version), start, len));
        self.fetches += 1;
        self.pending = Some((next, len, handle));
    }
}

impl DfsInput for BsfsInput {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.pos >= self.size || buf.is_empty() {
            return Ok(0);
        }
        if !self.covers(self.pos) {
            self.fill_cache(self.pos / self.block_size)?;
        }
        let (first, data) = self.cache.as_ref().expect("just filled"); // lint:allow(no-unwrap): fill_cache populated the cache one line up
        let off = (self.pos - first * self.block_size) as usize;
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        self.pos += n as u64;
        Ok(n)
    }

    fn seek(&mut self, pos: u64) -> Result<()> {
        if pos > self.size {
            return Err(Error::OutOfBounds {
                requested_end: pos,
                snapshot_size: self.size,
            });
        }
        self.pos = pos;
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn len(&self) -> u64 {
        self.size
    }
}

/// A buffered writer that appends whole blocks to the file's BLOB.
pub struct BsfsOutput {
    client: BlobClient,
    blob: BlobId,
    buf: BytesMut,
    block_size: usize,
    written: u64,
    last_version: Option<Version>,
    closed: bool,
    /// Patience of `close()`'s reveal wait, from
    /// `BlobSeerConfig::close_reveal_timeout`.
    close_patience: Duration,
    /// Appends issued to BlobSeer (write-behind effectiveness metric).
    flushes: u64,
}

impl BsfsOutput {
    /// Opens a write-behind stream appending to `blob`.
    pub fn new(client: BlobClient, blob: BlobId) -> Self {
        let cfg = client.system().config();
        let block_size = cfg.block_size as usize;
        let close_patience = cfg.close_reveal_timeout;
        Self {
            client,
            blob,
            buf: BytesMut::with_capacity(block_size),
            block_size,
            written: 0,
            last_version: None,
            closed: false,
            close_patience,
            flushes: 0,
        }
    }

    /// Appends issued so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let chunk = self.buf.split().freeze();
        let (_, v) = self.client.append(self.blob, &chunk)?;
        self.flushes += 1;
        self.last_version = Some(v);
        Ok(())
    }

    /// Flushes the tail and waits up to `patience` for the final append's
    /// reveal. Shared by `close()` (full configured patience) and `Drop`
    /// (bounded best-effort).
    fn close_with_patience(&mut self, patience: Duration) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.flush_buf()?;
        self.closed = true;
        // Close-to-open visibility: wait until our last append is revealed,
        // so a reader opening after close() sees everything we wrote.
        if let Some(v) = self.last_version {
            self.client.wait_revealed(self.blob, v, patience)?;
        }
        Ok(())
    }
}

impl DfsOutput for BsfsOutput {
    fn write(&mut self, mut data: &[u8]) -> Result<()> {
        if self.closed {
            return Err(Error::StreamClosed);
        }
        self.written += data.len() as u64;
        // Fill the block buffer; flush every time it reaches a full block
        // ("delays committing writes until a whole block has been filled").
        while !data.is_empty() {
            let room = self.block_size - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == self.block_size {
                self.flush_buf()?;
            }
        }
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.written
    }

    fn close(&mut self) -> Result<()> {
        self.close_with_patience(self.close_patience)
    }
}

impl Drop for BsfsOutput {
    fn drop(&mut self) {
        // Best-effort flush on drop; errors surface only via explicit
        // close. The reveal wait is bounded regardless of configuration —
        // an abandoned stream must never stall its thread for the full
        // close patience.
        let _ = self.close_with_patience(self.close_patience.min(DROP_REVEAL_BOUND));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_core::BlobSeer;
    use blobseer_types::{BlobSeerConfig, NodeId};
    use std::sync::Arc;

    fn system() -> Arc<BlobSeer> {
        BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(256), 4)
    }

    #[test]
    fn small_writes_coalesce_into_block_appends() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let mut out = BsfsOutput::new(c.clone(), blob);
        // 100 writes of 10 bytes = 1000 bytes = 3 full blocks + 232 tail.
        for i in 0..100u8 {
            out.write(&[i; 10]).unwrap();
        }
        assert_eq!(
            out.flush_count(),
            3,
            "only full blocks flushed during writes"
        );
        out.close().unwrap();
        assert_eq!(out.flush_count(), 4, "tail flushed at close");
        let (v, size) = c.latest(blob).unwrap();
        assert_eq!(size, 1000);
        assert_eq!(v.raw(), 4);
        let data = c.read(blob, None, 0, 1000).unwrap();
        for i in 0..100usize {
            assert!(data[i * 10..(i + 1) * 10].iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn reader_prefetches_whole_blocks() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let payload: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        c.write(blob, 0, &payload).unwrap();
        let mut input = BsfsInput::open(c, blob).unwrap();
        // 64 reads of 4 bytes from block 0: exactly one fetch.
        let mut buf = [0u8; 4];
        for i in 0..64usize {
            input.read_exact(&mut buf).unwrap();
            assert_eq!(&buf[..], &payload[i * 4..i * 4 + 4]);
        }
        assert_eq!(input.fetch_count(), 1, "4 KB-style reads served from cache");
        // Crossing into block 1 triggers the second fetch.
        input.read_exact(&mut buf).unwrap();
        assert_eq!(input.fetch_count(), 2);
    }

    #[test]
    fn seek_within_cached_block_keeps_cache() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        c.write(blob, 0, &vec![9u8; 512]).unwrap();
        let mut input = BsfsInput::open(c, blob).unwrap();
        let mut buf = [0u8; 8];
        input.read_exact(&mut buf).unwrap();
        input.seek(100).unwrap();
        input.read_exact(&mut buf).unwrap();
        assert_eq!(input.fetch_count(), 1, "seek within block 0 is a cache hit");
        input.seek(300).unwrap();
        input.read_exact(&mut buf).unwrap();
        assert_eq!(input.fetch_count(), 2);
    }

    #[test]
    fn reader_is_snapshot_isolated() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        c.write(blob, 0, &[1u8; 256]).unwrap();
        let mut input = BsfsInput::open(c.clone(), blob).unwrap();
        // A concurrent writer overwrites the file.
        c.write(blob, 0, &[2u8; 256]).unwrap();
        let mut buf = [0u8; 256];
        input.read_exact(&mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 1),
            "pinned snapshot sees the old data"
        );
        // A fresh reader sees the new version.
        let mut input2 = BsfsInput::open(c, blob).unwrap();
        input2.read_exact(&mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn write_after_close_fails_and_drop_flushes() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        {
            let mut out = BsfsOutput::new(c.clone(), blob);
            out.write(b"dropped but flushed").unwrap();
            // No explicit close: Drop must flush.
        }
        assert_eq!(c.latest(blob).unwrap().1, 19);
        let mut out = BsfsOutput::new(c, blob);
        out.close().unwrap();
        assert!(matches!(out.write(b"x"), Err(Error::StreamClosed)));
    }

    #[test]
    fn close_reveal_patience_is_configurable_and_drop_is_bounded() {
        use blobseer_core::WriteIntent;
        use std::time::Instant;
        // A stuck predecessor version means the stream's final append can
        // never reveal. close() must give up after the *configured*
        // patience (the seed hard-coded 30 s), and Drop after its own
        // bound, instead of stalling the caller.
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(256)
            .with_close_reveal_timeout(Duration::from_millis(50));
        let sys = BlobSeer::deploy(cfg, 4);
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let _stuck = sys
            .version_manager()
            .assign(blob, WriteIntent::Append { size: 256 })
            .unwrap();

        let mut out = BsfsOutput::new(c.clone(), blob);
        out.write(&[1u8; 256]).unwrap(); // full block: flushed as v2
        let t0 = Instant::now();
        let err = out.close().unwrap_err();
        assert!(matches!(err, Error::Timeout(_)), "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "configured 50 ms patience must beat the 30 s default"
        );

        // Drop of an abandoned stream: bounded even with a long configured
        // patience.
        let cfg = BlobSeerConfig::small_for_tests().with_block_size(256);
        let sys = BlobSeer::deploy(cfg, 4);
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let _stuck = sys
            .version_manager()
            .assign(blob, WriteIntent::Append { size: 256 })
            .unwrap();
        let t0 = Instant::now();
        {
            let mut out = BsfsOutput::new(c, blob);
            out.write(&[2u8; 256]).unwrap();
            // No close: Drop flushes and waits at most its bound.
        }
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "drop must not wait the full close patience: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn readahead_stream_delivers_identical_bytes_with_fewer_fetches() {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(256)
            .with_readahead_bytes(512);
        let sys = BlobSeer::deploy(cfg, 4);
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        c.write(blob, 0, &payload).unwrap();
        let mut input = BsfsInput::open(c, blob).unwrap();
        let mut got = vec![0u8; 4096];
        // Odd-sized reads to exercise run-boundary crossings.
        for chunk in got.chunks_mut(100) {
            input.read_exact(chunk).unwrap();
        }
        assert_eq!(got, payload, "read-ahead must not change delivered bytes");
        // 16 blocks: 1 demand fetch + 2-block prefetch runs, far fewer than
        // the 16 demand fetches of the non-read-ahead stream.
        assert!(
            input.fetch_count() < 16,
            "prefetch runs must coalesce fetches: {}",
            input.fetch_count()
        );
    }

    #[test]
    fn seek_away_from_prefetch_sequence_stays_correct() {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(256)
            .with_readahead_bytes(256);
        let sys = BlobSeer::deploy(cfg, 4);
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let payload: Vec<u8> = (0..2048u32).map(|i| i as u8).collect();
        c.write(blob, 0, &payload).unwrap();
        let mut input = BsfsInput::open(c, blob).unwrap();
        let mut buf = [0u8; 16];
        input.read_exact(&mut buf).unwrap(); // block 0 + prefetch of block 1
        input.seek(6 * 256).unwrap(); // jump away: prefetch discarded
        input.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], &payload[6 * 256..6 * 256 + 16]);
    }

    #[test]
    fn empty_file_reads_zero() {
        let sys = system();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        let mut input = BsfsInput::open(c, blob).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(input.read(&mut buf).unwrap(), 0);
        assert_eq!(input.len(), 0);
        assert!(input.is_empty());
    }
}
