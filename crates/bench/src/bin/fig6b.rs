//! Regenerates Fig. 6(b): distributed grep — job completion time as the
//! input grows 6.4→12.8 GB (§V-G).

use experiments::{fig6, Constants};

fn main() {
    let c = Constants::default();
    let sizes = if bench::quick_mode() {
        vec![6.4, 12.8]
    } else {
        fig6::grep_paper_sizes()
    };
    bench::print_figure(&fig6::run_grep(&c, &sizes));
}
