//! The Map/Reduce execution engine: jobtracker + tasktrackers (§II-B).
//!
//! "The framework consists of a single master jobtracker, and multiple
//! slave tasktrackers, one per node. The jobtracker is responsible for
//! scheduling the jobs' component tasks on the slaves."
//!
//! The scheduler is locality-aware (§V-E): a free tasktracker slot prefers
//! a map task whose input block lives on its own node (a *local map*);
//! otherwise it takes any pending task (a *remote map*). The distinction —
//! driven entirely by the storage layer's block-location call — is what
//! couples job completion time to the placement quality of the underlying
//! file system, the effect measured in Fig. 6(b).

use crate::job::{InputSpec, InputSplit, JobReport, JobSpec, Mapper, Reducer};

/// One reducer's shuffle bucket: intermediate `(key, value)` records.
type ShuffleBucket = Vec<(Vec<u8>, Vec<u8>)>;
use blobseer_types::{Error, NodeId, Result};
use dfs::api::FileSystem;
use dfs::util::LineReader;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One tasktracker: a node with map/reduce slots and its own FileSystem
/// mount (co-deployed with a datanode/provider in the paper's setup, §V-G).
pub struct TaskTracker {
    /// The node this tracker runs on.
    pub node: NodeId,
    /// Concurrent task slots (Hadoop default: 2).
    pub slots: usize,
    /// The tracker's storage mount.
    pub fs: Box<dyn FileSystem>,
}

impl TaskTracker {
    /// A tracker with the Hadoop-default two slots.
    pub fn new(node: NodeId, fs: Box<dyn FileSystem>) -> Self {
        Self { node, slots: 2, fs }
    }
}

/// The jobtracker: schedules and runs jobs over a set of tasktrackers.
pub struct JobTracker {
    trackers: Vec<TaskTracker>,
}

struct MapTask {
    split: InputSplit,
    taken: bool,
}

/// Work shared by all tasktracker threads during the map phase.
struct MapPhase<'j> {
    job: &'j JobSpec,
    mapper: &'j dyn Mapper,
    /// Optional map-side combiner applied to each task's buckets.
    combiner: Option<&'j dyn Reducer>,
    /// Nodes that host a tasktracker (for delay scheduling).
    tracker_nodes: Vec<NodeId>,
    tasks: Mutex<Vec<MapTask>>,
    /// Intermediate data: per-reducer buckets of (key, value).
    shuffle: Vec<Mutex<ShuffleBucket>>,
    local_maps: AtomicUsize,
    remote_maps: AtomicUsize,
    input_records: AtomicU64,
    output_records: AtomicU64,
    /// Records that actually entered the shuffle (== map outputs unless a
    /// combiner compacted them).
    shuffle_records: AtomicU64,
    errors: Mutex<Vec<Error>>,
}

impl JobTracker {
    /// A jobtracker over the given tasktrackers.
    pub fn new(trackers: Vec<TaskTracker>) -> Self {
        assert!(!trackers.is_empty(), "need at least one tasktracker");
        Self { trackers }
    }

    /// Number of tasktrackers.
    pub fn tracker_count(&self) -> usize {
        self.trackers.len()
    }

    /// Runs a map-only job.
    pub fn run_map_only(&self, job: &JobSpec, mapper: &dyn Mapper) -> Result<JobReport> {
        assert_eq!(job.reducers, 0, "map-only jobs take 0 reducers");
        self.run(job, mapper, None)
    }

    /// Runs a full map/reduce job.
    pub fn run_job(
        &self,
        job: &JobSpec,
        mapper: &dyn Mapper,
        reducer: &dyn Reducer,
    ) -> Result<JobReport> {
        assert!(
            job.reducers > 0,
            "map/reduce jobs need at least one reducer"
        );
        self.run_with(job, mapper, Some(reducer), None)
    }

    /// Runs a map/reduce job with a map-side *combiner*: each map task
    /// pre-aggregates its per-reducer buckets with `combiner` before they
    /// enter the shuffle, cutting intermediate data volume (Hadoop's
    /// classic optimization; the reduce output is unchanged for
    /// associative+commutative reducers like sums).
    pub fn run_job_with_combiner(
        &self,
        job: &JobSpec,
        mapper: &dyn Mapper,
        reducer: &dyn Reducer,
        combiner: &dyn Reducer,
    ) -> Result<JobReport> {
        assert!(
            job.reducers > 0,
            "map/reduce jobs need at least one reducer"
        );
        self.run_with(job, mapper, Some(reducer), Some(combiner))
    }

    fn run(
        &self,
        job: &JobSpec,
        mapper: &dyn Mapper,
        reducer: Option<&dyn Reducer>,
    ) -> Result<JobReport> {
        self.run_with(job, mapper, reducer, None)
    }

    fn run_with(
        &self,
        job: &JobSpec,
        mapper: &dyn Mapper,
        reducer: Option<&dyn Reducer>,
        combiner: Option<&dyn Reducer>,
    ) -> Result<JobReport> {
        let started = std::time::Instant::now();
        let driver_fs = &*self.trackers[0].fs;
        driver_fs.mkdirs(&job.output_dir)?;
        let splits = self.compute_splits(job, driver_fs)?;
        let map_tasks = splits.len();

        let phase = MapPhase {
            job,
            mapper,
            combiner,
            tracker_nodes: self.trackers.iter().map(|t| t.node).collect(),
            tasks: Mutex::named(
                splits
                    .into_iter()
                    .map(|split| MapTask {
                        split,
                        taken: false,
                    })
                    .collect(),
                "mr.tasks",
            ),
            shuffle: (0..job.reducers.max(1))
                .map(|i| Mutex::ranked(Vec::new(), "mr.shuffle", i as u32))
                .collect(),
            local_maps: AtomicUsize::new(0),
            remote_maps: AtomicUsize::new(0),
            input_records: AtomicU64::new(0),
            output_records: AtomicU64::new(0),
            shuffle_records: AtomicU64::new(0),
            errors: Mutex::named(Vec::new(), "mr.errors"),
        };

        // --- map phase: every slot of every tracker pulls tasks ---------
        std::thread::scope(|s| {
            for tracker in &self.trackers {
                for slot in 0..tracker.slots {
                    let phase = &phase;
                    s.spawn(move || map_worker(tracker, slot, phase, reducer.is_some()));
                }
            }
        });
        if let Some(e) = phase.errors.lock().pop() {
            return Err(e);
        }

        // --- reduce phase -------------------------------------------------
        let mut output_files = Vec::new();
        let output_records = AtomicU64::new(0);
        if reducer.is_some() {
            let reduce_errors: Mutex<Vec<Error>> = Mutex::named(Vec::new(), "mr.reduce_errors");
            let next_reduce = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for tracker in &self.trackers {
                    for _ in 0..tracker.slots {
                        let phase = &phase;
                        let next = &next_reduce;
                        let errs = &reduce_errors;
                        let out_recs = &output_records;
                        let reducer = reducer.expect("checked");
                        s.spawn(move || loop {
                            let r = next.fetch_add(1, Ordering::Relaxed);
                            if r >= phase.job.reducers {
                                return;
                            }
                            if let Err(e) =
                                run_reduce(tracker, phase.job, reducer, phase, r, out_recs)
                            {
                                errs.lock().push(e);
                            }
                        });
                    }
                }
            });
            if let Some(e) = reduce_errors.lock().pop() {
                return Err(e);
            }
            for r in 0..job.reducers {
                output_files.push(part_path(&job.output_dir, "part-r", r));
            }
        } else {
            for m in 0..map_tasks {
                output_files.push(part_path(&job.output_dir, "part-m", m));
            }
            output_records.store(
                phase.output_records.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }

        Ok(JobReport {
            name: job.name.clone(),
            backend: driver_fs.backend_name().to_string(),
            map_tasks,
            local_maps: phase.local_maps.load(Ordering::Relaxed),
            remote_maps: phase.remote_maps.load(Ordering::Relaxed),
            reduce_tasks: job.reducers,
            map_input_records: phase.input_records.load(Ordering::Relaxed),
            map_output_records: phase.output_records.load(Ordering::Relaxed),
            shuffle_records: phase.shuffle_records.load(Ordering::Relaxed),
            output_records: output_records.load(Ordering::Relaxed),
            duration_micros: started.elapsed().as_micros(),
            output_files,
        })
    }

    /// One split per storage block, with the block's hosts as affinity
    /// hints (§V-G: a 64 MB data block per mapper).
    fn compute_splits(&self, job: &JobSpec, fs: &dyn FileSystem) -> Result<Vec<InputSplit>> {
        let mut splits = Vec::new();
        match &job.input {
            InputSpec::Generated { splits: n } => {
                for i in 0..*n {
                    splits.push(InputSplit {
                        id: i,
                        file: None,
                        offset: i as u64,
                        len: 0,
                        hosts: Vec::new(),
                    });
                }
            }
            InputSpec::Files(files) => {
                for file in files {
                    let len = fs.status(file)?.len;
                    if len == 0 {
                        continue;
                    }
                    for loc in fs.block_locations(file, 0, len)? {
                        splits.push(InputSplit {
                            id: splits.len(),
                            file: Some(file.clone()),
                            offset: loc.offset,
                            len: loc.length,
                            hosts: loc.hosts,
                        });
                    }
                }
            }
        }
        Ok(splits)
    }
}

fn part_path(dir: &str, prefix: &str, i: usize) -> String {
    format!("{dir}/{prefix}-{i:05}")
}

/// How long a slot without local work waits before stealing a task that is
/// local to another tracker — *delay scheduling* (Zaharia et al., the
/// paper's reference [17]). Bounded so busy nodes cannot stall the job.
const STEAL_DELAY_ROUNDS: u32 = 40;
const STEAL_DELAY_STEP: std::time::Duration = std::time::Duration::from_micros(250);

/// A tasktracker slot's map loop: prefer node-local tasks, then tasks local
/// to nobody, and only after a bounded delay steal another node's local
/// work.
fn map_worker(tracker: &TaskTracker, slot: usize, phase: &MapPhase<'_>, has_reduce: bool) {
    let mut patience = STEAL_DELAY_ROUNDS;
    loop {
        enum Pick {
            Run(InputSplit, bool),
            Wait,
            Done,
        }
        let picked = {
            let mut tasks = phase.tasks.lock();
            // 1. A task whose block lives on this node.
            let local = tasks
                .iter()
                .position(|t| !t.taken && t.split.hosts.contains(&tracker.node));
            // 2. A task that is local to no tracker (nothing is lost).
            let unclaimed = local.or_else(|| {
                tasks.iter().position(|t| {
                    !t.taken
                        && !t
                            .split
                            .hosts
                            .iter()
                            .any(|h| phase.tracker_nodes.contains(h))
                })
            });
            // 3. Steal another node's local task, after the delay budget.
            let any = tasks.iter().position(|t| !t.taken);
            match (unclaimed, any) {
                (Some(i), _) => {
                    tasks[i].taken = true;
                    Pick::Run(tasks[i].split.clone(), local.is_some())
                }
                (None, Some(i)) if patience == 0 => {
                    tasks[i].taken = true;
                    Pick::Run(tasks[i].split.clone(), false)
                }
                (None, Some(_)) => Pick::Wait,
                (None, None) => Pick::Done,
            }
        };
        let (split, is_local) = match picked {
            Pick::Done => return,
            Pick::Wait => {
                patience -= 1;
                std::thread::sleep(STEAL_DELAY_STEP);
                continue;
            }
            Pick::Run(split, is_local) => {
                patience = STEAL_DELAY_ROUNDS;
                (split, is_local)
            }
        };
        if split.file.is_some() {
            if is_local {
                phase.local_maps.fetch_add(1, Ordering::Relaxed);
            } else {
                phase.remote_maps.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = slot;
        if let Err(e) = run_map(tracker, phase, &split, has_reduce) {
            phase.errors.lock().push(e);
            return;
        }
    }
}

/// Executes one map task: read records of the split, run the mapper,
/// partition output into the shuffle (or write part-m for map-only jobs).
fn run_map(
    tracker: &TaskTracker,
    phase: &MapPhase<'_>,
    split: &InputSplit,
    has_reduce: bool,
) -> Result<()> {
    let reducers = phase.job.reducers.max(1);
    // Local per-reducer buffers; merged into the shuffle at task end.
    let mut local_out: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); reducers];
    let mut map_output = 0u64;
    {
        let mut emit = |k: &[u8], v: &[u8]| {
            map_output += 1;
            let r = partition(k, reducers);
            local_out[r].push((k.to_vec(), v.to_vec()));
        };
        match &split.file {
            None => {
                // Generated split: one synthetic record.
                phase.input_records.fetch_add(1, Ordering::Relaxed);
                phase.mapper.map(split.offset, b"", &mut emit);
            }
            Some(file) => {
                let mut input = tracker.fs.open(file)?;
                // Hadoop's record-boundary convention: a line belongs to the
                // split containing its first byte. Seek to offset-1 and
                // discard one (possibly empty) line so we start at a line
                // boundary without losing aligned lines.
                let mut start = split.offset;
                let mut skip_first = false;
                if start > 0 {
                    start -= 1;
                    skip_first = true;
                }
                input.seek(start)?;
                let mut reader = LineReader::new(input);
                let mut line = Vec::new();
                if skip_first {
                    reader.read_line(&mut line)?;
                }
                let end = split.offset + split.len;
                loop {
                    let line_start = reader.next_offset();
                    if line_start >= end {
                        break;
                    }
                    if !reader.read_line(&mut line)? {
                        break;
                    }
                    phase.input_records.fetch_add(1, Ordering::Relaxed);
                    phase.mapper.map(line_start, &line, &mut emit);
                }
            }
        }
    }
    phase
        .output_records
        .fetch_add(map_output, Ordering::Relaxed);

    if has_reduce {
        for (r, bucket) in local_out.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut bucket = match phase.combiner {
                None => bucket,
                Some(combiner) => combine_bucket(combiner, bucket),
            };
            phase
                .shuffle_records
                .fetch_add(bucket.len() as u64, Ordering::Relaxed);
            phase.shuffle[r].lock().append(&mut bucket);
        }
    } else {
        // Map-only: write this task's output as its own part file.
        let path = part_path(&phase.job.output_dir, "part-m", split.id);
        let mut out = tracker.fs.create(&path, true)?;
        for (k, v) in local_out.into_iter().flatten() {
            write_record(&mut *out, &k, &v)?;
        }
        out.close()?;
    }
    Ok(())
}

/// Map-side combine: group a bucket by key and collapse each group with
/// the combiner (sorted, like the reduce input contract).
fn combine_bucket(combiner: &dyn Reducer, bucket: ShuffleBucket) -> ShuffleBucket {
    let mut grouped: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
    for (k, v) in bucket {
        grouped.entry(k).or_default().push(v);
    }
    let mut out = Vec::with_capacity(grouped.len());
    for (k, vs) in &grouped {
        combiner.reduce(k, vs, &mut |ck, cv| {
            out.push((ck.to_vec(), cv.to_vec()));
        });
    }
    out
}

/// Executes one reduce task: sort/group partition `r`, run the reducer,
/// write part-r.
fn run_reduce(
    tracker: &TaskTracker,
    job: &JobSpec,
    reducer: &dyn Reducer,
    phase: &MapPhase<'_>,
    r: usize,
    output_records: &AtomicU64,
) -> Result<()> {
    let pairs = std::mem::take(&mut *phase.shuffle[r].lock());
    let mut grouped: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
    for (k, v) in pairs {
        grouped.entry(k).or_default().push(v);
    }
    let path = part_path(&job.output_dir, "part-r", r);
    let mut out = tracker.fs.create(&path, true)?;
    let mut written = 0u64;
    {
        let mut emit = |k: &[u8], v: &[u8]| {
            written += 1;
            // Buffered into the DfsOutput; errors surface at close.
            let _ = write_record(&mut *out, k, v);
        };
        for (k, vs) in &grouped {
            reducer.reduce(k, vs, &mut emit);
        }
    }
    out.close()?;
    output_records.fetch_add(written, Ordering::Relaxed);
    Ok(())
}

/// Hash partitioner (Hadoop's default).
fn partition(key: &[u8], reducers: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % reducers as u64) as usize
}

/// Text output format: `key<TAB>value\n`, or `key\n` when the value is
/// empty.
fn write_record(out: &mut dyn dfs::api::DfsOutput, k: &[u8], v: &[u8]) -> Result<()> {
    out.write(k)?;
    if !v.is_empty() {
        out.write(b"\t")?;
        out.write(v)?;
    }
    out.write(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for r in 1..8 {
            for key in [b"alpha".as_ref(), b"beta", b"", b"x"] {
                let p = partition(key, r);
                assert!(p < r);
                assert_eq!(p, partition(key, r));
            }
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let mut counts = vec![0u32; 4];
        for i in 0..1000u32 {
            counts[partition(format!("key-{i}").as_bytes(), 4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 150),
            "skewed partitioner: {counts:?}"
        );
    }
}
