//! The BlobSeer deployment and client: create/read/write/append with full
//! concurrency (§III-B, "clients can access the BLOBs with full concurrency,
//! even if they all access the same BLOB").
//!
//! # Write protocol (§III-D)
//!
//! 1. **Data phase, fully parallel:** the client splits the payload into
//!    blocks, asks the provider manager for targets, and stores the blocks.
//!    No synchronization with other writers ([`write`]/[`append`] modules).
//! 2. **Version assignment:** the only serialized step — the version
//!    manager assigns the snapshot number (and fixes append offsets).
//! 3. **Metadata phase, again parallel:** the client builds its tree nodes,
//!    weaving references to lower versions (including still-in-flight ones,
//!    via the write-log hints), and publishes them to the metadata DHT.
//! 4. **Commit:** the version manager reveals the snapshot once all lower
//!    versions have committed, which is what makes the whole history
//!    linearizable (§III-A.5).
//!
//! # Semantics of unaligned operations
//!
//! Metadata leaves cover fixed-size blocks, so operations that are not
//! block-aligned perform a read-modify-write of the boundary blocks (the
//! original system simply required page-aligned accesses; we relax that):
//!
//! * **Unaligned `write`** merges against the latest *revealed* snapshot at
//!   the time the write starts; two concurrent writers touching the *same
//!   block* resolve at block granularity (the later version wins the whole
//!   block).
//! * **Unaligned `append`** is exact even under concurrency: the version
//!   manager orders appends, and the rare unaligned path waits for its
//!   predecessor's reveal before merging the tail block, so no appended
//!   byte is ever lost. Block-aligned appends — all of Hadoop's traffic,
//!   thanks to BSFS's write-behind cache, and all the paper's workloads —
//!   skip the wait and retain the protocol's full parallelism. The wait's
//!   patience is `BlobSeerConfig::unaligned_append_timeout`.
//!
//! # How to add a backend
//!
//! The client is written entirely against the port traits of
//! [`crate::ports`] — it never names a concrete service implementation. To
//! run the unchanged protocol on a new backend:
//!
//! 1. Implement [`crate::ports::BlockStore`] (and/or
//!    [`crate::ports::MetaStore`], [`crate::ports::VersionService`]) for
//!    your transport. Decorators that wrap an existing adapter work too —
//!    see [`crate::faults`] for fault injection and `experiments::concurrent`
//!    for the simnet-backed cost model driving the figure reproductions.
//! 2. Assemble an [`EnginePorts`] value (start from
//!    [`EnginePorts::in_memory`] and replace the fields you customize).
//! 3. Call [`BlobSeer::deploy_ports`]. Every [`BlobClient`] obtained from
//!    the deployment now routes its data, metadata and version traffic
//!    through your adapters.
//!
//! The traits are object-safe by design (`Arc<dyn …>` wiring), so backends
//! can be chosen at runtime.
//!
//! **The vectored methods and the migration path.** The client's hot paths
//! call the *vectored* store methods — `put_many`/`get_many`/`delete_many`
//! on [`crate::ports::BlockStore`] (one batch per data provider) and
//! [`crate::ports::MetaStore`] (one batch per tree level) — with per-item
//! `Result`s, so a write's data phase, a publish, a descent and a GC
//! cascade each cost O(levels + providers) backend calls rather than
//! O(blocks + nodes). A new adapter does **not** have to implement them:
//! every vectored method defaults to looping over its single-item
//! sibling, so step 1 above is still "implement `put`/`get`/`delete`" and
//! the protocol works immediately, just without amortization. Once the
//! backend has a cheaper bulk path (a multi-put wire frame, a pipelined
//! transaction, one lock per batch), override the vectored methods —
//! keeping two invariants: results come back *per item, in input order*
//! (a subset may fail while the rest land; decorators rely on this), and
//! batched semantics must equal the same single ops run in sequence
//! (`tests/ports_equivalence.rs` has ready-made properties to hold a new
//! adapter to exactly that).
//!
//! **Worked example: the TCP backend.** The `blobseer-rpc` crate follows
//! exactly this recipe to take the protocol over real sockets:
//! `RpcBlockStore`/`RpcMetaStore`/`RpcVersionService` implement the three
//! traits over a small budget of *multiplexed* TCP connections (one frame
//! per port call — one per *batch* for the vectored methods, with
//! per-item status codes; service errors round-trip the wire as their own
//! [`blobseer_types::Error`] variants), and
//! `blobseer_rpc::LoopbackCluster::deploy` is nothing more than step
//! 2 + 3: it fills an [`EnginePorts`] with the RPC adapters and hands it
//! to [`BlobSeer::deploy_ports`]. Two practical notes for remote backends
//! it illustrates: fetch fixed deployment *shape* (provider count,
//! hosting nodes, block size) once at connect time so the non-`Result`
//! trait methods stay cheap and infallible, and correlate responses with
//! a per-frame request id rather than with connection order, because port
//! calls like [`crate::ports::VersionService::wait_revealed`] block
//! server-side — a caller parked for seconds must not occupy a
//! connection that hundreds of fast reads could be sharing.
//!
//! [`write`]: BlobClient::write
//! [`append`]: BlobClient::append

mod append;
mod deploy;
mod read;
mod write;

pub use deploy::{BlobSeer, EnginePorts};
pub(crate) use write::push_grouped;

use crate::gc::GcReport;
use crate::version_manager::SnapshotInfo;
use blobseer_types::{BlobId, ByteRange, Error, NodeId, Result, Version};
use std::sync::Arc;
use std::time::Duration;

/// A located extent of a BLOB: which nodes hold the block covering it.
/// The paper's locality primitive (§IV-C): "given a specified BLOB id,
/// version, offset and size, it returns the list of blocks that make up the
/// requested range, and the addresses of the physical nodes".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockLocation {
    /// The byte extent within the BLOB covered by this entry.
    pub range: ByteRange,
    /// Index of the underlying block.
    pub block_index: u64,
    /// Nodes hosting replicas (empty for holes).
    pub nodes: Vec<NodeId>,
}

/// A client handle. Cheap to clone; all methods are `&self` and safe to
/// call from many threads.
#[derive(Clone)]
pub struct BlobClient {
    pub(crate) sys: Arc<BlobSeer>,
    pub(crate) node: NodeId,
}

impl BlobClient {
    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The deployment this client talks to.
    pub fn system(&self) -> &Arc<BlobSeer> {
        &self.sys
    }

    /// Creates a new empty BLOB (§III-A.1).
    ///
    /// # Panics
    /// Panics when the version manager is unreachable or its durable log
    /// cannot be appended; use [`Self::try_create`] to handle that as an
    /// error instead.
    pub fn create(&self) -> BlobId {
        // lint:allow(no-unwrap): documented convenience wrapper; the fallible path is try_create
        self.try_create().expect("create_blob failed")
    }

    /// [`Self::create`], propagating service-level failures.
    pub fn try_create(&self) -> Result<BlobId> {
        self.sys.vm.create_blob()
    }

    /// The latest revealed snapshot: `(version, size)`.
    pub fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        self.sys.vm.latest(blob)
    }

    /// Size of a specific snapshot.
    pub fn size(&self, blob: BlobId, version: Version) -> Result<u64> {
        Ok(self.sys.vm.snapshot_info(blob, version)?.size)
    }

    /// Blocks until `version` is revealed (the paper's "mechanism that
    /// allows the client to find out when new snapshot versions are
    /// available", §III-A.5).
    pub fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        self.sys.vm.wait_revealed(blob, version, timeout)
    }

    // --- versioning extensions ---------------------------------------------

    /// The revealed history of a BLOB: one [`SnapshotInfo`] per readable
    /// version, oldest first (inherited pre-branch versions included).
    /// Backs tooling like `examples/versioning_workflow.rs` and makes the
    /// paper's "all past versions … can potentially be accessed" concrete.
    pub fn history(&self, blob: BlobId) -> Result<Vec<SnapshotInfo>> {
        let (latest, _) = self.sys.vm.latest(blob)?;
        let mut out = Vec::with_capacity(latest.raw() as usize);
        for v in 1..=latest.raw() {
            match self.sys.vm.snapshot_info(blob, Version::new(v)) {
                Ok(info) => out.push(info),
                // Collected versions are simply absent from the history.
                Err(Error::NoSuchVersion { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Forks the BLOB at a revealed version into an independent BLOB
    /// sharing all data and metadata (§VI-A). O(1).
    pub fn branch(&self, blob: BlobId, at: Version) -> Result<BlobId> {
        let info = self.sys.vm.snapshot_info(blob, at)?;
        let forked = self.sys.vm.branch(blob, at)?;
        if info.cap > 0 {
            // The fork holds a GC reference on the branch point's root.
            self.sys.gc.inc_nodes(&[info.root_key()])?;
        }
        Ok(forked)
    }

    /// Deletes the BLOB: unregisters it and reclaims the storage of all its
    /// versions. Branches taken from it keep working (they hold their own
    /// references on the shared history).
    pub fn delete_blob(&self, blob: BlobId) -> Result<GcReport> {
        let roots = self.sys.vm.delete_blob(blob)?;
        self.sys.gc.release_roots(&roots)
    }

    /// Garbage-collects own versions strictly below `keep_from` (§III-A.1:
    /// versions live "as long as they have not been garbaged for the sake
    /// of storage space"). The latest revealed version is always kept.
    pub fn gc_before(&self, blob: BlobId, keep_from: Version) -> Result<GcReport> {
        let roots = self.sys.vm.collect_before(blob, keep_from)?;
        self.sys.gc.release_roots(&roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version_manager::WriteIntent;
    use blobseer_types::config::PlacementPolicy;
    use blobseer_types::BlobSeerConfig;

    fn small_system() -> Arc<BlobSeer> {
        BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(64), 4)
    }

    fn client(sys: &Arc<BlobSeer>) -> BlobClient {
        sys.client(NodeId::new(100))
    }

    #[test]
    fn write_read_roundtrip_aligned() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let v = c.write(blob, 0, &data).unwrap();
        assert_eq!(v, Version::new(1));
        assert_eq!(c.latest(blob).unwrap(), (v, 256));
        assert_eq!(&c.read(blob, None, 0, 256).unwrap()[..], &data[..]);
        // Sub-range with unaligned extremes (§III-C).
        assert_eq!(&c.read(blob, None, 100, 100).unwrap()[..], &data[100..200]);
    }

    #[test]
    fn append_accumulates() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        let (o1, v1) = c.append(blob, &[1u8; 64]).unwrap();
        let (o2, v2) = c.append(blob, &[2u8; 64]).unwrap();
        assert_eq!((o1, o2), (0, 64));
        assert_eq!((v1, v2), (Version::new(1), Version::new(2)));
        let all = c.read(blob, None, 0, 128).unwrap();
        assert!(all[..64].iter().all(|&b| b == 1));
        assert!(all[64..].iter().all(|&b| b == 2));
    }

    #[test]
    fn unaligned_append_slow_path() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.append(blob, &[7u8; 40]).unwrap(); // leaves file at 40 bytes (unaligned)
        let (o, _) = c.append(blob, &[9u8; 100]).unwrap();
        assert_eq!(o, 40);
        let all = c.read(blob, None, 0, 140).unwrap();
        assert!(all[..40].iter().all(|&b| b == 7), "prefix preserved");
        assert!(all[40..].iter().all(|&b| b == 9), "appended bytes");
    }

    #[test]
    fn every_version_remains_readable() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 128]).unwrap();
        c.write(blob, 64, &[2u8; 64]).unwrap();
        c.write(blob, 0, &[3u8; 32]).unwrap();
        // v1: all ones.
        let v1 = c.read(blob, Some(Version::new(1)), 0, 128).unwrap();
        assert!(v1.iter().all(|&b| b == 1));
        // v2: ones then twos.
        let v2 = c.read(blob, Some(Version::new(2)), 0, 128).unwrap();
        assert!(v2[..64].iter().all(|&b| b == 1));
        assert!(v2[64..].iter().all(|&b| b == 2));
        // v3: RMW merged first block.
        let v3 = c.read(blob, Some(Version::new(3)), 0, 128).unwrap();
        assert!(v3[..32].iter().all(|&b| b == 3));
        assert!(v3[32..64].iter().all(|&b| b == 1));
        assert!(v3[64..].iter().all(|&b| b == 2));
    }

    #[test]
    fn holes_read_as_zeros() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 200, &[5u8; 56]).unwrap(); // blocks 0–2 are holes
        let all = c.read(blob, None, 0, 256).unwrap();
        assert!(all[..200].iter().all(|&b| b == 0));
        assert!(all[200..].iter().all(|&b| b == 5));
    }

    #[test]
    fn out_of_bounds_and_empty_reads() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 100]).unwrap();
        assert!(matches!(
            c.read(blob, None, 50, 51),
            Err(Error::OutOfBounds {
                requested_end: 101,
                snapshot_size: 100
            })
        ));
        assert_eq!(c.read(blob, None, 100, 0).unwrap().len(), 0, "EOF read");
        assert_eq!(c.read(blob, None, 0, 0).unwrap().len(), 0);
        // Huge offsets must fail cleanly instead of wrapping past the
        // bounds check (release) or panicking on overflow (debug).
        assert!(matches!(
            c.read(blob, None, u64::MAX, 2),
            Err(Error::OutOfBounds { .. })
        ));
        assert!(matches!(
            c.locations(blob, None, u64::MAX - 1, 3),
            Err(Error::OutOfBounds { .. })
        ));
        // The write path gets the same hardening: a range overflowing u64
        // is rejected up front, before any geometry math can wrap.
        assert!(matches!(
            c.write(blob, u64::MAX - 10, &[0u8; 100]),
            Err(Error::WriteAborted(_))
        ));
        // A range that fits u64 but whose *block-rounded* end does not
        // must fail the same way (the tail_end rounding would wrap).
        assert!(matches!(
            c.write(blob, u64::MAX - 50, &[9u8; 10]),
            Err(Error::WriteAborted(_))
        ));
        assert_eq!(
            c.latest(blob).unwrap().1,
            100,
            "rejected writes left no trace"
        );
    }

    #[test]
    fn explicit_unrevealed_version_is_refused() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 64]).unwrap();
        // Manually assign a version that never commits.
        let _stuck = sys
            .version_manager()
            .assign(blob, WriteIntent::Append { size: 64 })
            .unwrap();
        let v3 = c.write(blob, 0, &[3u8; 64]); // commits, but reveal stalls behind v2
        let v3 = v3.unwrap();
        assert!(matches!(
            c.read(blob, Some(v3), 0, 64),
            Err(Error::VersionNotRevealed { .. })
        ));
        // Latest revealed is still v1.
        assert_eq!(c.latest(blob).unwrap().0, Version::new(1));
    }

    #[test]
    fn failed_write_repair_unblocks_readers() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 128]).unwrap();
        let v2 = c
            .simulate_failed_write(
                blob,
                WriteIntent::Write {
                    offset: 64,
                    size: 64,
                },
            )
            .unwrap();
        // The repaired version reveals and reads as v1's content.
        assert_eq!(c.latest(blob).unwrap().0, v2);
        let data = c.read(blob, Some(v2), 0, 128).unwrap();
        assert!(data.iter().all(|&b| b == 1));
        assert_eq!(sys.stats().snapshot().writes_aborted, 1);
        // Writes continue normally on top.
        let v3 = c.write(blob, 0, &[3u8; 64]).unwrap();
        let data = c.read(blob, Some(v3), 0, 128).unwrap();
        assert!(data[..64].iter().all(|&b| b == 3));
        assert!(data[64..].iter().all(|&b| b == 1));
    }

    #[test]
    fn failed_append_extends_with_zeros() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 64]).unwrap();
        let v = c
            .simulate_failed_write(blob, WriteIntent::Append { size: 64 })
            .unwrap();
        assert_eq!(
            c.size(blob, v).unwrap(),
            128,
            "aborted append still extends"
        );
        let data = c.read(blob, Some(v), 0, 128).unwrap();
        assert!(data[..64].iter().all(|&b| b == 1));
        assert!(
            data[64..].iter().all(|&b| b == 0),
            "aborted range reads as zeros"
        );
    }

    #[test]
    fn locations_expose_replica_nodes() {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(64)
            .with_replication(2);
        let sys = BlobSeer::deploy(cfg, 4);
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 192]).unwrap();
        let locs = c.locations(blob, None, 0, 192).unwrap();
        assert_eq!(locs.len(), 3);
        for (i, l) in locs.iter().enumerate() {
            assert_eq!(l.block_index, i as u64);
            assert_eq!(l.nodes.len(), 2, "two replicas");
            assert_eq!(l.range, ByteRange::new(i as u64 * 64, 64));
        }
        // Round-robin with replication 2 over 4 providers: block 0 on
        // nodes {0,1}, block 1 on {2,3}, block 2 on {0,1}.
        assert_eq!(locs[0].nodes, locs[2].nodes);
        assert_ne!(locs[0].nodes, locs[1].nodes);
    }

    #[test]
    fn replicated_reads_survive_provider_data_loss() {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(64)
            .with_replication(2);
        let sys = BlobSeer::deploy(cfg, 2);
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[9u8; 64]).unwrap();
        // Both providers hold the block.
        let locs = c.locations(blob, None, 0, 64).unwrap();
        assert_eq!(locs[0].nodes.len(), 2);
        assert_eq!(
            sys.providers().block_count(0) + sys.providers().block_count(1),
            2
        );
        // Drop the block from the deterministically chosen replica (block
        // index 0 → replica 0): the read must fall back to the surviving
        // replica instead of surfacing the first refused get.
        let block_id = {
            let tree = sys.tree();
            let info = sys
                .version_manager()
                .snapshot_info(blob, Version::new(1))
                .unwrap();
            let located = tree
                .locate(
                    info.root_blob,
                    info.version,
                    info.cap,
                    crate::meta::key::BlockRange::new(0, 1),
                )
                .unwrap();
            located[0].desc.as_ref().unwrap().block_id
        };
        let chosen = locs[0].nodes[0].raw() as usize;
        assert!(sys.providers().delete(chosen, block_id).unwrap() > 0);
        let data = c.read(blob, None, 0, 64).unwrap();
        assert!(
            data.iter().all(|&b| b == 9),
            "failover replica serves the read"
        );
        // Losing every replica finally surfaces the error.
        let other = locs[0].nodes[1].raw() as usize;
        assert!(sys.providers().delete(other, block_id).unwrap() > 0);
        assert!(matches!(
            c.read(blob, None, 0, 64),
            Err(Error::MissingBlock(_))
        ));
    }

    #[test]
    fn branch_then_divergent_writes() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 128]).unwrap();
        let fork = c.branch(blob, Version::new(1)).unwrap();
        c.write(blob, 0, &[2u8; 64]).unwrap();
        c.write(fork, 64, &[3u8; 64]).unwrap();
        // Parent: twos then ones.
        let p = c.read(blob, None, 0, 128).unwrap();
        assert!(p[..64].iter().all(|&b| b == 2));
        assert!(p[64..].iter().all(|&b| b == 1));
        // Fork: ones then threes.
        let f = c.read(fork, None, 0, 128).unwrap();
        assert!(f[..64].iter().all(|&b| b == 1));
        assert!(f[64..].iter().all(|&b| b == 3));
        // Shared history still readable from both.
        assert_eq!(
            c.read(blob, Some(Version::new(1)), 0, 128).unwrap(),
            c.read(fork, Some(Version::new(1)), 0, 128).unwrap()
        );
    }

    #[test]
    fn gc_frees_old_versions_but_keeps_shared_data() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        c.write(blob, 0, &[1u8; 256]).unwrap(); // v1: 4 blocks
        c.write(blob, 0, &[2u8; 64]).unwrap(); // v2: rewrites block 0
        c.write(blob, 64, &[3u8; 64]).unwrap(); // v3: rewrites block 1
        let report = c.gc_before(blob, Version::new(3)).unwrap();
        assert!(report.nodes_deleted > 0);
        // v1's block 0 was only referenced by v1+v2... v2 shares v1's
        // blocks 1-3; v3 shares v2's block 0 and v1's blocks 2-3. After
        // collecting v1 and v2: v1's original block 0 and v1's block 1
        // become garbage (v3 replaced block 1), plus v2's... v2's block 0
        // is still referenced by v3. Blocks deleted: v1-block0, v1-block1.
        assert_eq!(report.blocks_deleted, 2);
        // Old versions are gone; latest still reads correctly.
        assert!(c.read(blob, Some(Version::new(1)), 0, 256).is_err());
        let data = c.read(blob, Some(Version::new(3)), 0, 256).unwrap();
        assert!(data[..64].iter().all(|&b| b == 2));
        assert!(data[64..128].iter().all(|&b| b == 3));
        assert!(data[128..].iter().all(|&b| b == 1));
    }

    #[test]
    fn placement_policies_affect_layout() {
        for (policy, expect_even) in [
            (PlacementPolicy::RoundRobin, true),
            (PlacementPolicy::StickyRandom { stickiness: 90 }, false),
        ] {
            let cfg = BlobSeerConfig::small_for_tests()
                .with_block_size(64)
                .with_placement(policy);
            let sys = BlobSeer::deploy(cfg, 8);
            let c = client(&sys);
            let blob = c.create();
            c.write(blob, 0, &vec![1u8; 64 * 64]).unwrap();
            let unbalance = crate::placement::manhattan_unbalance(&sys.layout_vector());
            if expect_even {
                assert_eq!(unbalance, 0.0, "round robin perfectly even");
            } else {
                assert!(unbalance > 10.0, "sticky placement skews: {unbalance}");
            }
        }
    }

    #[test]
    fn concurrent_writers_different_blobs() {
        let sys = small_system();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let c = client(&sys);
            handles.push(std::thread::spawn(move || {
                let blob = c.create();
                for i in 0..10u8 {
                    c.append(blob, &[t * 16 + i; 64]).unwrap();
                }
                let (v, size) = c.latest(blob).unwrap();
                assert_eq!(v, Version::new(10));
                assert_eq!(size, 640);
                let data = c.read(blob, None, 0, 640).unwrap();
                for i in 0..10u8 {
                    assert!(data[i as usize * 64..(i as usize + 1) * 64]
                        .iter()
                        .all(|&b| b == t * 16 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn history_lists_revealed_snapshots() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        assert!(
            c.history(blob).unwrap().is_empty(),
            "empty blob, empty history"
        );
        c.write(blob, 0, &[1u8; 64]).unwrap();
        c.append(blob, &[2u8; 64]).unwrap();
        c.write(blob, 0, &[3u8; 32]).unwrap();
        let history = c.history(blob).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(
            history.iter().map(|s| s.size).collect::<Vec<_>>(),
            vec![64, 128, 128]
        );
        assert!(history.iter().all(|s| s.revealed));
        // After GC, collected versions disappear from the listing.
        c.gc_before(blob, Version::new(3)).unwrap();
        let history = c.history(blob).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].version, Version::new(3));
        // A branch's history includes inherited versions.
        let fork = c.branch(blob, Version::new(3)).unwrap();
        c.append(fork, &[4u8; 64]).unwrap();
        let fh = c.history(fork).unwrap();
        assert_eq!(fh.len(), 2, "inherited v3 plus own v4");
        assert_eq!(fh[0].root_blob, blob);
        assert_eq!(fh[1].root_blob, fork);
    }

    #[test]
    fn writes_spanning_many_blocks_with_odd_sizes() {
        let sys = small_system(); // 64-byte blocks
        let c = client(&sys);
        let blob = c.create();
        // Prime with a pattern, then overwrite an awkward span.
        let base: Vec<u8> = (0..640u32).map(|i| i as u8).collect();
        c.write(blob, 0, &base).unwrap();
        let patch = vec![0xEE; 333];
        c.write(blob, 77, &patch).unwrap();
        let got = c.read(blob, None, 0, 640).unwrap();
        assert_eq!(&got[..77], &base[..77]);
        assert!(got[77..410].iter().all(|&b| b == 0xEE));
        assert_eq!(&got[410..], &base[410..]);
    }

    #[test]
    fn sparse_blob_mostly_holes() {
        let sys = small_system();
        let c = client(&sys);
        let blob = c.create();
        // One byte at a far offset: ~4 KB of holes before it.
        c.write(blob, 4000, &[42u8]).unwrap();
        assert_eq!(c.latest(blob).unwrap().1, 4001);
        let all = c.read(blob, None, 0, 4001).unwrap();
        assert!(all[..4000].iter().all(|&b| b == 0));
        assert_eq!(all[4000], 42);
        // Storage only holds the single written block, not the holes.
        let stored: u64 = sys.providers().total_bytes_stored();
        assert!(
            stored <= 64,
            "holes must not consume provider space: {stored}"
        );
    }

    #[test]
    fn concurrent_unaligned_appenders_lose_nothing() {
        // Regression test: tiny (sub-block) appends from many threads to
        // one BLOB. The unaligned slow path must wait for its predecessor's
        // reveal, so every appended record survives verbatim.
        let sys = small_system(); // 64-byte blocks
        let c0 = client(&sys);
        let blob = c0.create();
        let n_threads = 6u8;
        let per_thread = 20u8;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let c = client(&sys);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    // 10-byte records: every append is unaligned.
                    let rec = [t * 32 + i; 10];
                    c.append(blob, &rec).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (v, size) = c0.latest(blob).unwrap();
        assert_eq!(v.raw(), (n_threads as u64) * (per_thread as u64));
        assert_eq!(size, n_threads as u64 * per_thread as u64 * 10);
        let data = c0.read(blob, None, 0, size).unwrap();
        let mut seen = std::collections::HashSet::new();
        for rec in data.chunks(10) {
            assert!(rec.iter().all(|&b| b == rec[0]), "torn record: {rec:?}");
            assert!(seen.insert(rec[0]), "duplicate record {}", rec[0]);
        }
        assert_eq!(seen.len(), (n_threads * per_thread) as usize);
    }

    #[test]
    fn concurrent_appenders_same_blob_disjoint_content() {
        // The paper's Fig. 5 scenario, live and small: N appenders to one
        // BLOB; all appends must land exactly once at distinct offsets.
        let sys = small_system();
        let c0 = client(&sys);
        let blob = c0.create();
        let n_threads = 8;
        let per_thread = 16;
        let mut handles = Vec::new();
        for t in 0..n_threads as u8 {
            let c = client(&sys);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread as u8 {
                    c.append(blob, &[t * 16 + i; 64]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (v, size) = c0.latest(blob).unwrap();
        assert_eq!(v.raw(), (n_threads * per_thread) as u64);
        assert_eq!(size, (n_threads * per_thread * 64) as u64);
        // Each 64-byte block is uniform and each (thread, i) value appears
        // exactly once.
        let data = c0.read(blob, None, 0, size).unwrap();
        let mut seen = std::collections::HashSet::new();
        for chunk in data.chunks(64) {
            assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append detected");
            assert!(seen.insert(chunk[0]), "duplicate append content");
        }
        assert_eq!(seen.len(), n_threads * per_thread);
    }
}
