fn main() {
    // Declare the opt-in cfg so `--cfg lock_check` builds cleanly under
    // `-D warnings` (unexpected_cfgs).
    println!("cargo::rustc-check-cfg=cfg(lock_check)");
}
