//! `experiments` — the figure-scale reproduction of the paper's evaluation
//! (§V) on the discrete-event simulator.
//!
//! Every module regenerates one figure:
//!
//! | Module | Paper figure | Scenario |
//! |---|---|---|
//! | [`fig3a`] | Fig. 3(a) | single writer, 1→16 GB file, 270 machines |
//! | [`fig3b`] | Fig. 3(b) | placement unbalance (Manhattan distance) |
//! | [`fig4`]  | Fig. 4    | 1→250 concurrent readers, shared file |
//! | [`fig5`]  | Fig. 5    | 1→250 concurrent appenders, shared BLOB |
//! | [`fig6`]  | Fig. 6(a)/(b) | RandomTextWriter & distributed grep |
//!
//! The single-writer figures (3a/3b) run the **real client protocol** over
//! the simnet-backed port adapters of [`simport`]: the same
//! `BlockStore`/`MetaStore`/`VersionService` calls as an in-memory
//! deployment, with each call charged against the §V cost model. The
//! concurrent-client figures keep discrete-event worlds that re-use the
//! live engine's protocol arithmetic — placement policies and segment-tree
//! node counts come from `blobseer_core` — while data movement becomes
//! flows in `simnet`. Calibrated constants live in [`constants`] and are
//! discussed in EXPERIMENTS.md.

pub mod constants;
pub mod fig3a;
pub mod fig3b;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod report;
pub mod simport;
pub mod topology;

pub use constants::Constants;
pub use report::{Figure, Series};
pub use topology::Backend;
