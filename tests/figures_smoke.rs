//! Smoke tests of the figure drivers through their public entry points:
//! every reproduced figure renders, is deterministic, and preserves the
//! paper's headline relations on a sparse grid. (Fine-grained assertions
//! live in `crates/experiments`.)

use experiments::{fig3a, fig3b, fig4, fig5, fig6, Constants};

#[test]
fn fig3a_renders_and_orders() {
    let c = Constants::default();
    let fig = fig3a::run(&c, &[1.0, 16.0]);
    assert_eq!(fig.series.len(), 2);
    let table = fig.to_table();
    assert!(table.contains("Fig. 3(a)"));
    assert!(table.contains("HDFS") && table.contains("BSFS"));
    let csv = fig.to_csv();
    assert_eq!(csv.lines().count(), 3, "header + 2 grid points");
    // BSFS above HDFS at both ends.
    let hdfs = &fig.series[0];
    let bsfs = &fig.series[1];
    for x in [1.0, 16.0] {
        assert!(bsfs.y_at(x).unwrap() > hdfs.y_at(x).unwrap());
    }
}

#[test]
fn fig3b_renders() {
    let c = Constants::default();
    let fig = fig3b::run(&c, &[8.0, 16.0]);
    assert!(fig.to_table().contains("Manhattan"));
    assert!(fig.series[0].y_at(16.0).unwrap() > fig.series[1].y_at(16.0).unwrap());
}

#[test]
fn fig4_renders() {
    let c = Constants::default();
    let fig = fig4::run(&c, &[1, 250]);
    assert!(fig.to_table().contains("Fig. 4"));
    assert!(fig.series[1].y_at(250.0).unwrap() > 2.0 * fig.series[0].y_at(250.0).unwrap());
}

#[test]
fn fig5_renders_single_series() {
    let c = Constants::default();
    let fig = fig5::run(&c, &[1, 250]);
    assert_eq!(fig.series.len(), 1, "HDFS has no append (§V-F)");
    assert!(fig.title.contains("HDFS unsupported"));
    assert!(fig.series[0].y_at(250.0).unwrap() > 100.0 * fig.series[0].y_at(1.0).unwrap());
}

#[test]
fn fig5_writes_ablation_renders_both_modes() {
    // The `fig5 --writes` figure: appends and random block-aligned writes
    // side by side, nearly coincident (§V-F's closing remark).
    let c = Constants::default();
    let fig = fig5::run_writes(&c, &[100]);
    assert_eq!(fig.series.len(), 2);
    let a = fig.series[0].y_at(100.0).unwrap();
    let w = fig.series[1].y_at(100.0).unwrap();
    assert!((a - w).abs() / a < 0.15, "appends {a:.0} vs writes {w:.0}");
}

#[test]
fn fig6_renders_both_apps() {
    let c = Constants::default();
    let rtw = fig6::run_rtw(&c, &[50, 1]);
    assert!(rtw.to_table().contains("RandomTextWriter"));
    let grep = fig6::run_grep(&c, &[6.4, 12.8]);
    assert!(grep.to_table().contains("grep"));
    for fig in [&rtw, &grep] {
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        for (&(x, h), &(_, b)) in hdfs.points.iter().zip(&bsfs.points) {
            assert!(b < h, "BSFS completes faster at x={x}: {b} vs {h}");
        }
    }
}

#[test]
fn full_run_is_deterministic() {
    let c = Constants::default();
    let a = fig4::run(&c, &[100]);
    let b = fig4::run(&c, &[100]);
    assert_eq!(a.series[0].points, b.series[0].points);
    assert_eq!(a.series[1].points, b.series[1].points);
}

#[test]
fn paper_grids_are_the_published_ones() {
    assert_eq!(fig3a::paper_sizes().len(), 9);
    assert_eq!(
        fig3b::paper_sizes(),
        (1..=16).map(|g| g as f64).collect::<Vec<_>>()
    );
    assert_eq!(fig4::paper_counts().first(), Some(&1));
    assert_eq!(fig4::paper_counts().last(), Some(&250));
    assert_eq!(fig5::paper_counts().last(), Some(&250));
    assert_eq!(fig6::rtw_paper_mappers().first(), Some(&50));
    assert_eq!(fig6::grep_paper_sizes(), vec![6.4, 8.0, 9.6, 11.2, 12.8]);
}
