//! Concurrency-semantics stress tests: the §III-A.5 guarantees under real
//! OS-thread interleavings.
//!
//! BlobSeer's claim is linearizability with a twist: a write *takes effect*
//! when its snapshot is revealed, and reveal order equals version order.
//! Concretely testable consequences:
//!
//! 1. snapshots are immutable — re-reading a version always returns the
//!    same bytes;
//! 2. the revealed version only moves forward, and every revealed snapshot
//!    is fully readable (no dangling metadata, no torn blocks);
//! 3. readers are never blocked by writers and never observe in-flight
//!    data;
//! 4. append offsets are dense and non-overlapping.

use blobseer_core::{BlobSeer, WriteIntent};
use blobseer_types::{BlobSeerConfig, NodeId, Version};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BLOCK: u64 = 512;

fn system() -> Arc<BlobSeer> {
    BlobSeer::deploy(
        BlobSeerConfig::small_for_tests()
            .with_block_size(BLOCK)
            .with_metadata_providers(4),
        8,
    )
}

#[test]
fn readers_never_see_torn_writes() {
    // Writers overwrite the whole (single-block) BLOB with uniform values;
    // readers must always see a uniform value — any mix means a torn read.
    let sys = system();
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client.write(blob, 0, &[0u8; 512]).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for w in 1..=3u8 {
        let c = sys.client(NodeId::new(w as u64));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u8;
            while !stop.load(Ordering::Relaxed) {
                i = i.wrapping_add(1);
                c.write(blob, 0, &[w * 64 + (i % 32); 512]).unwrap();
            }
        }));
    }
    for r in 0..4u64 {
        let c = sys.client(NodeId::new(4 + r));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let data = c.read(blob, None, 0, 512).unwrap();
                assert!(
                    data.iter().all(|&b| b == data[0]),
                    "torn read: saw {} and {}",
                    data[0],
                    data.iter().find(|&&b| b != data[0]).unwrap()
                );
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn revealed_version_is_monotonic_and_every_snapshot_stable() {
    let sys = system();
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    let stop = Arc::new(AtomicBool::new(false));

    // Appenders grow the blob.
    let mut handles = Vec::new();
    for w in 0..3u64 {
        let c = sys.client(NodeId::new(w));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u8;
            while !stop.load(Ordering::Relaxed) {
                i = i.wrapping_add(1);
                c.append(blob, &vec![i; BLOCK as usize]).unwrap();
            }
        }));
    }
    // An observer checks monotonicity and size consistency.
    let c = sys.client(NodeId::new(9));
    let observer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = Version::ZERO;
            let mut last_size = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (v, size) = c.latest(blob).unwrap();
                assert!(v >= last, "revealed version went backwards: {last} → {v}");
                assert!(size >= last_size, "size shrank: {last_size} → {size}");
                assert_eq!(size, v.raw() * BLOCK, "each append adds exactly one block");
                // The revealed snapshot must be fully readable right now.
                if size > 0 {
                    let tail = c.read(blob, Some(v), size - BLOCK, BLOCK).unwrap();
                    assert!(tail.iter().all(|&b| b == tail[0]), "torn tail at {v}");
                }
                last = v;
                last_size = size;
            }
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    observer.join().unwrap();

    // Afterwards: every version in history reads back internally uniform
    // per block (immutability held throughout).
    let c = sys.client(NodeId::new(9));
    let (latest, _) = c.latest(blob).unwrap();
    for v in 1..=latest.raw() {
        let v = Version::new(v);
        let size = c.size(blob, v).unwrap();
        let data = c.read(blob, Some(v), 0, size).unwrap();
        for chunk in data.chunks(BLOCK as usize) {
            assert!(chunk.iter().all(|&b| b == chunk[0]));
        }
    }
}

#[test]
fn reads_proceed_while_a_writer_is_stalled() {
    // A writer that took a version but never commits must not block
    // readers of already-revealed snapshots (readers are "completely
    // decoupled", §III-A.4) — only the *reveal* of later versions stalls.
    let sys = system();
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client.write(blob, 0, &[7u8; 512]).unwrap();

    // Stall: assign v2 and walk away.
    let _stuck = sys
        .version_manager()
        .assign(blob, WriteIntent::Append { size: 512 })
        .unwrap();
    // A later writer commits v3.
    let v3 = client.write(blob, 0, &[9u8; 512]).unwrap();
    assert_eq!(v3, Version::new(3));

    // Readers still fly at v1.
    for _ in 0..50 {
        let data = client.read(blob, None, 0, 512).unwrap();
        assert!(data.iter().all(|&b| b == 7));
    }
    assert_eq!(client.latest(blob).unwrap().0, Version::new(1));
    assert_eq!(
        sys.version_manager().pending_versions(blob).unwrap(),
        vec![Version::new(2), Version::new(3)]
    );

    // The repair path unblocks everything: v2 re-publishes v1's content,
    // and v3 becomes visible immediately after.
    client.repair_aborted(&_stuck).unwrap();
    assert_eq!(client.latest(blob).unwrap().0, Version::new(3));
    let data = client.read(blob, Some(Version::new(2)), 0, 512).unwrap();
    assert!(
        data.iter().all(|&b| b == 7),
        "repaired version shows v1 content"
    );
    let data = client.read(blob, None, 0, 512).unwrap();
    assert!(data.iter().all(|&b| b == 9));
}

#[test]
fn mixed_workload_stress() {
    // Appenders, overwriters, branchers and readers all at once; at the
    // end the full history is consistent.
    let sys = system();
    let c0 = sys.client(NodeId::new(0));
    let blob = c0.create();
    c0.write(blob, 0, &vec![1u8; (4 * BLOCK) as usize]).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Two appenders.
    for w in 0..2u64 {
        let c = sys.client(NodeId::new(w));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                c.append(blob, &vec![2; BLOCK as usize]).unwrap();
            }
        }));
    }
    // One overwriter of block 0.
    {
        let c = sys.client(NodeId::new(2));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u8;
            while !stop.load(Ordering::Relaxed) {
                i = i.wrapping_add(1);
                c.write(blob, 0, &vec![i; BLOCK as usize]).unwrap();
            }
        }));
    }
    // One brancher reading its fork.
    {
        let c = sys.client(NodeId::new(3));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (v, size) = c.latest(blob).unwrap();
                if v.is_zero() {
                    continue;
                }
                let fork = c.branch(blob, v).unwrap();
                let (fv, fsize) = c.latest(fork).unwrap();
                assert_eq!((fv, fsize), (v, size), "fork head equals branch point");
                let a = c.read(blob, Some(v), 0, size.min(BLOCK)).unwrap();
                let b = c.read(fork, Some(v), 0, size.min(BLOCK)).unwrap();
                assert_eq!(a, b);
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Full-history scan: sizes are non-decreasing in version order.
    let (latest, _) = c0.latest(blob).unwrap();
    let mut prev = 0u64;
    for v in 1..=latest.raw() {
        let size = c0.size(blob, Version::new(v)).unwrap();
        assert!(size >= prev, "size shrank at v{v}: {prev} → {size}");
        prev = size;
    }
}
