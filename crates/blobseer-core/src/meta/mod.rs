//! Distributed metadata: the versioned segment trees of §III-A.3.
//!
//! * [`key`] — node positions and DHT keys;
//! * [`codec`] — the binary encoding shared by the RPC wire and the
//!   disk-backed metadata store's durable record logs;
//! * [`node`] — node payloads (inner nodes, leaves, aliases);
//! * [`log`] — the per-BLOB write log and the materializing-version rule
//!   that makes concurrent metadata *weaving* possible;
//! * [`tree`] — publishing a write's metadata and locating blocks for reads;
//! * [`shape`] — pure node-count arithmetic shared with the figure-scale
//!   simulator.

pub mod codec;
pub mod key;
pub mod log;
pub mod node;
pub mod shape;
pub mod tree;

pub use key::{BlockRange, NodeKey, Pos};
pub use log::{LogChain, LogEntry, LogSegment, Materializer, SharedLog};
pub use node::{BlockDescriptor, NodeRef, TreeNode};
pub use tree::{LocatedBlock, TreeStore};
