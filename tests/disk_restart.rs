//! Restart durability of the disk-backed cluster.
//!
//! The acceptance scenario of the `blobseer-disk` backend: boot a
//! [`LoopbackCluster`] with `data_dir` set, run the unchanged client
//! protocol against it (BLOBs, versions, BSFS), stop every server, boot a
//! *new* cluster over the same directory and observe that nothing was
//! lost — every version of every BLOB reads back byte-identical, version
//! history is intact, the BSFS namespace reloads from its image BLOB, and
//! the rebooted cluster keeps allocating ids above everything the old one
//! handed out (blob ids from the replayed version log, block-id ranges
//! from the persisted deployment counter).

use blobseer_disk::testutil::TempDir;
use blobseer_rpc::LoopbackCluster;
use blobseer_types::{BlobSeerConfig, NodeId, Version};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};
use mapreduce::TextGen;
use std::path::Path;
use std::time::Duration;

const BLOCK: u64 = 256;

fn disk_cfg(dir: &Path) -> BlobSeerConfig {
    BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_unaligned_append_timeout(Duration::from_millis(200))
        .with_data_dir(dir)
}

#[test]
fn blobs_versions_and_namespace_survive_cluster_reboot() {
    let tmp = TempDir::new("disk-restart-full");
    let cfg = disk_cfg(tmp.path());

    // --- first life: write through the full stack -----------------------
    let data_v1: Vec<u8> = (0..(3 * BLOCK + 17)).map(|i| i as u8).collect();
    let overlay = vec![0xCDu8; BLOCK as usize];
    let fs_payload = TextGen::new(11).text(2 * BLOCK as usize + 9);
    let (blob, image_blob, image_len) = {
        let cluster = LoopbackCluster::boot(cfg.clone(), 3).unwrap();
        let sys = cluster.deploy().unwrap();
        let c = sys.client(NodeId::new(100));

        // Two versions of one BLOB: a base write plus a partial overlay,
        // so the rebooted cluster must reconstruct both snapshots from
        // the replayed metadata, not just the newest bytes.
        let blob = c.create();
        let v1 = c.write(blob, 0, &data_v1).unwrap();
        assert_eq!(v1, Version::new(1));
        let v2 = c.write(blob, BLOCK, &overlay).unwrap();
        assert_eq!(v2, Version::new(2));

        // A BSFS namespace over the same cluster. The namespace manager
        // is client-side state (§IV-A), so it persists the paper's way:
        // its image is stored in a well-known BLOB and reloaded after
        // reboot — the file *contents* live in ordinary BLOBs already.
        let fs_cluster = BsfsCluster::new(cluster.deploy().unwrap());
        let fs = fs_cluster.mount(NodeId::new(1));
        fs.mkdirs("/jobs/in").unwrap();
        write_file(&fs, "/jobs/in/part-0", &fs_payload).unwrap();
        let image = fs_cluster.namespace().export_image();
        let image_blob = c.create();
        c.write(image_blob, 0, &image).unwrap();

        (blob, image_blob, image.len() as u64)
        // Both deployments and the cluster drop here: servers shut down,
        // sockets close — the process-stop half of a restart.
    };

    // --- second life: same directory, fresh servers ----------------------
    let cluster = LoopbackCluster::boot(cfg, 3).unwrap();
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(200));

    // Every version reads back byte-identical, and history is intact.
    let (latest, size) = c.latest(blob).unwrap();
    assert_eq!(latest, Version::new(2));
    assert_eq!(size, data_v1.len() as u64);
    assert_eq!(
        &c.read(blob, Some(Version::new(1)), 0, size).unwrap()[..],
        &data_v1[..]
    );
    let got = c.read(blob, None, 0, size).unwrap();
    assert_eq!(&got[..BLOCK as usize], &data_v1[..BLOCK as usize]);
    assert_eq!(&got[BLOCK as usize..2 * BLOCK as usize], &overlay[..]);
    assert_eq!(&got[2 * BLOCK as usize..], &data_v1[2 * BLOCK as usize..]);
    assert_eq!(c.history(blob).unwrap().len(), 2);

    // The BSFS namespace reloads from its image BLOB and resolves the
    // file's blocks on the rebooted providers.
    let fs_cluster = BsfsCluster::new(cluster.deploy().unwrap());
    let image = c.read(image_blob, None, 0, image_len).unwrap();
    fs_cluster.namespace().import_image(&image).unwrap();
    let fs = fs_cluster.mount(NodeId::new(2));
    assert_eq!(read_fully(&fs, "/jobs/in/part-0").unwrap(), fs_payload);

    // The replayed version manager allocates *above* the old ids, and the
    // cluster stays fully writable: new versions on old BLOBs, new files
    // in the reloaded namespace.
    let fresh = c.create();
    assert!(
        fresh.raw() > image_blob.raw(),
        "blob ids resume after reboot: {fresh:?} vs {image_blob:?}"
    );
    let v3 = c.write(blob, 0, &[0xEEu8; 8]).unwrap();
    assert_eq!(v3, Version::new(3));
    let head = c.read(blob, None, 0, 8).unwrap();
    assert!(head.iter().all(|&b| b == 0xEE));
    write_file(&fs, "/jobs/in/part-1", b"fresh after reboot").unwrap();
    assert_eq!(
        read_fully(&fs, "/jobs/in/part-1").unwrap(),
        b"fresh after reboot"
    );
}

#[test]
fn rebooted_cluster_hands_out_disjoint_block_id_ranges() {
    // Each deployment claims a disjoint block-id range; on disk, the
    // immutable-put check makes a collision fatal (a rebooted cluster
    // restarting the counter at zero would re-issue deployment 0's range
    // and trip it). The deployment counter therefore persists in
    // `deployments.log`, and this test reboots twice to prove the ranges
    // keep advancing.
    let tmp = TempDir::new("disk-restart-ranges");
    let cfg = disk_cfg(tmp.path());
    let payload = |seed: u64| TextGen::new(seed).text(2 * BLOCK as usize + 5);

    let mut blobs = Vec::new();
    for life in 0..3u64 {
        let cluster = LoopbackCluster::boot(cfg.clone(), 2).unwrap();
        // Two deployments per life, writing interleaved: six disjoint
        // block-id ranges across the three lives.
        for d in 0..2u64 {
            let sys = cluster.deploy().unwrap();
            let c = sys.client(NodeId::new(life * 10 + d));
            let blob = c.create();
            let body = payload(life * 10 + d);
            c.write(blob, 0, &body).unwrap();
            blobs.push((blob, body));
        }
        // Everything written by *any* past life is still readable.
        let sys = cluster.deploy().unwrap();
        let c = sys.client(NodeId::new(99));
        for (blob, body) in &blobs {
            assert_eq!(
                &c.read(*blob, None, 0, body.len() as u64).unwrap()[..],
                &body[..],
                "life {life}: blob {blob:?} must survive"
            );
        }
    }
}

#[test]
fn reboot_is_idempotent_for_an_idle_cluster() {
    // Booting and stopping without writing anything must not disturb the
    // stored state — recovery replays are read-only on clean logs.
    let tmp = TempDir::new("disk-restart-idle");
    let cfg = disk_cfg(tmp.path());
    let body = TextGen::new(3).text(BLOCK as usize * 2);
    let blob = {
        let cluster = LoopbackCluster::boot(cfg.clone(), 2).unwrap();
        let sys = cluster.deploy().unwrap();
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        c.write(blob, 0, &body).unwrap();
        blob
    };
    for _ in 0..3 {
        let cluster = LoopbackCluster::boot(cfg.clone(), 2).unwrap();
        drop(cluster);
    }
    let cluster = LoopbackCluster::boot(cfg, 2).unwrap();
    let sys = cluster.deploy().unwrap();
    let c = sys.client(NodeId::new(1));
    assert_eq!(
        &c.read(blob, None, 0, body.len() as u64).unwrap()[..],
        &body[..]
    );
}
