//! Error types shared by the storage engine and both file-system layers.
//!
//! A single error enum keeps the `dfs::FileSystem` trait object-safe and lets
//! the Map/Reduce engine handle BSFS and HDFS failures uniformly. Variants
//! mirror the failure modes the paper discusses: unsupported operations
//! (HDFS has no `append`), single-writer violations, missing
//! versions/blocks, and the minimal fault-tolerance paths of §VI-B.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage engines and file-system layers.
#[derive(Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested BLOB id is unknown to the version manager.
    NoSuchBlob(u64),
    /// The requested version has not been assigned for this BLOB.
    NoSuchVersion {
        /// Raw id of the BLOB queried.
        blob: u64,
        /// Raw version number that does not exist.
        version: u64,
    },
    /// The requested version exists but has not yet been revealed to readers
    /// (its own or a lower version's metadata is still being written,
    /// §III-A.5).
    VersionNotRevealed {
        /// Raw id of the BLOB queried.
        blob: u64,
        /// Raw version number still pending reveal.
        version: u64,
    },
    /// A read touched a range beyond the size of the requested snapshot.
    OutOfBounds {
        /// One past the last byte the caller asked for.
        requested_end: u64,
        /// Size of the snapshot actually addressed.
        snapshot_size: u64,
    },
    /// A metadata tree node expected to exist was not found in the DHT.
    MissingMetadata(String),
    /// A metadata tree node was re-put with content that differs from the
    /// stored copy. Metadata is immutable (§III-A.4): a conflicting re-put
    /// means two writers disagree about the same `(blob, version, position)`
    /// — an engine bug or a byzantine client — and must never be silently
    /// resolved by keeping either copy. Raised in every build profile.
    MetadataConflict(String),
    /// A data block expected to exist was not found on its provider.
    MissingBlock(u64),
    /// No data provider could be allocated (e.g. all providers are full or
    /// the replication level exceeds the provider count).
    NoProviderAvailable(String),
    /// The path does not exist.
    NotFound(String),
    /// The path already exists (create without overwrite, mkdir over file…).
    AlreadyExists(String),
    /// The operation expected a directory but found a file, or vice versa.
    NotADirectory(String),
    /// A directory was not empty on non-recursive delete.
    DirectoryNotEmpty(String),
    /// Invalid path syntax (empty, not absolute, `..` components…).
    InvalidPath(String),
    /// The file is already opened for writing by another client
    /// (HDFS single-writer lease, §II-B).
    LeaseConflict(String),
    /// The operation is not supported by this file system
    /// ("HDFS … does not implement the append operation", §V-F).
    Unsupported(&'static str),
    /// A write or append was aborted (e.g. a block failed to store:
    /// "if writing of a block fails, then the whole write fails", §III-D).
    WriteAborted(String),
    /// An I/O stream was used after being closed.
    StreamClosed,
    /// Timeout while waiting for a snapshot to be revealed.
    Timeout(String),
    /// An RPC transport failure: connection refused/reset mid-call, or a
    /// malformed wire frame. Distinct from every service-level error so a
    /// caller can tell "the provider said no" (retriable at the protocol
    /// level, e.g. [`Error::WriteAborted`]) apart from "the provider is
    /// unreachable" (retriable at the transport level).
    Transport(String),
    /// A durable-storage failure on a disk-backed provider: an I/O error
    /// on the volume/record-log files, or an on-disk image that fails its
    /// integrity checks beyond what torn-tail recovery can repair (e.g. a
    /// version log replaying to a different state than it recorded).
    /// Distinct from [`Error::Transport`]: the service is reachable but
    /// its storage is not trustworthy.
    Storage(String),
    /// Catch-all for internal invariant violations (a bug if ever seen).
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchBlob(b) => write!(f, "no such blob: blob#{b}"),
            Error::NoSuchVersion { blob, version } => {
                write!(f, "blob#{blob} has no version v{version}")
            }
            Error::VersionNotRevealed { blob, version } => {
                write!(f, "blob#{blob} v{version} is not yet revealed to readers")
            }
            Error::OutOfBounds { requested_end, snapshot_size } => write!(
                f,
                "read past end of snapshot: requested up to byte {requested_end} but snapshot holds {snapshot_size}"
            ),
            Error::MissingMetadata(k) => write!(f, "metadata node missing from DHT: {k}"),
            Error::MetadataConflict(k) => write!(
                f,
                "metadata node re-put with conflicting content (metadata is immutable): {k}"
            ),
            Error::MissingBlock(b) => write!(f, "data block blk#{b} missing from its provider"),
            Error::NoProviderAvailable(why) => write!(f, "no data provider available: {why}"),
            Error::NotFound(p) => write!(f, "path not found: {p}"),
            Error::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            Error::NotADirectory(p) => write!(f, "not a directory: {p}"),
            Error::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            Error::InvalidPath(p) => write!(f, "invalid path: {p}"),
            Error::LeaseConflict(p) => write!(f, "file is locked by another writer: {p}"),
            Error::Unsupported(op) => write!(f, "operation not supported by this file system: {op}"),
            Error::WriteAborted(why) => write!(f, "write aborted: {why}"),
            Error::StreamClosed => write!(f, "stream already closed"),
            Error::Timeout(what) => write!(f, "timed out waiting for {what}"),
            Error::Transport(why) => write!(f, "rpc transport failure: {why}"),
            Error::Storage(why) => write!(f, "durable storage failure: {why}"),
            Error::Internal(why) => write!(f, "internal invariant violated: {why}"),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::NoSuchBlob(3), "no such blob: blob#3"),
            (
                Error::NoSuchVersion {
                    blob: 1,
                    version: 9,
                },
                "blob#1 has no version v9",
            ),
            (
                Error::Unsupported("append"),
                "operation not supported by this file system: append",
            ),
            (Error::StreamClosed, "stream already closed"),
            (
                Error::Transport("connection refused".into()),
                "rpc transport failure: connection refused",
            ),
            (
                Error::Storage("volume checksum mismatch".into()),
                "durable storage failure: volume checksum mismatch",
            ),
        ];
        for (e, msg) in cases {
            assert_eq!(e.to_string(), msg);
            // Debug goes through Display for readability in test output.
            assert_eq!(format!("{e:?}"), msg);
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NoSuchBlob(1), Error::NoSuchBlob(1));
        assert_ne!(Error::NoSuchBlob(1), Error::NoSuchBlob(2));
        assert_ne!(
            Error::NotFound("/a".into()),
            Error::AlreadyExists("/a".into())
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_err(_e: &dyn std::error::Error) {}
        takes_std_err(&Error::StreamClosed);
    }
}
