//! Lock-striped concurrent maps for the engine's hot paths.
//!
//! The seed implementation guarded every service map — data blocks, DHT
//! shards, GC refcounts — with one global `RwLock<HashMap>`. Under the
//! paper's headline workload (§V: N concurrent writers hammering the same
//! deployment) every writer serialized on those locks, which is exactly the
//! kind of incidental serialization the protocol works so hard to avoid
//! ("the assignment of versions is the only step … where concurrent
//! requests are serialized", §III-A.4).
//!
//! [`ShardedMap`] stripes one logical map over `N` independently locked
//! shards selected by key hash, so writers touching different keys proceed
//! in parallel. `N = 1` degenerates to the seed's single global lock — the
//! baseline the `store_contention` bench and the ports-equivalence property
//! tests compare against.

use parking_lot::RwLock;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// Default stripe count for the in-memory adapters. Chosen comfortably above
/// the thread counts the tests and benches drive (16) while keeping the
/// per-map footprint trivial.
pub const DEFAULT_SHARDS: usize = 32;

/// A hash map striped over independently locked shards.
///
/// The map exposes whole-shard lock access ([`shard_for`](Self::shard_for))
/// so callers can run compound check-then-act sequences (e.g. the immutable
/// re-put validation) atomically within one shard, plus clone-out
/// convenience accessors for the common single-key operations.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map striped over `n_shards` locks (1 = one global lock).
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    /// [`Self::new`] with a declared place in the lock hierarchy: stripe
    /// `i` becomes rank `i` of the `name` family, so under
    /// `BLOBSEER_LOCK_CHECK=1` any caller nesting stripes must take them
    /// in ascending index order (the batched paths instead take them one
    /// at a time; see [`stripe_runs`]).
    pub fn named(n_shards: usize, name: &'static str) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: (0..n_shards)
                .map(|i| RwLock::ranked(HashMap::new(), name, i as u32))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `key`. Lock it (`read`/`write`) to run a compound
    /// operation atomically with respect to every key in the stripe.
    #[inline]
    pub fn shard_for(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        &self.shards[self.shard_index(key)]
    }

    /// The index of the stripe holding `key` — lets batched callers group
    /// keys so each stripe's lock is taken once per batch instead of once
    /// per key.
    #[inline]
    pub fn shard_index(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    /// The stripe at `index` (see [`Self::shard_index`]).
    #[inline]
    pub fn shard_at(&self, index: usize) -> &RwLock<HashMap<K, V>> {
        &self.shards[index]
    }

    /// Clone-out lookup.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard_for(key).read().get(key).cloned()
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read().contains_key(key)
    }

    /// Inserts, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Removes, returning the value if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }

    /// Total entries across all shards. O(shards); each shard is read-locked
    /// in turn, so the count is a consistent-per-shard snapshot, not a
    /// point-in-time snapshot of the whole map.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drops every entry (used by the shard-crash fault hooks).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Runs `f` over every entry, shard by shard (read-locked per shard).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            for (k, v) in s.read().iter() {
                f(k, v);
            }
        }
    }
}

/// Groups batch item indices by `index_of(key)`, preserving batch order
/// within each group. Returns `(index, item_indices)` groups in
/// first-appearance order — the shared grouping step behind every batched
/// store operation (stripe locks taken once per batch, DHT shards
/// addressed once per batch).
pub fn group_indices_by<K>(
    keys: impl Iterator<Item = K>,
    mut index_of: impl FnMut(&K) -> usize,
) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for (i, key) in keys.enumerate() {
        let index = index_of(&key);
        let slot = *slot_of.entry(index).or_insert_with(|| {
            groups.push((index, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(i);
    }
    groups
}

/// [`group_indices_by`] keyed on the stripe holding each key of `map`.
pub fn stripe_runs<'a, K: Hash + Eq + 'a, V>(
    map: &ShardedMap<K, V>,
    keys: impl Iterator<Item = &'a K>,
) -> Vec<(usize, Vec<usize>)> {
    group_indices_by(keys, |key| map.shard_index(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_map_semantics() {
        let m: ShardedMap<u64, String> = ShardedMap::new(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get_cloned(&1), Some("b".into()));
        assert!(m.contains_key(&1));
        assert!(!m.contains_key(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&1), Some("b".into()));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn single_shard_behaves_identically() {
        let global: ShardedMap<u64, u64> = ShardedMap::new(1);
        let sharded: ShardedMap<u64, u64> = ShardedMap::new(16);
        for k in 0..500u64 {
            global.insert(k, k * 3);
            sharded.insert(k, k * 3);
        }
        for k in 0..600u64 {
            assert_eq!(global.get_cloned(&k), sharded.get_cloned(&k));
        }
        assert_eq!(global.len(), sharded.len());
    }

    #[test]
    fn compound_shard_ops_are_atomic_per_stripe() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(8);
        // Check-then-insert under one shard write lock.
        let mut shard = m.shard_for(&7).write();
        assert!(!shard.contains_key(&7));
        shard.insert(7, 1);
        drop(shard);
        assert_eq!(m.get_cloned(&7), Some(1));
    }

    #[test]
    fn concurrent_writers_land_all_entries() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(DEFAULT_SHARDS));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        m.insert(t * 1000 + i, i);
                        assert_eq!(m.get_cloned(&(t * 1000 + i)), Some(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 1600);
        let mut sum = 0u64;
        m.for_each(|_, v| sum += v);
        assert_eq!(sum, 8 * (0..200).sum::<u64>());
    }

    #[test]
    fn clear_empties_every_shard() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(4);
        for k in 0..64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _: ShardedMap<u64, u64> = ShardedMap::new(0);
    }
}
