//! Client-side adapters: the five port traits — block store, metadata
//! DHT, version manager, placement and GC — implemented over
//! *multiplexed* TCP connections.
//!
//! Each adapter holds a small fixed budget of shared connections per
//! endpoint ([`blobseer_types::BlobSeerConfig::rpc_client_connections`]).
//! A call picks a connection round-robin, tags its frame with a fresh
//! request id, writes it under the connection's writer lock, and parks on
//! the connection's waiter table; a per-connection demux thread reads
//! response frames and routes each to the waiter holding the matching id.
//! Many client threads therefore pipeline on a few sockets, responses may
//! arrive out of order, and a blocking call (`wait_revealed`) parks only
//! its own waiter — never the connection.
//!
//! A connection that dies *idle* (server restart) is redialed
//! transparently on next use: the demux thread observes EOF immediately
//! and marks the connection dead, so the next call dials afresh instead
//! of surfacing a stale [`Error::Transport`]. A call whose request frame
//! *failed to write* also retries once on a fresh connection — the kernel
//! never accepted the frame, so the server cannot have dispatched it and
//! the retry is safe even for non-idempotent calls like `assign`. A call
//! whose frame was sent but never answered fails with
//! [`Error::Transport`]: its remote outcome is genuinely unknown.
//!
//! Service failures arrive as their real [`Error`] variants (decoded from
//! the response envelope); only genuine connectivity problems — refused
//! connections, resets, malformed frames — surface as
//! [`Error::Transport`].
//!
//! Port methods that return plain values rather than `Result` (they are
//! diagnostics: counts, sizes, op counters) cannot propagate a transport
//! failure; they degrade to a zero/empty answer — but never silently:
//! each degradation bumps `EngineStats::rpc_degraded_diagnostics` and the
//! first one logs a warning, so a half-dead cluster is observable instead
//! of reporting zeros. The fixed deployment *shape* — provider count,
//! hosting nodes, DHT shard count, block size — is fetched once at
//! connect time and served from cache, so the hot paths that consult it
//! stay local.

use crate::server::{block_tag, gc_tag, meta_tag, placement_tag, version_tag};
use crate::wire::{self, batch_status, decode_response};
use blobseer_core::gc::GcReport;
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::{BlockStore, GcService, MetaStore, PlacementService, VersionService};
use blobseer_core::provider_manager::BlockAllocation;
use blobseer_core::version_manager::{SnapshotInfo, WriteIntent, WriteTicket};
use blobseer_core::EngineStats;
use blobseer_types::config::DEFAULT_RPC_CLIENT_CONNECTIONS;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, BlockId, Error, NodeId, Result, Version};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Max items per vectored *metadata* frame. Tree nodes and node keys are
/// tens of bytes, so this bounds both request and response frames to a
/// few MB — far under [`wire::MAX_FRAME_LEN`] — while still collapsing
/// any realistic tree level into one round trip.
const META_BATCH_MAX: usize = 65_536;

/// Counts a diagnostic degradation (a non-`Result` port method answering
/// its zero/empty default because the backend was unreachable) and warns
/// once per process — satisfying "observable, not silent" without
/// flooding stderr when a whole cluster is down.
fn degraded(stats: &EngineStats, what: &str, e: &Error) {
    stats
        .rpc_degraded_diagnostics
        .fetch_add(1, Ordering::Relaxed);
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "blobseer-rpc: diagnostic {what} degraded to a default answer ({e}); \
             further degradations are counted on EngineStats::rpc_degraded_diagnostics"
        );
    });
}

/// The waiter table of one multiplexed connection.
struct Pending {
    /// Request id → response body; `None` while still in flight. Entries
    /// are inserted by [`MuxConn::send`] and removed by [`MuxConn::wait`],
    /// so the table is bounded by the number of in-flight calls.
    results: HashMap<u64, Option<Vec<u8>>>,
    /// Set by the demux thread when the connection dies; every current
    /// and future waiter fails with this error (outcome unknown).
    closed: Option<Error>,
}

/// One multiplexed connection: a writer half shared under a mutex, a
/// demux thread owning the reader half, and a waiter table keyed by
/// request id.
struct MuxConn {
    addr: SocketAddr,
    writer: Mutex<TcpStream>,
    pending: Mutex<Pending>,
    ready: Condvar,
    next_id: AtomicU64,
    /// Set when the demux thread exits or a frame write fails; the pool
    /// replaces dead connections on next use.
    dead: AtomicBool,
}

impl MuxConn {
    /// Dials the endpoint and starts its demux thread.
    fn dial(addr: SocketAddr) -> Result<Arc<Self>> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| wire::transport(&format!("connect to {addr}"), e))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| wire::transport("clone mux stream", e))?;
        let conn = Arc::new(Self {
            addr,
            writer: Mutex::named(stream, "rpc.mux.writer"),
            pending: Mutex::named(
                Pending {
                    results: HashMap::new(),
                    closed: None,
                },
                "rpc.mux.pending",
            ),
            ready: Condvar::named("rpc.mux.ready"),
            next_id: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        });
        let demux = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("rpc-demux".into())
            .spawn(move || demux_loop(reader, &demux))
            .map_err(|e| wire::transport("spawn demux thread", e))?;
        Ok(conn)
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Registers a waiter and writes one request frame. On any failure the
    /// frame is guaranteed undelivered (the connection is marked dead and
    /// the waiter withdrawn), so the caller may safely retry on a fresh
    /// connection.
    fn send(&self, request: &WireWriter) -> Result<u64> {
        if self.is_dead() {
            return Err(Error::Transport(format!(
                "{} died before the request was sent",
                self.addr
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().results.insert(id, None);
        let mut writer = self.writer.lock();
        match wire::write_frame(&mut *writer, id, request.as_slice()) {
            Ok(()) => Ok(id),
            Err(e) => {
                drop(writer);
                self.dead.store(true, Ordering::SeqCst);
                self.pending.lock().results.remove(&id);
                Err(e)
            }
        }
    }

    /// Parks until the demux thread delivers the response for `id`, or
    /// the connection dies.
    fn wait(&self, id: u64) -> Result<Vec<u8>> {
        let mut p = self.pending.lock();
        loop {
            if matches!(p.results.get(&id), Some(Some(_))) {
                return match p.results.remove(&id) {
                    Some(Some(body)) => Ok(body),
                    _ => unreachable!("checked above"),
                };
            }
            if let Some(e) = p.closed.clone() {
                p.results.remove(&id);
                return Err(e);
            }
            self.ready.wait(&mut p);
        }
    }
}

/// The demux thread: reads response frames and routes each to its waiter.
/// Exits on EOF or a transport error — marking the connection dead first,
/// so idle death (a server restart) is already known the next time the
/// pool considers this connection.
fn demux_loop(mut stream: TcpStream, conn: &MuxConn) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some((id, body))) => {
                let mut p = conn.pending.lock();
                if let Some(slot) = p.results.get_mut(&id) {
                    *slot = Some(body);
                }
                drop(p);
                self_notify(conn);
            }
            Ok(None) | Err(_) => {
                conn.dead.store(true, Ordering::SeqCst);
                let mut p = conn.pending.lock();
                p.closed = Some(Error::Transport(format!(
                    "{} closed the connection with requests in flight",
                    conn.addr
                )));
                drop(p);
                self_notify(conn);
                return;
            }
        }
    }
}

/// Wakes every waiter on the connection; each re-checks its own slot.
fn self_notify(conn: &MuxConn) {
    conn.ready.notify_all();
}

/// A fixed budget of multiplexed connections to one endpoint. Slots are
/// dialed lazily (slot 0 eagerly at construction, as a reachability
/// probe) and redialed transparently when found dead.
pub(crate) struct MuxPool {
    addr: SocketAddr,
    slots: Vec<Mutex<Option<Arc<MuxConn>>>>,
    next: AtomicUsize,
    /// Deployment counters: every request frame bumps
    /// `port_round_trips` — the client-side round-trip meter the batching
    /// tests assert on — or `control_round_trips` for a control-plane
    /// pool (placement and GC traffic is metered separately from the
    /// data path, so the 14/13 frame-count invariants stay untouched).
    stats: Arc<EngineStats>,
    /// Control-plane pools meter on `control_round_trips`.
    control: bool,
}

impl MuxPool {
    /// Creates a pool of `budget` connection slots and eagerly dials one,
    /// so an unreachable endpoint fails at adapter construction, not
    /// mid-write.
    pub(crate) fn connect_with(
        addr: SocketAddr,
        stats: Arc<EngineStats>,
        budget: usize,
    ) -> Result<Self> {
        Self::connect_metered(addr, stats, budget, false)
    }

    /// [`Self::connect_with`] for control-plane adapters: round trips land
    /// on `EngineStats::control_round_trips` instead of
    /// `port_round_trips`, and are never mixed into `batched_items`.
    pub(crate) fn connect_control(
        addr: SocketAddr,
        stats: Arc<EngineStats>,
        budget: usize,
    ) -> Result<Self> {
        Self::connect_metered(addr, stats, budget, true)
    }

    fn connect_metered(
        addr: SocketAddr,
        stats: Arc<EngineStats>,
        budget: usize,
        control: bool,
    ) -> Result<Self> {
        assert!(budget >= 1, "a pool needs at least one connection");
        let pool = Self {
            addr,
            slots: (0..budget)
                .map(|i| Mutex::ranked(None, "rpc.mux.slot", i as u32))
                .collect(),
            next: AtomicUsize::new(0),
            stats,
            control,
        };
        pool.conn_at(0)?;
        Ok(pool)
    }

    /// The healthy connection for a slot, dialing (or redialing a dead
    /// one) under the slot lock so concurrent callers share one dial.
    fn conn_at(&self, slot: usize) -> Result<Arc<MuxConn>> {
        let mut guard = self.slots[slot].lock();
        if let Some(conn) = guard.as_ref() {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
        }
        let conn = MuxConn::dial(self.addr)?;
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// One request/response exchange, multiplexed: requests from many
    /// threads pipeline on the slot connections, matched back by request
    /// id. If the request frame could not be *written*, the exchange
    /// retries once on a fresh connection — safe for any operation,
    /// because an unwritten frame was never dispatched.
    pub(crate) fn call(&self, request: &WireWriter) -> Result<Vec<u8>> {
        if self.control {
            self.stats
                .control_round_trips
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.port_round_trips.fetch_add(1, Ordering::Relaxed);
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let conn = self.conn_at(slot)?;
        match conn.send(request) {
            Ok(id) => conn.wait(id),
            Err(_) => {
                let conn = self.conn_at(slot)?;
                let id = conn.send(request)?;
                conn.wait(id)
            }
        }
    }
}

/// A successful response body with the payload's start offset — kept
/// whole (no re-copy) so readers borrow it and block payloads can be
/// wrapped zero-copy.
struct RpcPayload {
    body: Vec<u8>,
    start: usize,
}

impl RpcPayload {
    fn reader(&self) -> WireReader<'_> {
        WireReader::new(&self.body[self.start..])
    }
}

/// A `Result`-returning RPC round trip: encodes, exchanges, unwraps the
/// response envelope.
fn call(pool: &MuxPool, request: WireWriter) -> Result<RpcPayload> {
    let body = pool.call(&request)?;
    let reader = decode_response(&body)?;
    let start = body.len() - reader.remaining();
    Ok(RpcPayload { body, start })
}

/// Decodes a vectored response: the echoed item count, then one status per
/// item — `OK` followed by a payload read by `read_payload`, or `ERR`
/// followed by the item's encoded [`Error`]. A count mismatch or an
/// unexpected status byte is a framing bug and fails the whole batch.
fn decode_batch_items<T>(
    r: &mut WireReader<'_>,
    expect: usize,
    mut read_payload: impl FnMut(&mut WireReader<'_>) -> Result<T>,
) -> Result<Vec<Result<T>>> {
    let n = r.get_u64()? as usize;
    if n != expect {
        return Err(Error::Transport(format!(
            "batched response answers {n} items, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.get_u8()? {
            batch_status::OK => Ok(read_payload(r)?),
            batch_status::ERR => Err(r.get_error()?),
            s => {
                return Err(Error::Transport(format!(
                    "unexpected batch status byte {s}"
                )))
            }
        });
    }
    Ok(out)
}

/// Decodes one round of a batched block fetch. Returns the answered items
/// as `(slot, Ok((offset, len)) | Err)` — payload *extents* into `body`,
/// so the caller can wrap the body in [`Bytes`] once and slice zero-copy —
/// plus the deferred items to re-request.
#[allow(clippy::type_complexity)]
fn decode_get_many(
    body: &[u8],
    pending: &[(usize, BlockId)],
) -> Result<(Vec<(usize, Result<(usize, usize)>)>, Vec<(usize, BlockId)>)> {
    let mut r = decode_response(body)?;
    let n = r.get_u64()? as usize;
    if n != pending.len() {
        return Err(Error::Transport(format!(
            "batched response answers {n} items, expected {}",
            pending.len()
        )));
    }
    let mut results = Vec::new();
    let mut deferred = Vec::new();
    for &(slot, id) in pending {
        match r.get_u8()? {
            batch_status::OK => {
                let s = r.get_slice()?;
                // `s` borrows from `body`, so its offset within the frame
                // is plain pointer arithmetic on the same allocation.
                let off = s.as_ptr() as usize - body.as_ptr() as usize;
                results.push((slot, Ok((off, s.len()))));
            }
            batch_status::ERR => results.push((slot, Err(r.get_error()?))),
            batch_status::DEFERRED => deferred.push((slot, id)),
            s => {
                return Err(Error::Transport(format!(
                    "unexpected batch status byte {s}"
                )))
            }
        }
    }
    r.finish()?;
    Ok((results, deferred))
}

// --- block store ------------------------------------------------------------

/// One remote block-service endpoint.
struct BlockEndpoint {
    pool: MuxPool,
}

/// [`BlockStore`] over one or more remote block services.
///
/// The dense provider index space the provider manager allocates in is
/// the concatenation of the endpoints' provider lists, in the order the
/// endpoints were given — so a deployment can host each data provider in
/// its own server process and the unchanged client protocol still
/// addresses them `0..len()`.
pub struct RpcBlockStore {
    endpoints: Vec<BlockEndpoint>,
    /// Dense provider index → (endpoint index, provider index within it).
    route: Vec<(usize, u64)>,
    /// Dense provider index → hosting node.
    nodes: Vec<NodeId>,
    stats: Arc<EngineStats>,
}

impl RpcBlockStore {
    /// Connects to the given block services with the default connection
    /// budget per endpoint. See [`Self::connect_with`].
    pub fn connect(addrs: &[SocketAddr], stats: Arc<EngineStats>) -> Result<Self> {
        Self::connect_with(addrs, stats, DEFAULT_RPC_CLIENT_CONNECTIONS)
    }

    /// Connects to the given block services (`budget` multiplexed
    /// connections per endpoint) and builds the dense index space over
    /// them. Fails if any endpoint is unreachable or empty. `stats`
    /// receives the adapter's round-trip/batch accounting
    /// (`port_round_trips`, `batched_items`) — pass the deployment's
    /// [`EngineStats`].
    pub fn connect_with(
        addrs: &[SocketAddr],
        stats: Arc<EngineStats>,
        budget: usize,
    ) -> Result<Self> {
        if addrs.is_empty() {
            return Err(Error::Transport(
                "RpcBlockStore needs at least one endpoint".into(),
            ));
        }
        let mut endpoints = Vec::with_capacity(addrs.len());
        let mut route = Vec::new();
        let mut nodes = Vec::new();
        for (ei, &addr) in addrs.iter().enumerate() {
            let pool = MuxPool::connect_with(addr, Arc::clone(&stats), budget)?;
            let mut req = WireWriter::new();
            req.put_u8(block_tag::DESCRIBE);
            let payload = call(&pool, req)?;
            let mut r = payload.reader();
            let n = r.get_u64()?;
            for local in 0..n {
                nodes.push(NodeId::new(r.get_u64()?));
                route.push((ei, local));
            }
            r.finish()?;
            endpoints.push(BlockEndpoint { pool });
        }
        Ok(Self {
            endpoints,
            route,
            nodes,
            stats,
        })
    }

    /// Request targeting one dense provider index, with the endpoint-local
    /// index substituted.
    fn provider_request(&self, tag: u8, provider: usize) -> Option<(&MuxPool, WireWriter)> {
        let &(ei, local) = self.route.get(provider)?;
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(local);
        Some((&self.endpoints[ei].pool, req))
    }
}

impl BlockStore for RpcBlockStore {
    fn len(&self) -> usize {
        self.route.len()
    }

    fn node(&self, provider: usize) -> NodeId {
        self.nodes[provider]
    }

    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        let (pool, mut req) = self
            .provider_request(block_tag::PUT, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        req.put_slice(&data);
        call(pool, req)?;
        Ok(())
    }

    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        let (pool, mut req) = self
            .provider_request(block_tag::GET, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        let payload = call(pool, req)?;
        // Zero-copy hand-off: wrap the whole response buffer in `Bytes`
        // and slice out the block payload, instead of memcpy-ing it —
        // this is the hot read path.
        let mut r = payload.reader();
        let len = r.get_u64()? as usize;
        if r.remaining() != len {
            return Err(Error::Transport(format!(
                "block payload length {len} disagrees with frame ({} bytes left)",
                r.remaining()
            )));
        }
        let data_start = payload.body.len() - len;
        Ok(Bytes::from(payload.body).slice(data_start..))
    }

    /// Transport failures degrade to `false` (the port reports presence,
    /// not reachability) — counted on `rpc_degraded_diagnostics`.
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        let Some((pool, mut req)) = self.provider_request(block_tag::CONTAINS, provider) else {
            return false;
        };
        req.put_u64(id.raw());
        match call(pool, req).and_then(|payload| payload.reader().get_bool()) {
            Ok(present) => present,
            Err(e) => {
                degraded(&self.stats, "BlockStore::contains", &e);
                false
            }
        }
    }

    /// Transport loss is an `Err`, distinguishable from `Ok(0)` ("absent")
    /// — the remote outcome of a lost delete is genuinely unknown.
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        let (pool, mut req) = self
            .provider_request(block_tag::DELETE, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        call(pool, req)?.reader().get_u64()
    }

    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return items.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut out: Vec<Result<()>> = Vec::with_capacity(items.len());
        let mut start = 0;
        while start < items.len() {
            // Greedy chunking: as many blocks per frame as fit the batch
            // byte budget (always at least one, mirroring the single-put
            // frame-size envelope).
            let mut end = start + 1;
            let mut bytes = items[start].1.len();
            while end < items.len() && bytes + items[end].1.len() <= wire::BATCH_BYTE_BUDGET {
                bytes += items[end].1.len();
                end += 1;
            }
            let chunk = &items[start..end];
            let mut req = WireWriter::new();
            req.put_u8(block_tag::PUT_MANY);
            req.put_u64(local);
            req.put_u64(chunk.len() as u64);
            for (id, data) in chunk {
                req.put_u64(id.raw());
                req.put_slice(data);
            }
            match call(pool, req).and_then(|payload| {
                let mut r = payload.reader();
                decode_batch_items(&mut r, chunk.len(), |_| Ok(()))
            }) {
                Ok(results) => out.extend(results),
                // The whole chunk's outcome is unknown: every item fails
                // with the transport error (one refused frame must not be
                // mistaken for per-item success).
                Err(e) => out.extend(chunk.iter().map(|_| Err(e.clone()))),
            }
            start = end;
        }
        out
    }

    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return ids.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut out: Vec<Result<Bytes>> = ids
            .iter()
            .map(|_| Err(Error::Transport(String::new())))
            .collect();
        // The server answers as many payloads as fit the batch budget and
        // defers the tail; loop until nothing is deferred. The server
        // always includes the first requested item, so each round makes
        // progress.
        let mut pending: Vec<(usize, BlockId)> = ids.iter().copied().enumerate().collect();
        while !pending.is_empty() {
            let mut req = WireWriter::new();
            req.put_u8(block_tag::GET_MANY);
            req.put_u64(local);
            req.put_u64(pending.len() as u64);
            for &(_, id) in &pending {
                req.put_u64(id.raw());
            }
            let body = match pool.call(&req) {
                Ok(body) => body,
                Err(e) => {
                    for &(slot, _) in &pending {
                        out[slot] = Err(e.clone());
                    }
                    return out;
                }
            };
            // First pass borrows the body to decode statuses and payload
            // extents; the body is then wrapped in `Bytes` ONCE so every
            // block of the batch is a zero-copy slice of it.
            let decoded = decode_get_many(&body, &pending);
            match decoded {
                Ok((results, deferred)) => {
                    let shared = Bytes::from(body);
                    for (slot, result) in results {
                        out[slot] = result.map(|(off, len)| shared.slice(off..off + len));
                    }
                    if deferred.len() >= pending.len() {
                        // No progress: a server must answer at least one
                        // item per round. Treat as a framing bug.
                        let e = Error::Transport("batched get made no progress".into());
                        for (slot, _) in deferred {
                            out[slot] = Err(e.clone());
                        }
                        return out;
                    }
                    pending = deferred;
                }
                Err(e) => {
                    for &(slot, _) in &pending {
                        out[slot] = Err(e.clone());
                    }
                    return out;
                }
            }
        }
        out
    }

    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return ids.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut req = WireWriter::new();
        req.put_u8(block_tag::DELETE_MANY);
        req.put_u64(local);
        req.put_u64(ids.len() as u64);
        for id in ids {
            req.put_u64(id.raw());
        }
        match call(pool, req).and_then(|payload| {
            let mut r = payload.reader();
            decode_batch_items(&mut r, ids.len(), |r| r.get_u64())
        }) {
            Ok(results) => results,
            Err(e) => ids.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// Transport failures degrade to `0` — counted on
    /// `rpc_degraded_diagnostics`.
    fn block_count(&self, provider: usize) -> usize {
        let Some((pool, req)) = self.provider_request(block_tag::BLOCK_COUNT, provider) else {
            return 0;
        };
        match call(pool, req).and_then(|payload| payload.reader().get_u64()) {
            Ok(n) => n as usize,
            Err(e) => {
                degraded(&self.stats, "BlockStore::block_count", &e);
                0
            }
        }
    }

    /// Transport failures degrade to `0` — counted on
    /// `rpc_degraded_diagnostics`.
    fn bytes_stored(&self, provider: usize) -> u64 {
        let Some((pool, req)) = self.provider_request(block_tag::BYTES_STORED, provider) else {
            return 0;
        };
        match call(pool, req).and_then(|payload| payload.reader().get_u64()) {
            Ok(n) => n,
            Err(e) => {
                degraded(&self.stats, "BlockStore::bytes_stored", &e);
                0
            }
        }
    }

    /// Transport failures degrade to `(0, 0)` — counted on
    /// `rpc_degraded_diagnostics`.
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        let Some((pool, req)) = self.provider_request(block_tag::OP_COUNTS, provider) else {
            return (0, 0);
        };
        match call(pool, req).and_then(|payload| {
            let mut r = payload.reader();
            Ok((r.get_u64()?, r.get_u64()?))
        }) {
            Ok(counts) => counts,
            Err(e) => {
                degraded(&self.stats, "BlockStore::op_counts", &e);
                (0, 0)
            }
        }
    }
}

// --- meta store -------------------------------------------------------------

/// [`MetaStore`] over a remote metadata DHT service.
pub struct RpcMetaStore {
    pool: MuxPool,
    shard_count: usize,
    stats: Arc<EngineStats>,
}

impl RpcMetaStore {
    /// [`Self::connect_with`] with the default connection budget.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        Self::connect_with(addr, stats, DEFAULT_RPC_CLIENT_CONNECTIONS)
    }

    /// Connects (`budget` multiplexed connections) and caches the fixed
    /// shard count. `stats` receives the adapter's round-trip/batch
    /// accounting.
    pub fn connect_with(addr: SocketAddr, stats: Arc<EngineStats>, budget: usize) -> Result<Self> {
        let pool = MuxPool::connect_with(addr, Arc::clone(&stats), budget)?;
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_COUNT);
        let payload = call(&pool, req)?;
        let shard_count = payload.reader().get_u64()? as usize;
        Ok(Self {
            pool,
            shard_count,
            stats,
        })
    }

    /// Runs one metadata batch frame per `META_BATCH_MAX`-item chunk:
    /// encodes the chunk with `encode`, decodes per-item payloads with
    /// `decode`. A transport failure fails that chunk's items only.
    fn meta_batched<I, T>(
        &self,
        tag: u8,
        items: &[I],
        mut encode: impl FnMut(&mut WireWriter, &I),
        mut decode: impl FnMut(&mut WireReader<'_>) -> Result<T>,
    ) -> Vec<Result<T>> {
        self.stats
            .batched_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(META_BATCH_MAX) {
            let mut req = WireWriter::new();
            req.put_u8(tag);
            req.put_u64(chunk.len() as u64);
            for item in chunk {
                encode(&mut req, item);
            }
            match call(&self.pool, req).and_then(|payload| {
                let mut r = payload.reader();
                decode_batch_items(&mut r, chunk.len(), &mut decode)
            }) {
                Ok(results) => out.extend(results),
                Err(e) => out.extend(chunk.iter().map(|_| Err(e.clone()))),
            }
        }
        out
    }
}

impl MetaStore for RpcMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::PUT);
        wire::put_node_key(&mut req, &key);
        wire::put_tree_node(&mut req, &node);
        call(&self.pool, req)?;
        Ok(())
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::GET);
        wire::put_node_key(&mut req, key);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let node = wire::get_tree_node(&mut r)?;
        r.finish()?;
        Ok(node)
    }

    /// Transport failures degrade to `false` (nothing deleted) — counted
    /// on `rpc_degraded_diagnostics`.
    fn delete(&self, key: &NodeKey) -> bool {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::DELETE);
        wire::put_node_key(&mut req, key);
        match call(&self.pool, req).and_then(|payload| payload.reader().get_bool()) {
            Ok(existed) => existed,
            Err(e) => {
                degraded(&self.stats, "MetaStore::delete", &e);
                false
            }
        }
    }

    /// One frame per batch: how a writer publishes a whole tree level in a
    /// single round trip. Per-item failures (e.g. a metadata conflict on
    /// one node) come back as that item's own error.
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        self.meta_batched(
            meta_tag::PUT_MANY,
            items,
            |w, (key, node)| {
                wire::put_node_key(w, key);
                wire::put_tree_node(w, node);
            },
            |_| Ok(()),
        )
    }

    /// One frame per batch: a read descent fetches each tree level in a
    /// single round trip.
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        self.meta_batched(
            meta_tag::GET_MANY,
            keys,
            wire::put_node_key,
            wire::get_tree_node,
        )
    }

    /// One frame per batch: GC releases a whole cascade wave per round
    /// trip. Per item, transport loss is an `Err` — unlike the single
    /// [`Self::delete`], the batched form can report "outcome unknown".
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        self.meta_batched(meta_tag::DELETE_MANY, keys, wire::put_node_key, |r| {
            r.get_bool()
        })
    }

    fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Transport failures degrade to `0` — counted on
    /// `rpc_degraded_diagnostics`.
    fn node_count(&self) -> usize {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::NODE_COUNT);
        match call(&self.pool, req).and_then(|payload| payload.reader().get_u64()) {
            Ok(n) => n as usize,
            Err(e) => {
                degraded(&self.stats, "MetaStore::node_count", &e);
                0
            }
        }
    }

    /// Transport failures degrade to an empty vector — counted on
    /// `rpc_degraded_diagnostics`.
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_STATS);
        match call(&self.pool, req).and_then(|payload| {
            let mut r = payload.reader();
            let n = r.get_u64()? as usize;
            let mut out = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                out.push((r.get_u64()? as usize, r.get_u64()?, r.get_u64()?));
            }
            r.finish()?;
            Ok(out)
        }) {
            Ok(stats) => stats,
            Err(e) => {
                degraded(&self.stats, "MetaStore::shard_stats", &e);
                Vec::new()
            }
        }
    }

    /// Best-effort over the wire (a crash-injection hook; transport
    /// failures are ignored).
    fn crash_shard(&self, shard: usize) {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::CRASH_SHARD);
        req.put_u64(shard as u64);
        let _ = call(&self.pool, req);
    }
}

// --- version service --------------------------------------------------------

/// [`VersionService`] over a remote version manager.
pub struct RpcVersionService {
    pool: MuxPool,
    block_size: u64,
}

impl RpcVersionService {
    /// [`Self::connect_with`] with the default connection budget.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        Self::connect_with(addr, stats, DEFAULT_RPC_CLIENT_CONNECTIONS)
    }

    /// Connects (`budget` multiplexed connections) and caches the fixed
    /// block size. `stats` receives the adapter's round-trip accounting.
    pub fn connect_with(addr: SocketAddr, stats: Arc<EngineStats>, budget: usize) -> Result<Self> {
        let pool = MuxPool::connect_with(addr, stats, budget)?;
        let mut req = WireWriter::new();
        req.put_u8(version_tag::BLOCK_SIZE);
        let payload = call(&pool, req)?;
        let block_size = payload.reader().get_u64()?;
        Ok(Self { pool, block_size })
    }

    fn blob_request(tag: u8, blob: BlobId) -> WireWriter {
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(blob.raw());
        req
    }
}

impl VersionService for RpcVersionService {
    fn block_size(&self) -> u64 {
        self.block_size
    }

    fn create_blob(&self) -> Result<BlobId> {
        let mut req = WireWriter::new();
        req.put_u8(version_tag::CREATE_BLOB);
        let payload = call(&self.pool, req)?;
        Ok(BlobId::new(payload.reader().get_u64()?))
    }

    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        let mut req = Self::blob_request(version_tag::BRANCH, parent);
        req.put_u64(at.raw());
        let payload = call(&self.pool, req)?;
        Ok(BlobId::new(payload.reader().get_u64()?))
    }

    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        let mut req = Self::blob_request(version_tag::ASSIGN, blob);
        wire::put_write_intent(&mut req, intent);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let ticket = wire::get_write_ticket(&mut r)?;
        r.finish()?;
        Ok(ticket)
    }

    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        let mut req = Self::blob_request(version_tag::COMMIT, blob);
        req.put_u64(version.raw());
        call(&self.pool, req)?;
        Ok(())
    }

    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        let req = Self::blob_request(version_tag::LATEST, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let out = (Version::new(r.get_u64()?), r.get_u64()?);
        r.finish()?;
        Ok(out)
    }

    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        let mut req = Self::blob_request(version_tag::SNAPSHOT_INFO, blob);
        req.put_u64(version.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let info = wire::get_snapshot_info(&mut r)?;
        r.finish()?;
        Ok(info)
    }

    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        let req = Self::blob_request(version_tag::CHAIN, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let chain = wire::get_log_chain(&mut r)?;
        r.finish()?;
        Ok(chain)
    }

    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        let mut req = Self::blob_request(version_tag::WAIT_REVEALED, blob);
        req.put_u64(version.raw());
        wire::put_duration(&mut req, timeout);
        // The server enforces the timeout and answers with Ok or
        // Error::Timeout; this call parks on its waiter slot only, so
        // other requests keep pipelining on the same connection.
        call(&self.pool, req)?;
        Ok(())
    }

    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let req = Self::blob_request(version_tag::PENDING_VERSIONS, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let versions = wire::get_versions(&mut r)?;
        r.finish()?;
        Ok(versions)
    }

    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        let req = Self::blob_request(version_tag::DELETE_BLOB, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }

    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        let mut req = Self::blob_request(version_tag::COLLECT_BEFORE, blob);
        req.put_u64(keep_from.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }
}

// --- placement service --------------------------------------------------------

/// [`PlacementService`] over a remote provider manager.
///
/// This is the control-plane half of the deployment: N independent client
/// processes allocate against *one* hosted load table, so global load
/// accounting holds across processes (the paper's provider manager is a
/// shared service, not client state). Round trips are metered on
/// [`EngineStats::control_round_trips`] — the data-path
/// `port_round_trips` invariants are unaffected.
pub struct RpcPlacementService {
    pool: MuxPool,
    /// Connect-time provider count, advanced locally when a registration
    /// through this adapter grows the pool — `provider_count` is a plain
    /// (non-`Result`) shape accessor and must not fail on transport loss.
    count: AtomicUsize,
}

impl RpcPlacementService {
    /// [`Self::connect_with`] with the default connection budget.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        Self::connect_with(addr, stats, DEFAULT_RPC_CLIENT_CONNECTIONS)
    }

    /// Connects (`budget` multiplexed connections) and caches the
    /// provider count. `stats` receives the adapter's round-trip
    /// accounting on `control_round_trips`.
    pub fn connect_with(addr: SocketAddr, stats: Arc<EngineStats>, budget: usize) -> Result<Self> {
        let pool = MuxPool::connect_control(addr, stats, budget)?;
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::PROVIDER_COUNT);
        let payload = call(&pool, req)?;
        let count = payload.reader().get_u64()? as usize;
        Ok(Self {
            pool,
            count: AtomicUsize::new(count),
        })
    }
}

impl PlacementService for RpcPlacementService {
    fn provider_count(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    fn allocate(&self, n_blocks: usize, replication: usize) -> Result<Vec<BlockAllocation>> {
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::ALLOCATE);
        req.put_u64(n_blocks as u64);
        req.put_u64(replication as u64);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let n = r.get_u64()? as usize;
        let mut allocs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            allocs.push(wire::get_block_allocation(&mut r)?);
        }
        r.finish()?;
        Ok(allocs)
    }

    fn release_many(&self, providers: &[usize]) -> Result<()> {
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::RELEASE_MANY);
        req.put_u64(providers.len() as u64);
        for &p in providers {
            req.put_u64(p as u64);
        }
        call(&self.pool, req)?;
        Ok(())
    }

    fn load_vector(&self) -> Result<Vec<u64>> {
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::LOAD_VECTOR);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let n = r.get_u64()? as usize;
        let mut loads = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            loads.push(r.get_u64()?);
        }
        r.finish()?;
        Ok(loads)
    }

    fn register_provider(&self, node: NodeId) -> Result<usize> {
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::REGISTER_PROVIDER);
        req.put_u64(node.raw());
        let payload = call(&self.pool, req)?;
        let idx = payload.reader().get_u64()? as usize;
        self.count.fetch_max(idx + 1, Ordering::SeqCst);
        Ok(idx)
    }

    fn heartbeat(&self, provider: usize) -> Result<u64> {
        let mut req = WireWriter::new();
        req.put_u8(placement_tag::HEARTBEAT);
        req.put_u64(provider as u64);
        call(&self.pool, req)?.reader().get_u64()
    }
}

// --- gc service ---------------------------------------------------------------

/// [`GcService`] over a remote [`blobseer_core::gc::GcHost`].
///
/// Distributed refcounts: a node shared by snapshots written through two
/// different client processes has *one* count on the hosted tracker.
/// Cascades run server-side, next to the metadata and block services; the
/// returned [`GcReport`] is mirrored into this deployment's
/// [`EngineStats`] so client-visible GC counters keep working. Round
/// trips are metered on `control_round_trips`.
pub struct RpcGcService {
    pool: MuxPool,
    stats: Arc<EngineStats>,
}

impl RpcGcService {
    /// [`Self::connect_with`] with the default connection budget.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        Self::connect_with(addr, stats, DEFAULT_RPC_CLIENT_CONNECTIONS)
    }

    /// Connects (`budget` multiplexed connections). `stats` receives the
    /// adapter's round-trip accounting on `control_round_trips` plus the
    /// mirrored per-cascade GC counters.
    pub fn connect_with(addr: SocketAddr, stats: Arc<EngineStats>, budget: usize) -> Result<Self> {
        let pool = MuxPool::connect_control(addr, Arc::clone(&stats), budget)?;
        Ok(Self { pool, stats })
    }
}

impl GcService for RpcGcService {
    fn inc_nodes(&self, keys: &[NodeKey]) -> Result<()> {
        let mut req = WireWriter::new();
        req.put_u8(gc_tag::INC_NODES);
        wire::put_node_keys(&mut req, keys);
        call(&self.pool, req)?;
        Ok(())
    }

    fn release_roots(&self, roots: &[NodeKey]) -> Result<GcReport> {
        let mut req = WireWriter::new();
        req.put_u8(gc_tag::RELEASE_ROOTS);
        wire::put_node_keys(&mut req, roots);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let report = wire::get_gc_report(&mut r)?;
        r.finish()?;
        // Mirror the server-side cascade into this deployment's counters,
        // so `delete_blob`/`gc_before` observability is hosting-agnostic.
        EngineStats::add(&self.stats.meta_nodes_collected, report.nodes_deleted);
        EngineStats::add(&self.stats.blocks_collected, report.blocks_deleted);
        EngineStats::add(&self.stats.gc_untracked_releases, report.untracked_releases);
        Ok(report)
    }

    fn node_count(&self, key: &NodeKey) -> Result<u64> {
        let mut req = WireWriter::new();
        req.put_u8(gc_tag::NODE_COUNT);
        wire::put_node_key(&mut req, key);
        call(&self.pool, req)?.reader().get_u64()
    }

    fn tracked_nodes(&self) -> Result<usize> {
        let mut req = WireWriter::new();
        req.put_u8(gc_tag::TRACKED_NODES);
        Ok(call(&self.pool, req)?.reader().get_u64()? as usize)
    }
}
