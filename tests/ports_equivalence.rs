//! Observational equivalence across backend families.
//!
//! Two properties, same method — drive different adapter stacks with
//! identical scripts and demand identical observables:
//!
//! 1. **Sharded ≡ global-lock** (PR 2): the lock-striped maps behind
//!    `DataProvider`/`MetaProvider` must be a pure performance change
//!    relative to the seed's single `RwLock<HashMap>` layout.
//! 2. **In-memory ≡ RPC-loopback** (this PR): a full client deployment
//!    wired over TCP sockets (`blobseer_rpc::LoopbackCluster`) must be
//!    observationally identical to the in-memory one for every op script
//!    — sizes, versions, bytes read, **and error variants**, which must
//!    cross the wire as themselves.
//!
//! Plus wire-codec round-trip properties: random domain values encode and
//! decode to themselves, and every `Error` variant survives the trip.

use blobseer_core::block_store::{DataProvider, ProviderSet};
use blobseer_core::dht::MetaDht;
use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, NodeRef, TreeNode};
use blobseer_core::ports::BlockStore;
use blobseer_core::{BlobSeer, WriteIntent};
use blobseer_rpc::LoopbackCluster;
use blobseer_types::wire::{error_fixture, WireReader, WireWriter};
use blobseer_types::{BlobId, BlobSeerConfig, BlockId, Error, NodeId, Version};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One step of a block-store workload. Several logical writers' scripts are
/// interleaved by construction: the generator draws (writer, op) pairs and
/// the keys are namespaced per writer, exactly the access pattern of
/// concurrent clients that never violate block immutability.
#[derive(Clone, Debug)]
enum BlockOp {
    Put { writer: u8, key: u8 },
    Get { writer: u8, key: u8 },
    Delete { writer: u8, key: u8 },
}

fn block_ops() -> impl Strategy<Value = Vec<BlockOp>> {
    let op = prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Put { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Get { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Delete { writer, key }),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Deterministic content per block id, so re-puts are always idempotent.
fn content(writer: u8, key: u8) -> Bytes {
    Bytes::from(vec![writer ^ key; 1 + (key % 7) as usize])
}

fn block_id(writer: u8, key: u8) -> BlockId {
    BlockId::new(1 + writer as u64 * 1000 + key as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded data provider behaves exactly like the global-lock one
    /// under interleaved put/get/delete scripts.
    #[test]
    fn sharded_data_provider_matches_global_lock(ops in block_ops()) {
        let global = DataProvider::with_shards(NodeId::new(0), 1);
        let sharded = DataProvider::with_shards(NodeId::new(0), 32);
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let id = block_id(writer, key);
                    global.put(id, content(writer, key));
                    sharded.put(id, content(writer, key));
                }
                BlockOp::Get { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.get(id), sharded.get(id));
                }
                BlockOp::Delete { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.delete(id), sharded.delete(id));
                }
            }
            prop_assert_eq!(global.block_count(), sharded.block_count());
            prop_assert_eq!(global.bytes_stored(), sharded.bytes_stored());
        }
        // Full final sweep over the whole key space.
        for writer in 0..4u8 {
            for key in 0..=255u8 {
                let id = block_id(writer, key);
                prop_assert_eq!(global.contains(id), sharded.contains(id));
                prop_assert_eq!(global.get(id).ok(), sharded.get(id).ok());
            }
        }
    }

    /// Same for the metadata DHT, including conflict outcomes.
    #[test]
    fn sharded_meta_dht_matches_global_lock(ops in block_ops()) {
        let global = MetaDht::with_stripes(4, 2, 1);
        let sharded = MetaDht::with_stripes(4, 2, 32);
        let key_of = |writer: u8, key: u8| {
            NodeKey::new(
                BlobId::new(1 + writer as u64),
                Version::new(1 + (key % 13) as u64),
                Pos::new(key as u64, 1),
            )
        };
        let node_of = |writer: u8, key: u8| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: block_id(writer, key),
                providers: vec![writer as u32],
                len: 64,
            })
        };
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let a = global.put(key_of(writer, key), node_of(writer, key));
                    let b = sharded.put(key_of(writer, key), node_of(writer, key));
                    prop_assert_eq!(a, b);
                }
                BlockOp::Get { writer, key } => {
                    prop_assert_eq!(
                        global.get(&key_of(writer, key)),
                        sharded.get(&key_of(writer, key))
                    );
                }
                BlockOp::Delete { writer, key } => {
                    prop_assert_eq!(
                        global.delete(&key_of(writer, key)),
                        sharded.delete(&key_of(writer, key))
                    );
                }
            }
            prop_assert_eq!(global.node_count(), sharded.node_count());
        }
    }
}

#[test]
fn conflicting_reputs_fail_identically_on_both_layouts() {
    for stripes in [1usize, 32] {
        let dht = MetaDht::with_stripes(4, 1, stripes);
        let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
        let leaf = |b: u64| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(b),
                providers: vec![0],
                len: 8,
            })
        };
        dht.put(key, leaf(1)).unwrap();
        let err = dht.put(key, leaf(2)).unwrap_err();
        assert!(
            matches!(err, Error::MetadataConflict(_)),
            "stripes={stripes}: {err}"
        );
        assert_eq!(dht.get(&key).unwrap(), leaf(1), "stripes={stripes}");
    }
}

// --- in-memory ≡ RPC-loopback ----------------------------------------------

const RPC_BLOCK: u64 = 64;

/// One step of a client-protocol script, replayed against both backends.
/// Offsets/lengths are drawn small enough to exercise aligned and
/// unaligned paths, holes, multi-block spans and out-of-bounds probes.
#[derive(Clone, Debug)]
enum ClientOp {
    Append { len: u16 },
    Write { offset: u16, len: u16 },
    Read { offset: u16, len: u16 },
    ReadVersion { version: u8, offset: u16, len: u16 },
    Latest,
    History,
}

fn client_ops() -> impl Strategy<Value = Vec<ClientOp>> {
    // Keep lengths non-zero except via the explicit zero-write probe below:
    // a zero-length read is legal, a zero-length write is WriteAborted.
    let op = prop_oneof![
        (1u16..200).prop_map(|len| ClientOp::Append { len }),
        (0u16..600, 1u16..200).prop_map(|(offset, len)| ClientOp::Write { offset, len }),
        (0u16..800, 0u16..300).prop_map(|(offset, len)| ClientOp::Read { offset, len }),
        (0u8..8, 0u16..400, 0u16..200).prop_map(|(version, offset, len)| ClientOp::ReadVersion {
            version,
            offset,
            len
        }),
        (0u16..1).prop_map(|_| ClientOp::Latest),
        (0u16..1).prop_map(|_| ClientOp::History),
    ];
    proptest::collection::vec(op, 1..25)
}

/// The two deployments under comparison, built once and shared by every
/// proptest case (each case runs on a fresh BLOB). The cluster must stay
/// alive as long as the RPC deployment, so both live in the same cell.
struct RpcRig {
    in_memory: Arc<BlobSeer>,
    over_rpc: Arc<BlobSeer>,
    _cluster: LoopbackCluster,
}

fn rpc_rig() -> &'static RpcRig {
    static RIG: OnceLock<RpcRig> = OnceLock::new();
    RIG.get_or_init(|| {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(RPC_BLOCK)
            .with_unaligned_append_timeout(std::time::Duration::from_millis(200));
        let cluster = LoopbackCluster::boot(cfg.clone(), 4).unwrap();
        RpcRig {
            in_memory: BlobSeer::deploy(cfg, 4),
            over_rpc: cluster.deploy().unwrap(),
            _cluster: cluster,
        }
    })
}

/// Deterministic payload for op `i` of a case.
fn fill(i: usize, len: u16) -> Vec<u8> {
    vec![(i as u8).wrapping_mul(31).wrapping_add(7); len as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same op script against the in-memory backend and the TCP
    /// loopback cluster yields identical observables: values on success
    /// and the exact `Error` variant on failure. Both deployments create
    /// blobs from the same id sequence, so even the ids agree.
    #[test]
    fn in_memory_and_rpc_loopback_agree(ops in client_ops()) {
        let rig = rpc_rig();
        let mem = rig.in_memory.client(NodeId::new(0));
        let rpc = rig.over_rpc.client(NodeId::new(0));
        let mem_blob = mem.create();
        let rpc_blob = rpc.create();
        prop_assert_eq!(mem_blob, rpc_blob, "blob id sequences must align");
        for (i, op) in ops.iter().enumerate() {
            match *op {
                ClientOp::Append { len } => {
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.append(mem_blob, &data),
                        rpc.append(rpc_blob, &data),
                        "append diverged at step {}", i
                    );
                }
                ClientOp::Write { offset, len } => {
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.write(mem_blob, offset as u64, &data),
                        rpc.write(rpc_blob, offset as u64, &data),
                        "write diverged at step {}", i
                    );
                }
                ClientOp::Read { offset, len } => {
                    prop_assert_eq!(
                        mem.read(mem_blob, None, offset as u64, len as u64),
                        rpc.read(rpc_blob, None, offset as u64, len as u64),
                        "read diverged at step {}", i
                    );
                }
                ClientOp::ReadVersion { version, offset, len } => {
                    let v = Some(Version::new(version as u64));
                    prop_assert_eq!(
                        mem.read(mem_blob, v, offset as u64, len as u64),
                        rpc.read(rpc_blob, v, offset as u64, len as u64),
                        "versioned read diverged at step {}", i
                    );
                }
                ClientOp::Latest => {
                    prop_assert_eq!(mem.latest(mem_blob), rpc.latest(rpc_blob));
                }
                ClientOp::History => {
                    prop_assert_eq!(mem.history(mem_blob), rpc.history(rpc_blob));
                }
            }
        }
        // Error probes at the end of every case: the exact variants must
        // cross the wire. (OutOfBounds, NoSuchBlob, NoSuchVersion,
        // WriteAborted, VersionNotRevealed.)
        let (_, size) = mem.latest(mem_blob).unwrap();
        prop_assert_eq!(
            mem.read(mem_blob, None, size, 1),
            rpc.read(rpc_blob, None, size, 1)
        );
        prop_assert_eq!(
            mem.latest(BlobId::new(u64::MAX)),
            rpc.latest(BlobId::new(u64::MAX))
        );
        prop_assert_eq!(
            mem.read(mem_blob, Some(Version::new(10_000)), 0, 1),
            rpc.read(rpc_blob, Some(Version::new(10_000)), 0, 1)
        );
        prop_assert_eq!(
            mem.write(mem_blob, 0, &[]),
            rpc.write(rpc_blob, 0, &[])
        );
        // A block-aligned stuck version: reads of it answer
        // VersionNotRevealed identically on both sides. (Block-aligned so
        // it never sends a later unaligned append into the slow path —
        // there are no later ops on these blobs.)
        let stuck_mem = rig.in_memory.version_manager()
            .assign(mem_blob, WriteIntent::Append { size: RPC_BLOCK }).unwrap();
        let stuck_rpc = rig.over_rpc.version_manager()
            .assign(rpc_blob, WriteIntent::Append { size: RPC_BLOCK }).unwrap();
        prop_assert_eq!(stuck_mem.version, stuck_rpc.version);
        prop_assert_eq!(stuck_mem.offset, stuck_rpc.offset);
        prop_assert_eq!(
            mem.read(mem_blob, Some(stuck_mem.version), 0, 1),
            rpc.read(rpc_blob, Some(stuck_rpc.version), 0, 1)
        );
        prop_assert_eq!(
            rig.in_memory.version_manager().pending_versions(mem_blob).unwrap(),
            rig.over_rpc.version_manager().pending_versions(rpc_blob).unwrap()
        );
        // Repair both so the shared deployments stay healthy for later
        // cases (fresh blobs, but keep the VM free of stuck versions).
        mem.repair_aborted(&stuck_mem).unwrap();
        rpc.repair_aborted(&stuck_rpc).unwrap();
    }

    /// Wire-codec round trips on random domain values: tree nodes, node
    /// keys, log entries, snapshot infos. Encode → decode is the identity.
    #[test]
    fn wire_codec_roundtrips_random_values(
        seeds in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u8..3), 1..40)
    ) {
        use blobseer_rpc::wire;
        for &(a, b, kind) in &seeds {
            // A valid position derived from the seed: power-of-two length,
            // aligned start.
            let len = 1u64 << (a % 20);
            let start = (b % 1000) * len;
            let pos = Pos::new(start, len);
            let key = NodeKey::new(BlobId::new(a), Version::new(b), pos);
            let mut w = WireWriter::new();
            wire::put_node_key(&mut w, &key);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_node_key(&mut r).unwrap(), key);
            r.finish().unwrap();

            let node = match kind {
                0 => TreeNode::Inner {
                    left: (a % 2 == 0).then_some(NodeRef {
                        blob: BlobId::new(a),
                        version: Version::new(b),
                    }),
                    right: (b % 2 == 0).then_some(NodeRef {
                        blob: BlobId::new(b),
                        version: Version::new(a),
                    }),
                },
                1 => TreeNode::Leaf(BlockDescriptor {
                    block_id: BlockId::new(a),
                    providers: vec![(a % 7) as u32, (b % 11) as u32],
                    len: (b % (u32::MAX as u64)) as u32,
                }),
                _ => TreeNode::LeafAlias((a % 3 == 0).then_some(NodeRef {
                    blob: BlobId::new(b),
                    version: Version::new(a),
                })),
            };
            let mut w = WireWriter::new();
            wire::put_tree_node(&mut w, &node);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_tree_node(&mut r).unwrap(), node);
            r.finish().unwrap();

            let info = blobseer_core::SnapshotInfo {
                version: Version::new(a),
                size: b,
                cap: len,
                root_blob: BlobId::new(b),
                revealed: a % 2 == 0,
            };
            let mut w = WireWriter::new();
            wire::put_snapshot_info(&mut w, &info);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_snapshot_info(&mut r).unwrap(), info);
            r.finish().unwrap();
        }
    }
}

/// Every `Error` variant — the full port failure vocabulary — survives a
/// wire round trip bit-exactly, both bare and through the RPC response
/// envelope. This is the "failures propagate across the wire instead of
/// degrading to transport errors" guarantee, asserted exhaustively.
#[test]
fn every_error_variant_survives_the_wire() {
    for e in error_fixture() {
        let mut w = WireWriter::new();
        w.put_error(&e);
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.get_error().unwrap(), e, "bare codec");
        r.finish().unwrap();

        let body = blobseer_rpc::wire::encode_response(Err(e.clone()));
        assert_eq!(
            blobseer_rpc::wire::decode_response(&body).unwrap_err(),
            e,
            "response envelope"
        );
    }
}

#[test]
fn threaded_workload_converges_to_identical_state() {
    // 8 threads hammer both layouts with the same per-thread scripts
    // (disjoint key spaces, so the interleaving cannot change outcomes);
    // both must converge to the same observable state.
    let run = |shards: usize| {
        let set = Arc::new(ProviderSet::with_shards(
            2,
            |i| NodeId::new(i as u64),
            shards,
        ));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let id = BlockId::new(1 + t * 10_000 + i);
                        let data = Bytes::from(vec![(t ^ i) as u8; 8]);
                        let p = (i % 2) as usize;
                        BlockStore::put(&*set, p, id, data).unwrap();
                        assert_eq!(BlockStore::get(&*set, p, id).unwrap().len(), 8);
                        if i % 3 == 0 {
                            BlockStore::delete(&*set, p, id);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        (
            set.layout_vector(),
            BlockStore::total_bytes_stored(&*set),
            BlockStore::total_block_count(&*set),
        )
    };
    assert_eq!(run(1), run(32));
}
