//! Service **port traits**: the seams between the client protocol and the
//! concrete service processes of Fig. 2.
//!
//! The paper's throughput claims rest on its service decomposition — version
//! manager, provider manager, data providers, metadata DHT — and on the
//! client protocol never caring *where* those services run. This module
//! makes that decomposition explicit in the type system: the client
//! ([`crate::client`]) is written against three object-safe traits and a
//! deployment wires in adapters:
//!
//! * [`BlockStore`] — the data providers of a deployment, addressed by dense
//!   provider index (the provider manager allocates by index).
//! * [`MetaStore`] — the metadata DHT storing segment-tree nodes.
//! * [`VersionService`] — the version manager: the serialization point of
//!   the protocol (§III-A.4) plus snapshot/branch/GC bookkeeping.
//!
//! Four adapter families ship in-tree:
//!
//! 1. the **in-memory** structs ([`crate::block_store::ProviderSet`],
//!    [`crate::dht::MetaDht`], [`crate::version_manager::VersionManager`]),
//!    now lock-striped (see [`crate::sharded`]);
//! 2. the **simnet-backed** adapters (`experiments::concurrent`) that charge a
//!    discrete-event cost model per call so the figure drivers exercise the
//!    real client code path;
//! 3. the **fault-injecting** decorators ([`crate::faults`]) that drop,
//!    delay or duplicate puts for crash-consistency tests;
//! 4. the **TCP RPC** adapters (`blobseer-rpc`) that take every trait call
//!    over real sockets to separate server processes — the paper's
//!    "communicate through remote procedure calls" (§III-B) — with every
//!    [`blobseer_types::Error`] variant surviving the wire round-trip.
//!
//! A fourth, *passive* port rides along: [`ProtocolObserver`] receives a
//! callback at every protocol phase boundary (data phase, version
//! assignment, metadata publish, commit; snapshot resolve, tree descent,
//! block fetches). Deployments default to [`NoopObserver`]; the
//! concurrent-client harness (`experiments::concurrent`) installs one that
//! reads the simulated clock at each boundary, which is how the figures
//! report where time goes — e.g. the version-manager queueing that bends
//! Fig. 5 — without the client code knowing it is being simulated.
//!
//! The store traits are **vectored**: alongside the single-item methods,
//! [`BlockStore`] and [`MetaStore`] expose `put_many`/`get_many`/
//! `delete_many` with per-item `Result`s — batches grouped by data
//! provider for blocks, whole tree levels for metadata. The protocol's
//! hot paths issue batches (the §III-D data phase puts one batch per
//! provider, metadata publish pushes one batch per tree level, the §III-C
//! descent fetches one batch per level, GC releases whole cascade waves),
//! so a remote backend pays O(levels + providers) round trips per
//! operation instead of O(blocks + nodes). Every vectored method has a
//! default implementation looping over its single-item sibling, so
//! third-party adapters keep working unchanged — native adapters override
//! them (the lock-striped stores take each stripe's lock once per batch;
//! `blobseer-rpc` ships one wire frame per batch).
//!
//! Everything here is object-safe on purpose (`Arc<dyn …>` wiring): later
//! PRs can add RPC-backed or async-bridged adapters without touching any
//! protocol code.

#![warn(missing_docs)]

use crate::gc::GcReport;
use crate::meta::key::NodeKey;
use crate::meta::log::LogChain;
use crate::meta::node::TreeNode;
use crate::provider_manager::BlockAllocation;
use crate::version_manager::{SnapshotInfo, WriteIntent, WriteTicket};
use blobseer_types::{BlobId, BlockId, Error, NodeId, Result, Version};
use bytes::Bytes;
use std::time::Duration;

/// The data providers of a deployment, addressed by dense provider index
/// `0..len()` — the index space the provider manager allocates in.
///
/// Blocks are immutable once stored; `put` with an id the provider already
/// holds must be idempotent for identical content.
///
/// # Example
///
/// Any adapter is used through `Arc<dyn BlockStore>`; the in-memory
/// [`crate::block_store::ProviderSet`] is the reference implementation:
///
/// ```
/// use blobseer_core::ports::BlockStore;
/// use blobseer_core::block_store::ProviderSet;
/// use blobseer_types::{BlockId, NodeId};
/// use bytes::Bytes;
/// use std::sync::Arc;
///
/// let store: Arc<dyn BlockStore> = Arc::new(ProviderSet::new(4, |i| NodeId::new(i as u64)));
/// store.put(2, BlockId::new(7), Bytes::from_static(b"block")).unwrap();
/// assert_eq!(&store.get(2, BlockId::new(7)).unwrap()[..], b"block");
/// assert_eq!(store.layout_vector(), vec![0, 0, 1, 0]);
/// assert_eq!(store.index_of_node(NodeId::new(2)), Some(2));
/// ```
pub trait BlockStore: Send + Sync {
    /// Number of providers in the deployment.
    fn len(&self) -> usize;

    /// The cluster node hosting provider `i` (locality scheduling, §IV-C).
    fn node(&self, provider: usize) -> NodeId;

    /// Finds the dense index of the provider hosted on `node`, if any.
    fn index_of_node(&self, node: NodeId) -> Option<usize>;

    /// Stores a block on provider `i`.
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()>;

    /// Fetches a block from provider `i` (zero-copy clone).
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes>;

    /// True if provider `i` holds the block.
    fn contains(&self, provider: usize, id: BlockId) -> bool;

    /// Deletes a block from provider `i`; returns the bytes freed (0 if
    /// absent). `Err` means the outcome is *unknown* (e.g. transport loss
    /// on a remote backend), which callers must not conflate with "absent".
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64>;

    /// Stores a batch of blocks on provider `i` — the vectored data phase
    /// (§III-D stores a write's blocks "in parallel"; batching lets remote
    /// backends ship one frame per provider instead of one per block).
    ///
    /// Returns one `Result` per item, in input order: a backend (or fault
    /// decorator) may fail a subset while the rest land. The default
    /// implementation loops over [`Self::put`], so existing third-party
    /// adapters keep working unchanged.
    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        items
            .iter()
            .map(|(id, data)| self.put(provider, *id, data.clone()))
            .collect()
    }

    /// Fetches a batch of blocks from provider `i`, with per-item results
    /// in input order. Default: loops over [`Self::get`].
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        ids.iter().map(|&id| self.get(provider, id)).collect()
    }

    /// Deletes a batch of blocks from provider `i`, returning the bytes
    /// freed per item in input order. Default: loops over [`Self::delete`].
    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        ids.iter().map(|&id| self.delete(provider, id)).collect()
    }

    /// Number of blocks currently stored on provider `i`.
    fn block_count(&self, provider: usize) -> usize;

    /// Payload bytes currently stored on provider `i`.
    fn bytes_stored(&self, provider: usize) -> u64;

    /// `(puts, gets)` served by provider `i` since deployment.
    fn op_counts(&self, provider: usize) -> (u64, u64);

    /// True when the adapter exposes no providers. Deployments reject such
    /// adapters up front (`BlobSeer::deploy_ports`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-provider block counts — the "data layout vector" of Fig. 3(b).
    fn layout_vector(&self) -> Vec<u64> {
        (0..self.len())
            .map(|i| self.block_count(i) as u64)
            .collect()
    }

    /// Total blocks stored across providers.
    fn total_block_count(&self) -> usize {
        (0..self.len()).map(|i| self.block_count(i)).sum()
    }

    /// Total payload bytes stored across providers.
    fn total_bytes_stored(&self) -> u64 {
        (0..self.len()).map(|i| self.bytes_stored(i)).sum()
    }
}

/// The metadata DHT: segment-tree nodes keyed by `(blob, version, pos)`.
///
/// Nodes are immutable; a conflicting re-put must fail with
/// [`blobseer_types::Error::MetadataConflict`] in every build profile.
///
/// # Example
///
/// ```
/// use blobseer_core::ports::MetaStore;
/// use blobseer_core::dht::MetaDht;
/// use blobseer_core::meta::key::{NodeKey, Pos};
/// use blobseer_core::meta::node::{BlockDescriptor, TreeNode};
/// use blobseer_types::{BlobId, BlockId, Version};
/// use std::sync::Arc;
///
/// let dht: Arc<dyn MetaStore> = Arc::new(MetaDht::new(8, 1));
/// let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
/// let leaf = TreeNode::Leaf(BlockDescriptor {
///     block_id: BlockId::new(42),
///     providers: vec![0],
///     len: 64,
/// });
/// dht.put(key, leaf.clone()).unwrap();
/// assert_eq!(dht.get(&key).unwrap(), leaf);
/// // Tree nodes are immutable: re-putting different content must fail.
/// let conflicting = TreeNode::LeafAlias(None);
/// assert!(dht.put(key, conflicting).is_err());
/// ```
pub trait MetaStore: Send + Sync {
    /// Stores a node (on all its replicas).
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()>;

    /// Fetches a node, trying replicas in order.
    fn get(&self, key: &NodeKey) -> Result<TreeNode>;

    /// Deletes a node from all replicas; true if any replica existed.
    fn delete(&self, key: &NodeKey) -> bool;

    /// Stores a batch of nodes with per-item results in input order — how
    /// a writer publishes a whole tree level in one call (§III-D publishes
    /// a version's nodes in parallel). A backend may fail a subset (e.g. a
    /// per-item [`blobseer_types::Error::MetadataConflict`]) while the
    /// rest land. Default: loops over [`Self::put`], so third-party
    /// adapters keep working unchanged.
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        items
            .iter()
            .map(|(key, node)| self.put(*key, node.clone()))
            .collect()
    }

    /// Fetches a batch of nodes with per-item results in input order — one
    /// call per level of a read's tree descent (§III-C fetches the sibling
    /// nodes of a level concurrently). Default: loops over [`Self::get`].
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Deletes a batch of nodes; per item, `Ok(true)` if any replica
    /// existed, `Err` when the outcome is unknown (remote backends).
    /// Default: loops over [`Self::delete`].
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        keys.iter().map(|key| Ok(self.delete(key))).collect()
    }

    /// Stable shard index for client-side fan-out grouping: keys mapping
    /// to different indices may be batched and issued *concurrently* by
    /// the fan-out executor. Default: every key maps to group `0`, i.e.
    /// one batch per tree level — correct for single-endpoint backends
    /// (the RPC adapters: one socket pool, one frame per level) and for
    /// decorators that must preserve their inner call structure (the
    /// SimGate charging adapters' cost model counts `put_many` calls).
    /// Only backends whose shards are independently reachable (the
    /// in-memory [`crate::dht::MetaDht`]) override this.
    fn fanout_shard(&self, _key: &NodeKey) -> usize {
        0
    }

    /// Number of metadata providers (DHT buckets).
    fn shard_count(&self) -> usize;

    /// Total nodes stored (replicas counted).
    fn node_count(&self) -> usize;

    /// Per-shard `(nodes, puts, gets)` — the metadata load distribution.
    fn shard_stats(&self) -> Vec<(usize, u64, u64)>;

    /// Drops one shard's contents (fault-tolerance testing hook).
    fn crash_shard(&self, shard: usize);
}

/// The version manager: assigns versions (the protocol's only serialization
/// point, §III-A.4), tracks commit/reveal order, and owns the write logs
/// that snapshot geometry and branching resolve through.
///
/// # Example
///
/// A snapshot becomes visible only after commit; assignment alone leaves it
/// pending:
///
/// ```
/// use blobseer_core::ports::VersionService;
/// use blobseer_core::{EngineStats, VersionManager, WriteIntent};
/// use blobseer_types::Version;
/// use std::sync::Arc;
///
/// let vm: Arc<dyn VersionService> =
///     Arc::new(VersionManager::new(64, Arc::new(EngineStats::new())));
/// let blob = vm.create_blob().unwrap();
/// let ticket = vm.assign(blob, WriteIntent::Append { size: 128 }).unwrap();
/// assert_eq!(ticket.version, Version::new(1));
/// assert_eq!(vm.pending_versions(blob).unwrap(), vec![Version::new(1)]);
/// vm.commit(blob, ticket.version).unwrap();
/// assert_eq!(vm.latest(blob).unwrap(), (Version::new(1), 128));
/// ```
pub trait VersionService: Send + Sync {
    /// The configured block size (bytes).
    fn block_size(&self) -> u64;

    /// Creates a new, empty BLOB. Fails only on service-level trouble
    /// (unreachable version manager, durable log append failure) — there
    /// is no per-blob precondition to violate.
    fn create_blob(&self) -> Result<BlobId>;

    /// Forks `parent` at revealed version `at` (O(1), shares history).
    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId>;

    /// Assigns the next version for a write/append.
    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket>;

    /// Marks `version`'s metadata as written; reveals in version order.
    fn commit(&self, blob: BlobId, version: Version) -> Result<()>;

    /// The latest revealed snapshot: `(version, size)`.
    fn latest(&self, blob: BlobId) -> Result<(Version, u64)>;

    /// Geometry and visibility of one snapshot.
    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo>;

    /// The write-log chain (own log plus ancestry).
    fn chain(&self, blob: BlobId) -> Result<LogChain>;

    /// Blocks until `version` is revealed or `timeout` elapses.
    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()>;

    /// Versions assigned but not yet revealed (diagnostics).
    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>>;

    /// Unregisters a BLOB; returns the root keys of its own revealed
    /// versions for storage release.
    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>>;

    /// Marks own versions strictly below `keep_from` as collected; returns
    /// the root keys to release.
    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>>;
}

/// The provider manager as a service port: block placement, load
/// accounting, provider registration and liveness (§III-B: it "keeps
/// information about the available storage space and schedules the
/// placement of newly generated blocks").
///
/// Historically the provider manager was a client-side struct, so two
/// client processes sharing one cluster each ran a private copy and
/// silently double-booked provider load. Behind this port it can be
/// *hosted*: `blobseer-rpc`'s `LoopbackCluster` runs one
/// [`crate::provider_manager::ProviderManager`] behind a placement server
/// and every deployment's allocation stream and release traffic flows
/// through it, so load accounting is globally consistent.
///
/// Remote adapters account their frames on
/// [`crate::stats::EngineStats::control_round_trips`], never on the
/// data-path counters: a clean write costs exactly one `allocate` call
/// regardless of block count.
pub trait PlacementService: Send + Sync {
    /// Number of providers under management. Fixed deployment shape —
    /// remote adapters fetch it once at connect time.
    fn provider_count(&self) -> usize;

    /// Allocates ids and replica targets for `n_blocks` new blocks,
    /// charging one load unit per replica.
    fn allocate(&self, n_blocks: usize, replication: usize) -> Result<Vec<BlockAllocation>>;

    /// Releases load accounting, one unit per entry (an entry per replica
    /// of every released block) — the batched undo of `allocate`, used by
    /// data-phase aborts and GC cascades.
    fn release_many(&self, providers: &[usize]) -> Result<()>;

    /// Copy of the current load vector (blocks allocated per provider).
    fn load_vector(&self) -> Result<Vec<u64>>;

    /// Registers a new provider hosted on `node`; returns its dense index.
    /// Subsequent allocations may target it.
    fn register_provider(&self, node: NodeId) -> Result<usize>;

    /// Liveness ping for provider `i`; returns its current allocated load.
    fn heartbeat(&self, provider: usize) -> Result<u64>;
}

/// The distributed GC service: node refcounts and cascade triggers.
///
/// Subtree sharing means refcounts must be *globally* consistent — a leaf
/// shared by snapshots written through two different client processes has
/// one count, not one per process. Like [`PlacementService`], this port
/// lets the refcount tracker be hosted ([`crate::gc::GcHost`] behind a
/// `blobseer-rpc` server) instead of living per client deployment.
///
/// Remote adapters account frames on `control_round_trips`: a clean write
/// costs exactly two GC calls (one `inc_nodes` batch for the child
/// references of its published tree, one for the committed root — kept
/// separate because abort repair re-registers the *same* root key).
pub trait GcService: Send + Sync {
    /// Adds one reference to each key (child references during publish,
    /// root registration at commit, branch registration). Nodes need not
    /// exist in the DHT yet.
    fn inc_nodes(&self, keys: &[NodeKey]) -> Result<()>;

    /// Releases one reference on each root and cascades deletion of every
    /// node and block that becomes unreachable, returning the merged
    /// report.
    fn release_roots(&self, roots: &[NodeKey]) -> Result<GcReport>;

    /// Current count for one node (0 if never referenced) — diagnostics.
    fn node_count(&self, key: &NodeKey) -> Result<u64>;

    /// Number of tracked (non-zero) entries — diagnostics.
    fn tracked_nodes(&self) -> Result<usize>;
}

/// Which client operation a [`ProtocolObserver`] callback belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolOp {
    /// `BlobClient::write` — write at an explicit offset.
    Write,
    /// `BlobClient::append` — write at the end, offset fixed at assignment.
    Append,
    /// `BlobClient::read` — snapshot resolve, descent, block fetches.
    Read,
}

/// A protocol phase boundary, in the §III-D / §III-C vocabulary.
///
/// Writes and appends pass through `Start → DataDone → VersionAssigned →
/// MetadataPublished → Committed`; reads through `Start → Located → Done`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolPhase {
    /// The operation entered the client.
    Start,
    /// Data phase finished: every block is stored on its providers.
    DataDone,
    /// The version manager assigned the snapshot version (the only
    /// serialized step, §III-A.4).
    VersionAssigned,
    /// All tree nodes of this version are published to the metadata DHT.
    MetadataPublished,
    /// The version manager acknowledged the commit.
    Committed,
    /// Read only: the segment-tree descent located every queried block.
    Located,
    /// Read only: all block fetches finished and the bytes are assembled.
    Done,
}

/// Passive port notified at every protocol phase boundary.
///
/// The client calls this synchronously on its own thread, so an observer
/// can attribute the callback to the calling client (the simulated-time
/// harness keys a thread-local client context off it) and can read
/// whatever clock it trusts. Implementations must be cheap and must not
/// call back into the engine.
pub trait ProtocolObserver: Send + Sync {
    /// `node`'s client crossed `phase` of `op`.
    fn phase(&self, node: NodeId, op: ProtocolOp, phase: ProtocolPhase);
}

/// The default observer: ignores everything.
pub struct NoopObserver;

impl ProtocolObserver for NoopObserver {
    fn phase(&self, _node: NodeId, _op: ProtocolOp, _phase: ProtocolPhase) {}
}

// --- in-memory adapter impls ------------------------------------------------

impl BlockStore for crate::block_store::ProviderSet {
    fn len(&self) -> usize {
        crate::block_store::ProviderSet::len(self)
    }
    fn node(&self, provider: usize) -> NodeId {
        self.get(provider).node()
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        crate::block_store::ProviderSet::index_of_node(self, node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.get(provider).put(id, data);
        Ok(())
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.get(provider).get(id)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.get(provider).contains(id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        Ok(self.get(provider).delete(id))
    }
    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        self.get(provider).put_many(items);
        items.iter().map(|_| Ok(())).collect()
    }
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        self.get(provider).get_many(ids)
    }
    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        self.get(provider)
            .delete_many(ids)
            .into_iter()
            .map(Ok)
            .collect()
    }
    fn block_count(&self, provider: usize) -> usize {
        self.get(provider).block_count()
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        self.get(provider).bytes_stored()
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.get(provider).op_counts()
    }
    fn layout_vector(&self) -> Vec<u64> {
        crate::block_store::ProviderSet::layout_vector(self)
    }
}

impl MetaStore for crate::dht::MetaDht {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        crate::dht::MetaDht::put(self, key, node)
    }
    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        crate::dht::MetaDht::get(self, key)
    }
    fn delete(&self, key: &NodeKey) -> bool {
        crate::dht::MetaDht::delete(self, key)
    }
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        crate::dht::MetaDht::put_many(self, items)
    }
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        crate::dht::MetaDht::get_many(self, keys)
    }
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        crate::dht::MetaDht::delete_many(self, keys)
            .into_iter()
            .map(Ok)
            .collect()
    }
    fn fanout_shard(&self, key: &NodeKey) -> usize {
        // Replicated nodes span several shards; fan-out grouping only
        // needs a *stable* partition, and the home shard is one.
        crate::dht::MetaDht::shard_of(self, key)
    }
    fn shard_count(&self) -> usize {
        crate::dht::MetaDht::shard_count(self)
    }
    fn node_count(&self) -> usize {
        crate::dht::MetaDht::node_count(self)
    }
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        crate::dht::MetaDht::shard_stats(self)
    }
    fn crash_shard(&self, shard: usize) {
        crate::dht::MetaDht::crash_shard(self, shard)
    }
}

impl PlacementService for crate::provider_manager::ProviderManager {
    fn provider_count(&self) -> usize {
        crate::provider_manager::ProviderManager::provider_count(self)
    }
    fn allocate(&self, n_blocks: usize, replication: usize) -> Result<Vec<BlockAllocation>> {
        crate::provider_manager::ProviderManager::allocate(self, n_blocks, replication)
    }
    fn release_many(&self, providers: &[usize]) -> Result<()> {
        crate::provider_manager::ProviderManager::release_many(self, providers);
        Ok(())
    }
    fn load_vector(&self) -> Result<Vec<u64>> {
        Ok(crate::provider_manager::ProviderManager::load_vector(self))
    }
    fn register_provider(&self, node: NodeId) -> Result<usize> {
        Ok(crate::provider_manager::ProviderManager::register_provider(
            self, node,
        ))
    }
    fn heartbeat(&self, provider: usize) -> Result<u64> {
        crate::provider_manager::ProviderManager::heartbeat(self, provider)
    }
}

impl GcService for crate::gc::GcTracker {
    fn inc_nodes(&self, keys: &[NodeKey]) -> Result<()> {
        for &key in keys {
            self.inc_node(key);
        }
        Ok(())
    }
    /// A bare tracker holds refcounts but no storage ports, so it cannot
    /// cascade — deployments wire a [`crate::gc::GcHost`] for that. This
    /// impl exists so refcount-only contexts (tree benches, unit fixtures)
    /// can stand in for the full service.
    fn release_roots(&self, _roots: &[NodeKey]) -> Result<GcReport> {
        Err(Error::Internal(
            "GcTracker has no storage ports to cascade into; deploy a GcHost".into(),
        ))
    }
    fn node_count(&self, key: &NodeKey) -> Result<u64> {
        Ok(crate::gc::GcTracker::node_count(self, key))
    }
    fn tracked_nodes(&self) -> Result<usize> {
        Ok(crate::gc::GcTracker::tracked_nodes(self))
    }
}

impl VersionService for crate::version_manager::VersionManager {
    fn block_size(&self) -> u64 {
        crate::version_manager::VersionManager::block_size(self)
    }
    fn create_blob(&self) -> Result<BlobId> {
        Ok(crate::version_manager::VersionManager::create_blob(self))
    }
    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        crate::version_manager::VersionManager::branch(self, parent, at)
    }
    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        crate::version_manager::VersionManager::assign(self, blob, intent)
    }
    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        crate::version_manager::VersionManager::commit(self, blob, version)
    }
    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        crate::version_manager::VersionManager::latest(self, blob)
    }
    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        crate::version_manager::VersionManager::snapshot_info(self, blob, version)
    }
    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        crate::version_manager::VersionManager::chain(self, blob)
    }
    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        crate::version_manager::VersionManager::wait_revealed(self, blob, version, timeout)
    }
    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        crate::version_manager::VersionManager::pending_versions(self, blob)
    }
    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        crate::version_manager::VersionManager::delete_blob(self, blob)
    }
    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        crate::version_manager::VersionManager::collect_before(self, blob, keep_from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::ProviderSet;
    use crate::dht::MetaDht;
    use crate::meta::key::Pos;
    use crate::meta::node::BlockDescriptor;
    use crate::stats::EngineStats;
    use crate::version_manager::VersionManager;
    use std::sync::Arc;

    #[test]
    fn traits_are_object_safe_and_delegate() {
        let store: Arc<dyn BlockStore> = Arc::new(ProviderSet::new(2, |i| NodeId::new(i as u64)));
        store
            .put(0, BlockId::new(1), Bytes::from_static(b"abc"))
            .unwrap();
        assert_eq!(store.get(0, BlockId::new(1)).unwrap().len(), 3);
        assert_eq!(store.layout_vector(), vec![1, 0]);
        assert_eq!(store.total_bytes_stored(), 3);
        assert_eq!(store.total_block_count(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.node(1), NodeId::new(1));
        assert_eq!(store.index_of_node(NodeId::new(1)), Some(1));

        let meta: Arc<dyn MetaStore> = Arc::new(MetaDht::new(4, 1));
        let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
        meta.put(
            key,
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(9),
                providers: vec![0],
                len: 3,
            }),
        )
        .unwrap();
        assert!(meta.get(&key).is_ok());
        assert_eq!(meta.shard_count(), 4);
        assert_eq!(meta.node_count(), 1);

        let vm: Arc<dyn VersionService> =
            Arc::new(VersionManager::new(64, Arc::new(EngineStats::new())));
        let blob = vm.create_blob().unwrap();
        let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(blob, t.version).unwrap();
        assert_eq!(vm.latest(blob).unwrap(), (Version::new(1), 64));
    }
}
