//! The FileSystem trait and its companion types.
//!
//! This mirrors the subset of `org.apache.hadoop.fs.FileSystem` that the
//! paper's integration implements (§IV): namespace operations, streaming
//! reads/writes, append, and the block-location call that powers affinity
//! scheduling ("Hadoop's file system API exposes a call that allows Hadoop
//! to learn how the requested data is split into blocks, and where those
//! blocks are stored", §IV-C).

use blobseer_types::{NodeId, Result};

/// Metadata of a file or directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileStatus {
    /// Normalized absolute path.
    pub path: String,
    /// True for directories.
    pub is_dir: bool,
    /// File length in bytes (0 for directories).
    pub len: u64,
    /// Block/chunk size of the file system holding the file.
    pub block_size: u64,
}

/// Where one block of a file lives — the affinity-scheduling primitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsBlockLocation {
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Length of the block (the final block may be shorter).
    pub length: u64,
    /// Nodes hosting replicas of the block.
    pub hosts: Vec<NodeId>,
}

/// A readable, seekable stream over a file.
///
/// Implementations buffer internally (HDFS "prefetches data on reading",
/// §II-B; BSFS implements "a similar caching mechanism", §IV-B), so callers
/// may issue small reads — Hadoop reads 4 KB at a time — without paying a
/// per-call protocol round trip.
pub trait DfsInput: Send {
    /// Reads up to `buf.len()` bytes at the current position; returns the
    /// number of bytes read (0 at end of file).
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Moves the read position.
    fn seek(&mut self, pos: u64) -> Result<()>;

    /// Current read position.
    fn pos(&self) -> u64;

    /// Total file length at open time.
    fn len(&self) -> u64;

    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads exactly `buf.len()` bytes or fails.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.read(&mut buf[done..])?;
            if n == 0 {
                return Err(blobseer_types::Error::OutOfBounds {
                    requested_end: self.pos() + (buf.len() - done) as u64,
                    snapshot_size: self.len(),
                });
            }
            done += n;
        }
        Ok(())
    }
}

impl<T: DfsInput + ?Sized> DfsInput for Box<T> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        (**self).read(buf)
    }
    fn seek(&mut self, pos: u64) -> Result<()> {
        (**self).seek(pos)
    }
    fn pos(&self) -> u64 {
        (**self).pos()
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// A writable stream over a file.
///
/// Implementations buffer writes and flush whole blocks ("it postpones
/// committing data after the buffer has reached at least a full chunk
/// size", §II-B), so the underlying storage only ever sees block-aligned
/// traffic. Data is durable and visible to new readers after [`close`].
///
/// [`close`]: DfsOutput::close
pub trait DfsOutput: Send {
    /// Appends `buf` to the stream.
    fn write(&mut self, buf: &[u8]) -> Result<()>;

    /// Bytes written so far through this stream.
    fn pos(&self) -> u64;

    /// Flushes buffered data and releases the writer lease. Idempotent.
    fn close(&mut self) -> Result<()>;
}

/// The file-system API both backends implement (§IV).
pub trait FileSystem: Send + Sync {
    /// Creates a file and opens it for writing. With `overwrite`, an
    /// existing *file* at the path is replaced; otherwise creation fails.
    fn create(&self, path: &str, overwrite: bool) -> Result<Box<dyn DfsOutput + '_>>;

    /// Opens an existing file for appending. HDFS 0.20 returns
    /// `Error::Unsupported` here (§V-F: "we could not perform the same
    /// experiment for HDFS, since it does not implement the append
    /// operation").
    fn append(&self, path: &str) -> Result<Box<dyn DfsOutput + '_>>;

    /// Opens a file for reading.
    fn open(&self, path: &str) -> Result<Box<dyn DfsInput + '_>>;

    /// True if the path exists (file or directory).
    fn exists(&self, path: &str) -> Result<bool>;

    /// Status of a file or directory.
    fn status(&self, path: &str) -> Result<FileStatus>;

    /// Statuses of a directory's children (sorted by name).
    fn list(&self, path: &str) -> Result<Vec<FileStatus>>;

    /// Creates a directory and all missing ancestors.
    fn mkdirs(&self, path: &str) -> Result<()>;

    /// Deletes a file, or a directory (recursively when asked).
    fn delete(&self, path: &str, recursive: bool) -> Result<()>;

    /// Renames a file or directory. The destination must not exist.
    fn rename(&self, src: &str, dst: &str) -> Result<()>;

    /// Block locations overlapping `[offset, offset + len)` of a file —
    /// the data-layout exposure of §IV-C.
    fn block_locations(&self, path: &str, offset: u64, len: u64) -> Result<Vec<FsBlockLocation>>;

    /// The block/chunk size of this file system.
    fn block_size(&self) -> u64;

    /// A short backend name for reports ("BSFS" / "HDFS").
    fn backend_name(&self) -> &'static str;
}
