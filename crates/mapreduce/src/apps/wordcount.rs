//! WordCount: the canonical Map/Reduce example (Dean & Ghemawat \[1\]),
//! included as a third runnable application exercising a heavier shuffle
//! than grep.

use crate::job::{Emit, InputSpec, JobSpec, Mapper, Reducer};

/// Counts whitespace-separated words.
pub struct WordCount;

impl WordCount {
    /// A job spec with `reducers` reduce tasks.
    pub fn job(input: &str, output_dir: &str, reducers: usize) -> JobSpec {
        JobSpec::new(
            "wordcount",
            InputSpec::Files(vec![input.to_string()]),
            output_dir,
            reducers,
        )
    }
}

impl Mapper for WordCount {
    fn map(&self, _offset: u64, line: &[u8], out: &mut Emit<'_>) {
        for word in line.split(|&b| b == b' ' || b == b'\t') {
            if !word.is_empty() {
                out(word, b"1");
            }
        }
    }
}

impl Reducer for WordCount {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], out: &mut Emit<'_>) {
        let total: u64 = values
            .iter()
            .map(|v| {
                std::str::from_utf8(v)
                    .unwrap_or("0")
                    .parse::<u64>()
                    .unwrap_or(0)
            })
            .sum();
        out(key, total.to_string().as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words() {
        let wc = WordCount;
        let mut words = Vec::new();
        wc.map(0, b"a b  c\t d", &mut |k, v| {
            assert_eq!(v, b"1");
            words.push(k.to_vec());
        });
        assert_eq!(
            words,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn reduces_to_totals() {
        let wc = WordCount;
        let mut out = Vec::new();
        wc.reduce(b"w", &vec![b"1".to_vec(); 5], &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
        });
        assert_eq!(out, vec![(b"w".to_vec(), b"5".to_vec())]);
    }
}
