//! Regenerates every figure of the paper's evaluation section in one run —
//! the data behind EXPERIMENTS.md.

use experiments::{fig3a, fig3b, fig4, fig5, fig6, Constants};

fn main() {
    let c = Constants::default();
    let quick = bench::quick_mode();

    let fig = if quick {
        fig3a::run(&c, &[1.0, 8.0, 16.0])
    } else {
        fig3a::run(&c, &fig3a::paper_sizes())
    };
    bench::print_figure(&fig);

    let fig = if quick {
        fig3b::run(&c, &[2.0, 8.0, 16.0])
    } else {
        fig3b::run(&c, &fig3b::paper_sizes())
    };
    bench::print_figure(&fig);

    let counts = if quick {
        vec![1, 100, 250]
    } else {
        fig4::paper_counts()
    };
    bench::print_figure(&fig4::run(&c, &counts));

    let counts = if quick {
        vec![1, 100, 250]
    } else {
        fig5::paper_counts()
    };
    bench::print_figure(&fig5::run(&c, &counts));

    let mappers = if quick {
        vec![50, 5, 1]
    } else {
        fig6::rtw_paper_mappers()
    };
    bench::print_figure(&fig6::run_rtw(&c, &mappers));

    let sizes = if quick {
        vec![6.4, 12.8]
    } else {
        fig6::grep_paper_sizes()
    };
    bench::print_figure(&fig6::run_grep(&c, &sizes));
}
