//! Versioning workflow: the features §VI-A of the paper proposes to build
//! on — reading past snapshots, branching a dataset in O(1), and garbage
//! collecting history.
//!
//! ```text
//! cargo run --example versioning_workflow
//! ```

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, NodeId, Version};

fn main() {
    let system = BlobSeer::deploy(
        BlobSeerConfig::default()
            .with_block_size(1024)
            .with_metadata_providers(4),
        6,
    );
    let client = system.client(NodeId::new(0));

    // Build a small dataset over three versions.
    let blob = client.create();
    client.write(blob, 0, &[b'a'; 4096]).unwrap(); // v1: aaaa…
    client.write(blob, 0, &[b'b'; 1024]).unwrap(); // v2: b…a…
    client.append(blob, &[b'c'; 1024]).unwrap(); // v3: …c
    let (latest, size) = client.latest(blob).unwrap();
    println!("blob {blob}: latest {latest}, {size} bytes");

    // Every snapshot remains readable — "rolling back undesired changes"
    // is just reading an old version.
    for v in 1..=3u64 {
        let data = client.read(blob, Some(Version::new(v)), 0, 8).unwrap();
        println!(
            "  v{v} starts with {:?} (size {})",
            &data[..],
            client.size(blob, Version::new(v)).unwrap()
        );
    }

    // Branch at v2: "branching a dataset into two independent datasets
    // that can evolve independently" — O(1), no data copied.
    let fork = client.branch(blob, Version::new(2)).unwrap();
    println!("\nbranched {blob} @v2 into {fork}");
    client.write(fork, 0, &[b'F'; 512]).unwrap();
    client.write(blob, 0, &[b'M'; 512]).unwrap();
    let main_head = client.read(blob, None, 0, 4).unwrap();
    let fork_head = client.read(fork, None, 0, 4).unwrap();
    println!(
        "  main head now {:?}, fork head now {:?}",
        &main_head[..],
        &fork_head[..]
    );
    // Shared history is still intact from both lineages.
    assert_eq!(
        client.read(blob, Some(Version::new(1)), 0, 4096).unwrap(),
        client.read(fork, Some(Version::new(1)), 0, 4096).unwrap()
    );
    println!("  v1 identical through both lineages ✓");

    // Garbage-collect old versions of the main lineage: only blocks not
    // shared with surviving snapshots (or the fork) are reclaimed.
    let before = system.stats().snapshot();
    let report = client
        .gc_before(blob, client.latest(blob).unwrap().0)
        .unwrap();
    println!(
        "\nGC: deleted {} tree nodes and {} blocks ({} bytes) — shared data survived",
        report.nodes_deleted, report.blocks_deleted, report.bytes_freed
    );
    let after = system.stats().snapshot();
    assert_eq!(
        after.meta_nodes_collected - before.meta_nodes_collected,
        report.nodes_deleted
    );
    // The fork still reads its full history.
    let data = client.read(fork, Some(Version::new(2)), 0, 1024).unwrap();
    assert!(data.iter().all(|&b| b == b'b'));
    println!("fork still reads v2 after main-lineage GC ✓");
}
