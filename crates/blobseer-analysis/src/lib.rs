//! Repo-specific static analysis for the BlobSeer reproduction.
//!
//! The build environment has no crates.io access, so the usual ecosystem
//! tooling (custom clippy lints, loom, sanitizers) is out of reach; this
//! crate implements the slice the repo actually needs as a dependency-free
//! line scanner. The rules encode invariants the codebase has converged
//! on over the PR stack (see `docs/ANALYSIS.md`):
//!
//! * [`no-unwrap`](RULE_NO_UNWRAP) — no `.unwrap()` / `.expect(` in
//!   non-test library code of the protocol crates (`types`,
//!   `blobseer-core`, `blobseer-rpc`, `blobseer-disk`, `bsfs`, the shims
//!   and the umbrella `src/`). Driver/harness crates (`experiments`,
//!   `bench`, `dfs`, `hdfs-sim`, `mapreduce`) are out of scope: panicking
//!   on bad figure configs is fine, losing a server worker to a poisoned
//!   unwrap is not.
//! * [`no-std-sync`](RULE_NO_STD_SYNC) — no `std::sync::{Mutex, RwLock,
//!   Condvar}` outside `shims/parking_lot` and `simnet::gate`: everything
//!   else must go through the instrumented shim or the lock-order checker
//!   is blind to it.
//! * [`no-real-time`](RULE_NO_REAL_TIME) — no `Instant::now()` /
//!   `thread::sleep` in the SimGate-charged crates (`simnet`,
//!   `experiments`, `hdfs-sim`): virtual-time models must not consult the
//!   wall clock.
//! * [`no-panic-decode`](RULE_NO_PANIC_DECODE) — no `panic!` family
//!   macros in the wire-decode paths: a malformed frame from a peer must
//!   surface as `Error::Codec`, never as a server-side panic.
//!
//! Escape hatch: a finding is suppressed by `// lint:allow(rule): reason`
//! on the same line or the immediately preceding one; the reason is
//! mandatory. Test code (`#[cfg(test)]` / `#[test]` blocks, `tests/` and
//! `benches/` trees) is skipped entirely.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

pub const RULE_NO_UNWRAP: &str = "no-unwrap";
pub const RULE_NO_STD_SYNC: &str = "no-std-sync";
pub const RULE_NO_REAL_TIME: &str = "no-real-time";
pub const RULE_NO_PANIC_DECODE: &str = "no-panic-decode";

/// Every rule the lint knows, in reporting order.
pub const ALL_RULES: [&str; 4] = [
    RULE_NO_UNWRAP,
    RULE_NO_STD_SYNC,
    RULE_NO_REAL_TIME,
    RULE_NO_PANIC_DECODE,
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

// ---------------------------------------------------------------------------
// Rule scoping by workspace-relative path.
// ---------------------------------------------------------------------------

/// Crates whose library code must propagate errors instead of unwrapping:
/// everything on the client/server protocol paths.
const NO_UNWRAP_SCOPE: [&str; 8] = [
    "crates/types/",
    "crates/blobseer-core/",
    "crates/blobseer-control/",
    "crates/blobseer-rpc/",
    "crates/blobseer-disk/",
    "crates/bsfs/",
    "shims/",
    "src/",
];

/// Crates charged to `simnet::SimGate` virtual time.
const NO_REAL_TIME_SCOPE: [&str; 3] = ["crates/simnet/", "crates/experiments/", "crates/hdfs-sim/"];

/// Wire-decode files where a malformed peer frame must never panic.
const NO_PANIC_DECODE_SCOPE: [&str; 5] = [
    "crates/blobseer-rpc/src/wire.rs",
    "crates/types/src/wire.rs",
    "crates/blobseer-core/src/meta/codec.rs",
    "crates/blobseer-control/src/codec.rs",
    "crates/blobseer-control/src/replog.rs",
];

/// The two sanctioned `std::sync` lock users: the shim itself (it *is*
/// the instrumentation layer) and the SimGate scheduler (which must not
/// recurse into the checker it underpins).
const STD_SYNC_EXEMPT: [&str; 2] = ["shims/parking_lot/", "crates/simnet/src/gate.rs"];

fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Paths that are test/bench harness by location rather than by
/// `#[cfg(test)]`: integration tests, benches, fixtures, examples.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

// ---------------------------------------------------------------------------
// Line-level scanning.
// ---------------------------------------------------------------------------

/// Strips line comments, block comments and (naively) string literals,
/// tracking block-comment state across lines. Good enough for pattern
/// rules: the repo is rustfmt-formatted and the patterns are all
/// multi-token method calls or paths that never span lines.
fn clean_line(raw: &str, in_block_comment: &mut bool) -> String {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    let mut in_str = false;
    let mut in_char = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if *in_block_comment {
            if c == '*' && next == Some('/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str {
            match c {
                '\\' => i += 2,
                '"' => {
                    in_str = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => i += 2,
                '\'' => {
                    in_char = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match c {
            '/' if next == Some('/') => break, // line or doc comment
            '/' if next == Some('*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            // A lifetime (`'a`) is not a char literal; only treat a quote
            // as opening one when it closes within a couple of chars
            // (`'x'`, `b'x'`, `'\n'`, `'\''`).
            '\'' => {
                let closes = chars.get(i + 2) == Some(&'\'')
                    || (next == Some('\\') && chars.get(i + 3) == Some(&'\''));
                if closes {
                    in_char = true;
                }
                out.push('\'');
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Extracts `lint:allow(rule): reason` directives from a raw source line.
/// Returns the allowed rules; a directive without a non-empty reason after
/// the colon allows nothing (the reason is the point).
fn allowed_rules(raw: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let has_reason = tail
            .strip_prefix(':')
            .is_some_and(|reason| !reason.trim().is_empty());
        if has_reason && !rule.is_empty() {
            rules.push(rule);
        }
        rest = tail;
    }
    rules
}

/// Lints one file's source. `rel` is the workspace-relative path that
/// decides which rules apply.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let rel = rel.replace('\\', "/");
    if is_test_path(&rel) {
        return Vec::new();
    }
    let unwrap_scope = in_scope(&rel, &NO_UNWRAP_SCOPE);
    let real_time_scope = in_scope(&rel, &NO_REAL_TIME_SCOPE);
    let decode_scope = NO_PANIC_DECODE_SCOPE.contains(&rel.as_str());
    let std_sync_scope = !in_scope(&rel, &STD_SYNC_EXEMPT);

    let mut findings = Vec::new();
    let mut in_block_comment = false;
    // Depth of `{` nesting inside a region introduced by `#[cfg(test)]` /
    // `#[test]`; 0 = not in test code. `pending` bridges the attribute
    // line and the `{` that opens the item.
    let mut test_depth = 0usize;
    let mut pending_test_attr = false;
    let mut prev_allows: Vec<String> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let cleaned = clean_line(raw, &mut in_block_comment);
        let allows = allowed_rules(raw);

        let opens = cleaned.matches('{').count();
        let closes = cleaned.matches('}').count();

        if test_depth > 0 {
            test_depth = (test_depth + opens).saturating_sub(closes);
            prev_allows = allows;
            continue;
        }
        if cleaned.contains("#[cfg(test)]")
            || cleaned.contains("#[test]")
            || cleaned.contains("#[cfg(all(test")
        {
            pending_test_attr = true;
        }
        if pending_test_attr {
            if opens > 0 {
                pending_test_attr = false;
                test_depth = opens.saturating_sub(closes).max(1);
                if opens == closes {
                    // one-line test item, e.g. `#[test] fn t() {}`
                    test_depth = 0;
                }
            } else if cleaned.trim_end().ends_with(';') {
                // attribute applied to a braceless item (`#[cfg(test)] use …;`)
                pending_test_attr = false;
            }
            prev_allows = allows;
            continue;
        }

        let check = |rule: &'static str, hit: bool, findings: &mut Vec<Finding>| {
            if !hit {
                return;
            }
            let allowed = allows.iter().chain(prev_allows.iter()).any(|r| r == rule);
            if !allowed {
                findings.push(Finding {
                    path: rel.clone(),
                    line: line_no,
                    rule,
                    excerpt: raw.trim().to_string(),
                });
            }
        };

        if unwrap_scope {
            check(
                RULE_NO_UNWRAP,
                cleaned.contains(".unwrap()") || cleaned.contains(".expect("),
                &mut findings,
            );
        }
        if std_sync_scope {
            let hit = cleaned.contains("std::sync")
                && ["Mutex", "RwLock", "Condvar"]
                    .iter()
                    .any(|t| cleaned.contains(t));
            check(RULE_NO_STD_SYNC, hit, &mut findings);
        }
        if real_time_scope {
            check(
                RULE_NO_REAL_TIME,
                cleaned.contains("Instant::now()") || cleaned.contains("thread::sleep"),
                &mut findings,
            );
        }
        if decode_scope {
            let hit = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("]
                .iter()
                .any(|t| cleaned.contains(t));
            check(RULE_NO_PANIC_DECODE, hit, &mut findings);
        }

        prev_allows = allows;
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Directories never worth descending into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Recursively collects the workspace's `.rs` files, workspace-relative.
pub fn rust_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root`, returning all findings sorted by
/// path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in rust_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel.to_string_lossy(), &source));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Locates the workspace root from this crate's build-time manifest dir.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
