//! Distributed grep (§V-G): "representative of a distributed job where
//! huge input data needs to be processed in order to obtain some
//! statistics. … Mappers simply output the value of these counters, then
//! the reducers sum up the all the outputs of the mappers."
//!
//! The access pattern is "concurrent reads from the same shared file".

use crate::job::{Emit, InputSpec, JobSpec, Mapper, Reducer};

/// The grep mapper/reducer: counts lines containing a pattern.
pub struct DistributedGrep {
    /// Substring to search for.
    pub pattern: Vec<u8>,
}

impl DistributedGrep {
    /// New grep for a pattern.
    pub fn new(pattern: &str) -> Self {
        Self {
            pattern: pattern.as_bytes().to_vec(),
        }
    }

    /// A job spec scanning `input` with one reducer summing the counts.
    pub fn job(input: &str, output_dir: &str) -> JobSpec {
        JobSpec::new(
            "distributed-grep",
            InputSpec::Files(vec![input.to_string()]),
            output_dir,
            1,
        )
    }

    /// Substring search (memmem); no regex dependency needed for the
    /// paper's "particular expression" scans.
    fn matches(&self, line: &[u8]) -> bool {
        if self.pattern.is_empty() {
            return true;
        }
        line.windows(self.pattern.len())
            .any(|w| w == &self.pattern[..])
    }
}

impl Mapper for DistributedGrep {
    fn map(&self, _offset: u64, line: &[u8], out: &mut Emit<'_>) {
        if self.matches(line) {
            out(&self.pattern, b"1");
        }
    }
}

impl Reducer for DistributedGrep {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], out: &mut Emit<'_>) {
        let total: u64 = values
            .iter()
            .map(|v| {
                std::str::from_utf8(v)
                    .unwrap_or("0")
                    .parse::<u64>()
                    .unwrap_or(0)
            })
            .sum();
        out(key, total.to_string().as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_emits_only_on_match() {
        let g = DistributedGrep::new("needle");
        let mut hits = 0;
        g.map(0, b"hay needle hay", &mut |_, _| hits += 1);
        g.map(0, b"just hay", &mut |_, _| hits += 1);
        g.map(0, b"needleneedle", &mut |_, _| hits += 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let g = DistributedGrep::new("");
        let mut hits = 0;
        g.map(0, b"", &mut |_, _| hits += 1);
        g.map(0, b"anything", &mut |_, _| hits += 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn reducer_sums_counts() {
        let g = DistributedGrep::new("p");
        let values = vec![b"1".to_vec(), b"1".to_vec(), b"1".to_vec()];
        let mut out = Vec::new();
        g.reduce(b"p", &values, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
        });
        assert_eq!(out, vec![(b"p".to_vec(), b"3".to_vec())]);
    }
}
