//! `simnet` — a small, deterministic discrete-event simulator used to model
//! the Grid'5000 testbed of the paper's evaluation (§V-A): nodes with
//! 1 Gbit/s NICs, 0.1 ms latency, and commodity disks.
//!
//! The simulator is split into orthogonal pieces:
//!
//! * [`kernel`] — the event loop: a simulated clock, an ordered event queue
//!   and `FnOnce` handlers parameterised over a user "world" type. Events at
//!   equal timestamps fire in scheduling order, so runs are deterministic.
//! * [`flow`] — a flow-level network model. Transfers are *flows* that share
//!   NIC capacity max-min fairly; rates are recomputed whenever a flow starts
//!   or finishes (progressive filling). This is the standard way to capture
//!   throughput collapse under contention without packet-level detail.
//! * [`disk`] — a work-conserving FIFO disk per node: submissions complete in
//!   order at a fixed drain rate, which is what makes "two readers hitting
//!   the same datanode" slower — the effect driving Fig. 4 of the paper.
//! * [`server`] — a serialized RPC server (single queue, fixed service time)
//!   used for the centralized entities: HDFS's namenode and BlobSeer's
//!   version manager ("the only step … where concurrent requests are
//!   serialized", §III-A.4).
//! * [`gate`] — virtual-time coordination for many *real* blocked client
//!   threads: synchronous code (the genuine client protocol) runs one
//!   thread per simulated client, interleaved deterministically on the
//!   simulated clock, with flow completions as dynamic wake-ups. This is
//!   what lets the concurrent-client figures (4–6) drive the real
//!   `BlobClient` instead of bespoke event-handler re-implementations.
//!
//! # Example
//!
//! ```
//! use simnet::{Sim, SimDuration};
//!
//! struct World { ticks: u32 }
//! let mut sim = Sim::new(World { ticks: 0 });
//! sim.schedule_in(SimDuration::from_millis(5), |w: &mut World, sched| {
//!     w.ticks += 1;
//!     sched.schedule_in(SimDuration::from_millis(5), |w: &mut World, _| {
//!         w.ticks += 1;
//!     });
//! });
//! sim.run_until_idle();
//! assert_eq!(sim.world.ticks, 2);
//! assert_eq!(sim.now().as_millis(), 10);
//! ```
#![forbid(unsafe_code)]

pub mod disk;
pub mod flow;
pub mod gate;
pub mod kernel;
pub mod server;
pub mod time;

pub use disk::Disk;
pub use flow::{start_flow, FlowId, FlowNet, NetWorld, NicSpec};
pub use gate::{SimGate, SimTask};
pub use kernel::{Scheduler, Sim};
pub use server::FifoServer;
pub use time::{SimDuration, SimTime};
