//! Block placement policies.
//!
//! The provider manager "selects the data providers according to a load
//! balancing strategy that aims at evenly distributing the blocks across
//! data providers" (§III-B); BlobSeer's default allocates "blocks on remote
//! providers in a round-robin fashion" (§V-D). The HDFS baseline and the
//! figure-scale experiment models share this module so the live engine and
//! the simulator cannot drift apart — Fig. 3(b) is generated directly from
//! these policies.

use blobseer_types::config::PlacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stateful placement engine: one per allocation stream (the provider
/// manager owns one; HDFS write sessions own one each, which is what gives
/// the sticky policy its session affinity).
#[derive(Debug)]
pub struct Placer {
    policy: PlacementPolicy,
    rr_next: usize,
    last: Option<usize>,
    rng: StdRng,
}

impl Placer {
    /// Creates a placer with a deterministic RNG seed (experiments pass
    /// distinct seeds per run; the live engine seeds from entropy).
    pub fn new(policy: PlacementPolicy, seed: u64) -> Self {
        Self {
            policy,
            rr_next: 0,
            last: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The policy this placer implements.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Picks a provider index for the next block.
    ///
    /// * `loads` — current per-provider block counts (used by
    ///   `LeastLoaded`; its length defines the provider count).
    /// * `exclude` — indices that must not be chosen (already-placed
    ///   replicas of the same block). Must leave at least one candidate.
    pub fn pick(&mut self, loads: &[u64], exclude: &[usize]) -> usize {
        let n = loads.len();
        assert!(n > 0, "no providers to place on");
        assert!(exclude.len() < n, "exclusion list leaves no candidate");
        match self.policy {
            PlacementPolicy::RoundRobin => loop {
                let i = self.rr_next % n;
                self.rr_next = (self.rr_next + 1) % n;
                if !exclude.contains(&i) {
                    return i;
                }
            },
            PlacementPolicy::LeastLoaded => {
                let mut best = usize::MAX;
                let mut best_load = u64::MAX;
                for (i, &l) in loads.iter().enumerate() {
                    if !exclude.contains(&i) && l < best_load {
                        best = i;
                        best_load = l;
                    }
                }
                best
            }
            PlacementPolicy::Random => self.pick_random(n, exclude),
            PlacementPolicy::StickyRandom { stickiness } => {
                if let Some(last) = self.last {
                    let stick = self.rng.gen_range(0u8..100) < stickiness;
                    if stick && last < n && !exclude.contains(&last) {
                        self.last = Some(last);
                        return last;
                    }
                }
                let i = self.pick_random(n, exclude);
                self.last = Some(i);
                i
            }
        }
    }

    fn pick_random(&mut self, n: usize, exclude: &[usize]) -> usize {
        loop {
            let i = self.rng.gen_range(0..n);
            if !exclude.contains(&i) {
                return i;
            }
        }
    }

    /// Places one block with `replication` replicas on distinct providers.
    pub fn pick_replicas(&mut self, loads: &[u64], replication: usize) -> Vec<usize> {
        assert!(
            replication <= loads.len(),
            "replication {} exceeds provider count {}",
            replication,
            loads.len()
        );
        let mut chosen = Vec::with_capacity(replication);
        for _ in 0..replication {
            let i = self.pick(loads, &chosen);
            chosen.push(i);
        }
        chosen
    }
}

/// The paper's load-balance metric (§V-D): the Manhattan distance between a
/// layout vector and the perfectly balanced layout (every provider stores
/// `total/n` blocks, fractional).
pub fn manhattan_unbalance(layout: &[u64]) -> f64 {
    if layout.is_empty() {
        return 0.0;
    }
    let total: u64 = layout.iter().sum();
    let ideal = total as f64 / layout.len() as f64;
    layout.iter().map(|&c| (c as f64 - ideal).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place_n(
        policy: PlacementPolicy,
        n_blocks: usize,
        n_providers: usize,
        seed: u64,
    ) -> Vec<u64> {
        let mut placer = Placer::new(policy, seed);
        let mut loads = vec![0u64; n_providers];
        for _ in 0..n_blocks {
            let i = placer.pick(&loads, &[]);
            loads[i] += 1;
        }
        loads
    }

    #[test]
    fn round_robin_is_perfectly_even() {
        let loads = place_n(PlacementPolicy::RoundRobin, 40, 8, 0);
        assert!(loads.iter().all(|&l| l == 5), "{loads:?}");
        // Uneven totals differ by at most one block.
        let loads = place_n(PlacementPolicy::RoundRobin, 42, 8, 0);
        assert!(loads.iter().all(|&l| l == 5 || l == 6), "{loads:?}");
    }

    #[test]
    fn round_robin_skips_excluded() {
        let mut p = Placer::new(PlacementPolicy::RoundRobin, 0);
        let loads = vec![0; 3];
        assert_eq!(p.pick(&loads, &[0]), 1);
        assert_eq!(p.pick(&loads, &[2]), 0);
    }

    #[test]
    fn least_loaded_fills_valleys() {
        let mut p = Placer::new(PlacementPolicy::LeastLoaded, 0);
        let loads = vec![5, 1, 3];
        assert_eq!(p.pick(&loads, &[]), 1);
        assert_eq!(p.pick(&loads, &[1]), 2);
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let a = place_n(PlacementPolicy::Random, 100, 10, 42);
        let b = place_n(PlacementPolicy::Random, 100, 10, 42);
        assert_eq!(a, b);
        let c = place_n(PlacementPolicy::Random, 100, 10, 43);
        assert_ne!(a, c, "different seed, different stream (overwhelmingly)");
    }

    #[test]
    fn sticky_random_clusters_more_than_random() {
        // With heavy stickiness, consecutive blocks pile onto few providers;
        // unbalance must exceed plain random placement for the same seed set.
        let mut sticky_unbalance = 0.0;
        let mut random_unbalance = 0.0;
        for seed in 0..20 {
            let s = place_n(
                PlacementPolicy::StickyRandom { stickiness: 80 },
                200,
                50,
                seed,
            );
            let r = place_n(PlacementPolicy::Random, 200, 50, seed);
            sticky_unbalance += manhattan_unbalance(&s);
            random_unbalance += manhattan_unbalance(&r);
        }
        assert!(
            sticky_unbalance > random_unbalance * 1.2,
            "sticky {sticky_unbalance} should exceed random {random_unbalance}"
        );
    }

    #[test]
    fn zero_stickiness_behaves_like_random() {
        let s = place_n(PlacementPolicy::StickyRandom { stickiness: 0 }, 500, 20, 7);
        let r = place_n(PlacementPolicy::Random, 500, 20, 7);
        // Not necessarily identical streams (different rng call patterns),
        // but statistically indistinguishable unbalance.
        let (su, ru) = (manhattan_unbalance(&s), manhattan_unbalance(&r));
        assert!(
            (su - ru).abs() < ru * 0.75 + 20.0,
            "sticky0={su} random={ru}"
        );
    }

    #[test]
    fn replicas_are_distinct() {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::Random,
            PlacementPolicy::StickyRandom { stickiness: 90 },
        ] {
            let mut p = Placer::new(policy, 1);
            let loads = vec![0u64; 5];
            let reps = p.pick_replicas(&loads, 3);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {reps:?}");
        }
    }

    #[test]
    #[should_panic(expected = "replication 4 exceeds provider count 3")]
    fn too_much_replication_panics() {
        let mut p = Placer::new(PlacementPolicy::RoundRobin, 0);
        p.pick_replicas(&[0, 0, 0], 4);
    }

    #[test]
    fn unbalance_metric() {
        assert_eq!(manhattan_unbalance(&[]), 0.0);
        assert_eq!(manhattan_unbalance(&[3, 3, 3]), 0.0);
        // [4,2] vs ideal [3,3] → |4-3|+|2-3| = 2.
        assert_eq!(manhattan_unbalance(&[4, 2]), 2.0);
        // Fractional ideal: 3 blocks on 2 nodes → ideal 1.5 each.
        assert_eq!(manhattan_unbalance(&[3, 0]), 3.0);
        assert_eq!(manhattan_unbalance(&[2, 1]), 1.0);
    }
}
