//! Microbenchmarks of the version manager — the protocol's only
//! serialization point (§III-A.4). Assignment must stay O(1) and cheap for
//! the Fig. 5 scaling claim to hold.

use blobseer_core::stats::EngineStats;
use blobseer_core::version_manager::{VersionManager, WriteIntent};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn vm() -> VersionManager {
    VersionManager::new(64 * 1024 * 1024, Arc::new(EngineStats::new()))
}

/// Sequential assign+commit pairs on one BLOB.
fn bench_assign_commit(c: &mut Criterion) {
    c.bench_function("version_manager/assign_commit", |b| {
        let vm = vm();
        let blob = vm.create_blob();
        b.iter(|| {
            let t = vm
                .assign(
                    blob,
                    WriteIntent::Append {
                        size: 64 * 1024 * 1024,
                    },
                )
                .unwrap();
            vm.commit(blob, t.version).unwrap();
            black_box(t.version)
        });
    });
}

/// Assignment cost must not grow with history length (contrast with the
/// namenode's O(block-list) edit logging modeled in Fig. 3(a)).
fn bench_assign_vs_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("version_manager/assign_with_history");
    for &history in &[0u64, 1_000, 100_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(history),
            &history,
            |b, &history| {
                let vm = vm();
                let blob = vm.create_blob();
                for _ in 0..history {
                    let t = vm.assign(blob, WriteIntent::Append { size: 1 }).unwrap();
                    vm.commit(blob, t.version).unwrap();
                }
                b.iter(|| {
                    let t = vm.assign(blob, WriteIntent::Append { size: 1 }).unwrap();
                    vm.commit(blob, t.version).unwrap();
                });
            },
        );
    }
    g.finish();
}

/// Contended assignment: 8 threads on one BLOB (the Fig. 5 hot path).
fn bench_contended_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("version_manager/contended_8_threads");
    g.sample_size(10);
    g.bench_function("assign_commit", |b| {
        b.iter(|| {
            let vm = Arc::new(vm());
            let blob = vm.create_blob();
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let vm = Arc::clone(&vm);
                    std::thread::spawn(move || {
                        for _ in 0..500 {
                            let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
                            vm.commit(blob, t.version).unwrap();
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
        });
    });
    g.finish();
}

/// Snapshot-info lookups (the read-path call of §III-C).
fn bench_snapshot_info(c: &mut Criterion) {
    c.bench_function("version_manager/snapshot_info", |b| {
        let vm = vm();
        let blob = vm.create_blob();
        for _ in 0..1000 {
            let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
            vm.commit(blob, t.version).unwrap();
        }
        let mut v = 1u64;
        b.iter(|| {
            v = v % 1000 + 1;
            black_box(
                vm.snapshot_info(blob, blobseer_types::Version::new(v))
                    .unwrap(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_assign_commit,
    bench_assign_vs_history,
    bench_contended_assign,
    bench_snapshot_info
);
criterion_main!(benches);
