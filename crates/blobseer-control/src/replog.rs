//! Replicated-log entries and their on-disk frame payloads.
//!
//! Each replica persists its log as a `blobseer-disk`
//! [`FrameLog`](blobseer_disk::FrameLog) — the same CRC-checksummed,
//! length-prefixed frame format the durable version manager and the disk
//! metadata store already use, so torn tails truncate cleanly on reopen.
//! One frame holds one [`RepEntry`]: `term | index | command`.

use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{Error, Result};

use crate::codec::{get_command, put_command, Command};

/// One slot of the replicated log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepEntry {
    /// Election term the entry was appended under.
    pub term: u64,
    /// Position in the log, starting at 0. Redundant with the frame's
    /// offset but cheap, and it turns a mis-stitched recovery into a
    /// loud decode-time error instead of silent reordering.
    pub index: u64,
    /// The replicated mutation.
    pub command: Command,
}

/// Encodes `entry` as one frame payload.
pub fn encode_entry(entry: &RepEntry) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(entry.term);
    w.put_u64(entry.index);
    put_command(&mut w, &entry.command);
    w.into_vec()
}

/// Decodes one frame payload back into a [`RepEntry`], checking that its
/// recorded index matches the slot it was read into.
pub fn decode_entry(payload: &[u8], expect_index: u64) -> Result<RepEntry> {
    let mut r = WireReader::new(payload);
    let term = r.get_u64()?;
    let index = r.get_u64()?;
    if index != expect_index {
        return Err(Error::Storage(format!(
            "replicated log: frame {expect_index} records index {index}"
        )));
    }
    let command = get_command(&mut r)?;
    r.finish()?;
    Ok(RepEntry {
        term,
        index,
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CommandKind;

    fn entry(term: u64, index: u64) -> RepEntry {
        RepEntry {
            term,
            index,
            command: Command {
                client_id: 1,
                seq: 40 + index,
                kind: CommandKind::CreateBlob,
            },
        }
    }

    #[test]
    fn entries_roundtrip() {
        let e = entry(3, 17);
        let bytes = encode_entry(&e);
        assert_eq!(decode_entry(&bytes, 17).unwrap(), e);
    }

    #[test]
    fn index_mismatch_is_rejected() {
        let bytes = encode_entry(&entry(3, 17));
        let err = decode_entry(&bytes, 16).unwrap_err();
        assert!(err.to_string().contains("records index 17"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_entry(&entry(1, 0));
        bytes.push(0xFF);
        assert!(decode_entry(&bytes, 0).is_err());
    }
}
