//! The provider manager: "keeps information about the available storage
//! space and schedules the placement of newly generated blocks" (§III-B).
//!
//! It tracks per-provider load and hands out `(BlockId, [provider indices])`
//! allocations. Block ids are drawn from a global atomic counter, which
//! makes them unique without coordination — exactly the property the
//! two-phase write protocol needs (data can be written before the version
//! number exists, §III-D).

use crate::placement::Placer;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::{BlockId, Error, NodeId, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single block allocation: the id to store under and the providers
/// (dense indices into the deployment's `ProviderSet`) that will hold the
/// replicas, primary first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockAllocation {
    /// Globally unique id for the new block.
    pub block_id: BlockId,
    /// Replica targets (dense provider indices), primary first.
    pub providers: Vec<usize>,
}

/// The provider manager service — the in-memory adapter behind the
/// [`crate::ports::PlacementService`] port (deployments host it behind an
/// RPC server so N client processes share one load-accounting authority).
#[derive(Debug)]
pub struct ProviderManager {
    placer: Mutex<Placer>,
    /// Blocks allocated (not necessarily yet stored) per provider; the load
    /// signal for placement decisions. Its length is the authoritative
    /// provider count ([`Self::register_provider`] grows it).
    loads: Mutex<Vec<u64>>,
    next_block: AtomicU64,
    /// Nodes hosting dynamically registered providers, parallel to the
    /// tail of `loads` past the initially configured count.
    registered: Mutex<Vec<NodeId>>,
}

impl ProviderManager {
    /// Creates a manager over `n_providers` providers with the given policy.
    pub fn new(n_providers: usize, policy: PlacementPolicy, seed: u64) -> Self {
        Self::with_block_base(n_providers, policy, seed, 1)
    }

    /// Like [`Self::new`], but drawing block ids from `first_block` upward.
    ///
    /// Block ids must be unique across every manager whose blocks land on
    /// the same providers. In-process deployments have exactly one manager,
    /// so `new` starting at 1 suffices; an RPC deployment runs one manager
    /// per *client process* against shared remote providers, and gives each
    /// manager a disjoint id range (`blobseer_rpc::LoopbackCluster::deploy`
    /// spaces them 2^40 apart). Colliding ids would make the providers'
    /// immutable-put check reject — or in release builds silently drop —
    /// one client's blocks.
    pub fn with_block_base(
        n_providers: usize,
        policy: PlacementPolicy,
        seed: u64,
        first_block: u64,
    ) -> Self {
        assert!(n_providers > 0, "need at least one data provider");
        assert!(first_block >= 1, "block ids start at 1");
        Self {
            placer: Mutex::named(Placer::new(policy, seed), "pm.placer"),
            loads: Mutex::named(vec![0; n_providers], "pm.loads"),
            next_block: AtomicU64::new(first_block),
            registered: Mutex::named(Vec::new(), "pm.registered"),
        }
    }

    /// Number of providers under management (initial count plus any
    /// dynamically registered since).
    pub fn provider_count(&self) -> usize {
        self.loads.lock().len()
    }

    /// Registers a new provider hosted on `node`, growing the placement
    /// and load-accounting state; returns the provider's dense index.
    pub fn register_provider(&self, node: NodeId) -> usize {
        // Lock order placer → loads, same as `allocate`, so a concurrent
        // allocation observes either the old or the new provider count
        // consistently in both structures.
        let placer = self.placer.lock();
        let mut loads = self.loads.lock();
        let index = loads.len();
        loads.push(0);
        drop(placer);
        self.registered.lock().push(node);
        index
    }

    /// Nodes of providers added through [`Self::register_provider`], in
    /// registration order.
    pub fn registered_nodes(&self) -> Vec<NodeId> {
        self.registered.lock().clone()
    }

    /// Liveness ping: returns provider `i`'s currently allocated load, or
    /// an error for an unknown index (a dead or never-registered provider
    /// in a real deployment).
    pub fn heartbeat(&self, provider: usize) -> Result<u64> {
        self.loads
            .lock()
            .get(provider)
            .copied()
            .ok_or_else(|| Error::NoProviderAvailable(format!("heartbeat: no provider {provider}")))
    }

    /// Allocates ids and replica targets for `n_blocks` new blocks.
    ///
    /// Fails when the replication level exceeds the provider count —
    /// "no data provider available" in the paper's terms.
    pub fn allocate(&self, n_blocks: usize, replication: usize) -> Result<Vec<BlockAllocation>> {
        let mut placer = self.placer.lock();
        let mut loads = self.loads.lock();
        if replication > loads.len() {
            return Err(Error::NoProviderAvailable(format!(
                "replication {replication} exceeds provider count {}",
                loads.len()
            )));
        }
        let mut out = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let providers = placer.pick_replicas(&loads, replication);
            for &p in &providers {
                loads[p] += 1;
            }
            let block_id = BlockId::new(self.next_block.fetch_add(1, Ordering::Relaxed));
            out.push(BlockAllocation {
                block_id,
                providers,
            });
        }
        Ok(out)
    }

    /// Releases load accounting for collected blocks (one unit per replica).
    pub fn release(&self, provider: usize) {
        let mut loads = self.loads.lock();
        if let Some(l) = loads.get_mut(provider) {
            *l = l.saturating_sub(1);
        }
    }

    /// Batched [`Self::release`]: one load unit per entry (entries repeat
    /// per replica), under a single lock acquisition. This is the shape the
    /// hosted placement service wants — a GC delete wave releases all of a
    /// wave's replicas in one control frame instead of one per replica.
    pub fn release_many(&self, providers: &[usize]) {
        let mut loads = self.loads.lock();
        for &p in providers {
            if let Some(l) = loads.get_mut(p) {
                *l = l.saturating_sub(1);
            }
        }
    }

    /// Copy of the current load vector (blocks allocated per provider).
    pub fn load_vector(&self) -> Vec<u64> {
        self.loads.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_unique_and_balanced() {
        let pm = ProviderManager::new(4, PlacementPolicy::RoundRobin, 0);
        let allocs = pm.allocate(8, 1).unwrap();
        assert_eq!(allocs.len(), 8);
        let mut ids: Vec<u64> = allocs.iter().map(|a| a.block_id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "block ids must be unique");
        assert_eq!(pm.load_vector(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn replication_fans_out() {
        let pm = ProviderManager::new(5, PlacementPolicy::RoundRobin, 0);
        let allocs = pm.allocate(1, 3).unwrap();
        assert_eq!(allocs[0].providers.len(), 3);
        let total: u64 = pm.load_vector().iter().sum();
        assert_eq!(total, 3, "each replica counts toward load");
    }

    #[test]
    fn over_replication_is_an_error() {
        let pm = ProviderManager::new(2, PlacementPolicy::RoundRobin, 0);
        let err = pm.allocate(1, 3).unwrap_err();
        assert!(matches!(err, Error::NoProviderAvailable(_)), "{err}");
    }

    #[test]
    fn release_decrements_load() {
        let pm = ProviderManager::new(2, PlacementPolicy::RoundRobin, 0);
        pm.allocate(4, 1).unwrap();
        pm.release(0);
        assert_eq!(pm.load_vector(), vec![1, 2]);
        pm.release(0);
        pm.release(0); // saturates at zero
        assert_eq!(pm.load_vector(), vec![0, 2]);
    }

    #[test]
    fn release_many_decrements_in_one_pass() {
        let pm = ProviderManager::new(3, PlacementPolicy::RoundRobin, 0);
        pm.allocate(6, 1).unwrap();
        assert_eq!(pm.load_vector(), vec![2, 2, 2]);
        // Entries repeat per replica; out-of-range indices are ignored.
        pm.release_many(&[0, 0, 1, 7]);
        assert_eq!(pm.load_vector(), vec![0, 1, 2]);
    }

    #[test]
    fn registration_grows_the_provider_pool() {
        let pm = ProviderManager::new(2, PlacementPolicy::RoundRobin, 0);
        assert_eq!(pm.provider_count(), 2);
        let idx = pm.register_provider(NodeId::new(9));
        assert_eq!(idx, 2);
        assert_eq!(pm.provider_count(), 3);
        assert_eq!(pm.registered_nodes(), vec![NodeId::new(9)]);
        // The new provider participates in placement and load accounting:
        // replication 3 now succeeds and lands one replica on it.
        let allocs = pm.allocate(1, 3).unwrap();
        assert!(allocs[0].providers.contains(&2));
        assert_eq!(pm.load_vector(), vec![1, 1, 1]);
    }

    #[test]
    fn heartbeat_reports_load_or_unknown_provider() {
        let pm = ProviderManager::new(2, PlacementPolicy::RoundRobin, 0);
        pm.allocate(2, 1).unwrap();
        assert_eq!(pm.heartbeat(0).unwrap(), 1);
        let err = pm.heartbeat(5).unwrap_err();
        assert!(matches!(err, Error::NoProviderAvailable(_)), "{err}");
    }

    #[test]
    fn concurrent_allocation_stays_unique() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let pm = Arc::new(ProviderManager::new(8, PlacementPolicy::RoundRobin, 0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pm = Arc::clone(&pm);
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for _ in 0..50 {
                        for a in pm.allocate(2, 1).unwrap() {
                            ids.push(a.block_id.raw());
                        }
                    }
                    ids
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate block id {id}");
            }
        }
        assert_eq!(all.len(), 8 * 50 * 2);
        let total: u64 = pm.load_vector().iter().sum();
        assert_eq!(total, 800);
    }
}
