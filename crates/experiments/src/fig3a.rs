//! Fig. 3(a): throughput of a single remote writer as the file grows from
//! 1 to 16 GB (§V-D).
//!
//! The model executes the two write protocols block by block on the
//! discrete-event simulator:
//!
//! * **BSFS** — per 64 MB append: client-side cache flush cost → provider
//!   manager RPC → bulk flow to the round-robin provider (streamed to its
//!   disk) → version-manager assignment (queued, O(1)) → parallel tree-node
//!   puts to the metadata DHT (node count from the *real* segment-tree
//!   arithmetic in `blobseer_core::meta::shape`) → commit. Every provider
//!   sees at most a couple of blocks, so disks never queue: the curve is
//!   flat.
//! * **HDFS** — per 64 MB chunk: pipeline overhead → namenode allocation,
//!   whose cost *grows with the file's chunk count* (0.20's OP_ADD rewrote
//!   the file's entire block list into the synchronously-fsynced edit log
//!   on every allocation) → bulk flow to the sticky-random datanode →
//!   finalize. The O(chunks) namenode term bends the curve downward as the
//!   file grows — the decline the paper attributes to HDFS's weaker
//!   write path.

use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::{Backend, Services};
use blobseer_core::meta::key::BlockRange;
use blobseer_core::meta::log::LogEntry;
use blobseer_core::meta::shape;
use blobseer_core::placement::Placer;
use blobseer_types::{NodeId, Version};
use simnet::{start_flow, FlowNet, NetWorld, NicSpec, Scheduler, Sim, SimDuration, SimTime};

#[derive(Clone, Copy)]
struct Tok {
    started: SimTime,
    provider: usize,
}

struct World {
    net: FlowNet<Tok>,
    disks: Vec<simnet::Disk>,
    c: Constants,
    backend: Backend,
    services: Services,
    targets: Vec<usize>,
    n_blocks: usize,
    next_block: usize,
    client_node: NodeId,
    /// Running tree capacity in blocks (BSFS metadata arithmetic).
    cap: u64,
    finished: Option<SimTime>,
}

impl NetWorld for World {
    type Token = Tok;
    fn net_mut(&mut self) -> &mut FlowNet<Tok> {
        &mut self.net
    }
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, tok: Tok) {
        // Stream hit the provider: its disk has been absorbing it since the
        // flow started; the ack returns when both network and disk are done.
        let disk_done = self.disks[tok.provider].submit(tok.started, self.c.block_bytes);
        let ack = disk_done.max(sched.now()) + self.c.provider_svc;
        sched.schedule_at(ack, |w: &mut World, s| w.after_data(s));
    }
}

impl World {
    fn new(c: Constants, backend: Backend, n_blocks: usize, seed: u64) -> Self {
        let providers = backend.microbench_storage_nodes();
        // Nodes: 0..P providers, node P = the (dedicated, non-colocated)
        // client (§V-D: "we chose to always deploy clients on nodes where
        // no datanode has previously been deployed").
        let net = FlowNet::new(providers + 1, NicSpec::symmetric(c.nic_bps));
        let disks = (0..providers)
            .map(|_| simnet::Disk::new(c.disk_write_bps))
            .collect();
        let mut placer = Placer::new(policy_for(&c, backend), seed);
        let loads = vec![0u64; providers];
        let targets = (0..n_blocks).map(|_| placer.pick(&loads, &[])).collect();
        let meta_shards = if backend == Backend::Bsfs {
            c.meta_shards
        } else {
            0
        };
        let services = Services::new(&c, backend, meta_shards);
        Self {
            net,
            disks,
            c,
            backend,
            services,
            targets,
            n_blocks,
            next_block: 0,
            client_node: NodeId::new(providers as u64),
            cap: 0,
            finished: None,
        }
    }

    /// Starts the next block's cycle: client overhead + allocation RPC,
    /// then the bulk transfer.
    fn start_block(&mut self, sched: &mut Scheduler<Self>) {
        if self.next_block == self.n_blocks {
            self.finished = Some(sched.now());
            return;
        }
        let now = sched.now();
        let k = self.next_block as u64;
        let flow_at = match self.backend {
            Backend::Bsfs => {
                // Cache flush cost, then the provider-manager RPC.
                now + self.c.bsfs_block_overhead + self.c.rtt()
            }
            Backend::Hdfs => {
                // Pipeline overhead, then the namenode block allocation:
                // base + edit-log fsync + O(chunk-count) block-list rewrite.
                let svc = self.c.nn_svc
                    + self.c.nn_editlog_fsync
                    + SimDuration::from_nanos(self.c.nn_blocklist_per_chunk.as_nanos() * k);
                let t = now + self.c.hdfs_chunk_overhead;
                self.services.central_call(t, svc, self.c.latency)
            }
        };
        sched.schedule_at(flow_at, |w: &mut World, s| {
            let provider = w.targets[w.next_block];
            let tok = Tok {
                started: s.now(),
                provider,
            };
            start_flow(
                w,
                s,
                w.client_node,
                NodeId::new(provider as u64),
                w.c.block_bytes,
                tok,
            );
        });
    }

    /// Data phase done; run the metadata phase (BSFS) or finish the chunk
    /// (HDFS, whose namenode was charged up front).
    fn after_data(&mut self, sched: &mut Scheduler<Self>) {
        let now = sched.now();
        let done_at = match self.backend {
            Backend::Hdfs => now,
            Backend::Bsfs => {
                // Version assignment (serialized, O(1))...
                let assigned =
                    self.services
                        .central_call(now, self.c.vm_assign_svc, self.c.latency);
                // ...then the tree-node puts, counted by the real segment
                // tree arithmetic, in parallel across the DHT...
                let k = self.next_block as u64;
                let cap_before = self.cap;
                let cap_after = (k + 1).next_power_of_two();
                self.cap = cap_after;
                let entry = LogEntry {
                    version: Version::new(k + 1),
                    blocks: BlockRange::new(k, k + 1),
                    cap_before,
                    cap_after,
                    size_after: (k + 1) * self.c.block_bytes,
                };
                let puts_done = self.services.meta_parallel(
                    assigned,
                    shape::nodes_created(&entry),
                    self.c.latency,
                );
                // ...then the commit notification.
                puts_done + self.c.rtt()
            }
        };
        self.next_block += 1;
        sched.schedule_at(done_at, |w: &mut World, s| w.start_block(s));
    }
}

/// Simulates one single-writer run; returns throughput in MB/s.
pub fn throughput_mbps(c: &Constants, backend: Backend, n_blocks: usize, seed: u64) -> f64 {
    let mut sim = Sim::new(World::new(c.clone(), backend, n_blocks, seed));
    sim.schedule_in(SimDuration::ZERO, |w: &mut World, s| w.start_block(s));
    let end = sim.run_until_idle();
    assert!(sim.world.finished.is_some(), "writer did not finish");
    let bytes = n_blocks as f64 * c.block_bytes as f64;
    bytes / (1024.0 * 1024.0) / end.as_secs_f64()
}

/// Reproduces Fig. 3(a): write throughput vs file size (GB), averaged over
/// the paper's 5 repetitions.
pub fn run(c: &Constants, sizes_gb: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 3(a)",
        "Single writer, single file: write throughput vs file size",
        "file size (GB)",
        "throughput (MB/s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &gb in sizes_gb {
            let n_blocks =
                ((gb * 1024.0 * 1024.0 * 1024.0) / c.block_bytes as f64).round() as usize;
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| throughput_mbps(c, backend, n_blocks, 0xF163A + rep))
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(gb, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's x grid: 1 → 16 GB.
pub fn paper_sizes() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsfs_is_faster_and_flat() {
        let c = Constants::default();
        let fig = run(&c, &[1.0, 8.0, 16.0]);
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        for (&(x, h), &(_, b)) in hdfs.points.iter().zip(&bsfs.points) {
            assert!(
                b > h * 1.3,
                "BSFS should lead clearly at {x} GB: bsfs={b:.1} hdfs={h:.1}"
            );
        }
        // BSFS sustains its throughput as the file grows (±10%).
        let (b1, b16) = (bsfs.y_at(1.0).unwrap(), bsfs.y_at(16.0).unwrap());
        assert!(
            (b16 - b1).abs() / b1 < 0.10,
            "BSFS flat: {b1:.1} → {b16:.1}"
        );
        // HDFS declines with file size.
        let (h1, h16) = (hdfs.y_at(1.0).unwrap(), hdfs.y_at(16.0).unwrap());
        assert!(h16 < h1 * 0.93, "HDFS declines: {h1:.1} → {h16:.1}");
    }

    #[test]
    fn absolute_levels_are_in_the_paper_band() {
        // Paper: BSFS ≈ 60–70 MB/s; HDFS ≈ 35–47 MB/s.
        let c = Constants::default();
        let bsfs = throughput_mbps(&c, Backend::Bsfs, 128, 1);
        let hdfs = throughput_mbps(&c, Backend::Hdfs, 128, 1);
        assert!((55.0..75.0).contains(&bsfs), "BSFS at 8 GB: {bsfs:.1}");
        assert!((33.0..50.0).contains(&hdfs), "HDFS at 8 GB: {hdfs:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Constants::default();
        let a = throughput_mbps(&c, Backend::Hdfs, 32, 9);
        let b = throughput_mbps(&c, Backend::Hdfs, 32, 9);
        assert_eq!(a, b);
    }
}
