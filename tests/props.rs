//! Property-based tests: random operation sequences checked against simple
//! reference models.

use blobseer_core::BlobSeer;
use blobseer_types::{BlobSeerConfig, ByteRange, NodeId, Version};
use bsfs::BsfsCluster;
use dfs::api::FileSystem;
use dfs::util::{read_fully, write_file};
use proptest::prelude::*;

const BLOCK: u64 = 64;

/// A write/append/branch script interpreted both by the live engine and by
/// a plain `Vec<u8>` model; every historical snapshot must match the model
/// state at that point.
#[derive(Clone, Debug)]
enum Op {
    Write { offset: u16, val: u8, len: u8 },
    Append { val: u8, len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..2048, any::<u8>(), 1u8..=255).prop_map(|(offset, val, len)| Op::Write {
            offset,
            val,
            len
        }),
        (any::<u8>(), 1u8..=255).prop_map(|(val, len)| Op::Append { val, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every snapshot of a random single-writer history equals the model.
    #[test]
    fn blob_history_matches_vec_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::small_for_tests().with_block_size(BLOCK),
            4,
        );
        let client = sys.client(NodeId::new(0));
        let blob = client.create();
        let mut model: Vec<u8> = Vec::new();
        let mut snapshots: Vec<Vec<u8>> = vec![Vec::new()];

        for op in &ops {
            match *op {
                Op::Write { offset, val, len } => {
                    let offset = offset as usize;
                    let data = vec![val; len as usize];
                    client.write(blob, offset as u64, &data).unwrap();
                    if model.len() < offset + data.len() {
                        model.resize(offset + data.len(), 0);
                    }
                    model[offset..offset + data.len()].copy_from_slice(&data);
                }
                Op::Append { val, len } => {
                    let data = vec![val; len as usize];
                    let (off, _) = client.append(blob, &data).unwrap();
                    prop_assert_eq!(off as usize, model.len(), "append offset mismatch");
                    model.extend_from_slice(&data);
                }
            }
            snapshots.push(model.clone());
        }

        // The head matches…
        let (latest, size) = client.latest(blob).unwrap();
        prop_assert_eq!(latest.raw() as usize, ops.len());
        prop_assert_eq!(size as usize, model.len());
        let head = client.read(blob, None, 0, size).unwrap();
        prop_assert_eq!(&head[..], &model[..]);
        // …and every historical snapshot matches its model state.
        for (v, expect) in snapshots.iter().enumerate().skip(1) {
            let v = Version::new(v as u64);
            let sz = client.size(blob, v).unwrap();
            prop_assert_eq!(sz as usize, expect.len(), "size of {}", v);
            let data = client.read(blob, Some(v), 0, sz).unwrap();
            prop_assert_eq!(&data[..], &expect[..], "content of {}", v);
        }
        // Random sub-range reads agree too.
        if !model.is_empty() {
            let mid = model.len() / 2;
            let data = client.read(blob, None, mid as u64, (model.len() - mid) as u64).unwrap();
            prop_assert_eq!(&data[..], &model[mid..]);
        }
    }

    /// Branching at any revealed version yields an independent lineage that
    /// equals the model prefix and diverges cleanly.
    #[test]
    fn branch_isolating_history(
        ops in proptest::collection::vec(op_strategy(), 2..12),
        branch_sel in any::<prop::sample::Index>(),
        fork_val in any::<u8>(),
    ) {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::small_for_tests().with_block_size(BLOCK),
            4,
        );
        let client = sys.client(NodeId::new(0));
        let blob = client.create();
        let mut model: Vec<u8> = Vec::new();
        let mut snapshots: Vec<Vec<u8>> = vec![Vec::new()];
        for op in &ops {
            match *op {
                Op::Write { offset, val, len } => {
                    let offset = offset as usize;
                    let data = vec![val; len as usize];
                    client.write(blob, offset as u64, &data).unwrap();
                    if model.len() < offset + data.len() {
                        model.resize(offset + data.len(), 0);
                    }
                    model[offset..offset + data.len()].copy_from_slice(&data);
                }
                Op::Append { val, len } => {
                    let data = vec![val; len as usize];
                    client.append(blob, &data).unwrap();
                    model.extend_from_slice(&data);
                }
            }
            snapshots.push(model.clone());
        }
        let at = 1 + branch_sel.index(ops.len());
        let fork = client.branch(blob, Version::new(at as u64)).unwrap();
        // Fork head equals the model at the branch point.
        let expect = &snapshots[at];
        let (fv, fsize) = client.latest(fork).unwrap();
        prop_assert_eq!(fv.raw() as usize, at);
        prop_assert_eq!(fsize as usize, expect.len());
        if !expect.is_empty() {
            let data = client.read(fork, None, 0, fsize).unwrap();
            prop_assert_eq!(&data[..], &expect[..]);
        }
        // Writing to the fork does not disturb the parent.
        client.append(fork, &[fork_val; 10]).unwrap();
        let (pv, psize) = client.latest(blob).unwrap();
        prop_assert_eq!(pv.raw() as usize, ops.len());
        prop_assert_eq!(psize as usize, model.len());
    }

    /// GC never affects surviving snapshots: after collecting everything
    /// below the head, the head still equals the model.
    #[test]
    fn gc_preserves_surviving_snapshots(ops in proptest::collection::vec(op_strategy(), 2..16)) {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::small_for_tests().with_block_size(BLOCK),
            4,
        );
        let client = sys.client(NodeId::new(0));
        let blob = client.create();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match *op {
                Op::Write { offset, val, len } => {
                    let offset = offset as usize;
                    let data = vec![val; len as usize];
                    client.write(blob, offset as u64, &data).unwrap();
                    if model.len() < offset + data.len() {
                        model.resize(offset + data.len(), 0);
                    }
                    model[offset..offset + data.len()].copy_from_slice(&data);
                }
                Op::Append { val, len } => {
                    let data = vec![val; len as usize];
                    client.append(blob, &data).unwrap();
                    model.extend_from_slice(&data);
                }
            }
        }
        let (latest, size) = client.latest(blob).unwrap();
        client.gc_before(blob, latest).unwrap();
        // Old versions gone…
        if latest.raw() > 1 {
            prop_assert!(client.read(blob, Some(Version::new(1)), 0, 1).is_err());
        }
        // …head intact.
        let head = client.read(blob, Some(latest), 0, size).unwrap();
        prop_assert_eq!(&head[..], &model[..]);
    }

    /// The BSFS streaming layer (write-behind + prefetch) round-trips any
    /// byte sequence written in arbitrary-sized chunks.
    #[test]
    fn bsfs_streaming_roundtrip(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..700), 0..12),
        read_chunk in 1usize..600,
    ) {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::small_for_tests().with_block_size(256),
            4,
        );
        let cluster = BsfsCluster::new(sys);
        let fs = cluster.mount(NodeId::new(0));
        let mut out = fs.create("/p", true).unwrap();
        let mut expect = Vec::new();
        for chunk in &chunks {
            out.write(chunk).unwrap();
            expect.extend_from_slice(chunk);
        }
        out.close().unwrap();
        // Chunked reads reproduce the stream.
        let mut input = fs.open("/p").unwrap();
        let mut got = Vec::new();
        let mut buf = vec![0u8; read_chunk];
        loop {
            let n = input.read(&mut buf).unwrap();
            if n == 0 { break; }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, expect);
    }

    /// Namespace model check: a random sequence of creates/deletes of
    /// files matches a HashSet model, on both backends.
    #[test]
    fn namespace_matches_set_model(script in proptest::collection::vec((0u8..24, any::<bool>()), 1..40)) {
        let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(256), 2);
        let bsfs = BsfsCluster::new(sys);
        let bfs = bsfs.mount(NodeId::new(0));
        let hdfs = hdfs_sim::HdfsCluster::new(
            blobseer_types::HdfsConfig::small_for_tests().with_chunk_size(256),
            2,
        );
        let hfs = hdfs.mount(NodeId::new(0));
        let mut model = std::collections::HashSet::new();
        for (slot, create) in script {
            let path = format!("/ns/f{slot}");
            if create {
                write_file(&bfs, &path, b"x").unwrap();
                write_file(&hfs, &path, b"x").unwrap();
                model.insert(path);
            } else {
                let expect = model.remove(&path);
                prop_assert_eq!(bfs.delete(&path, false).is_ok(), expect);
                prop_assert_eq!(hfs.delete(&path, false).is_ok(), expect);
            }
        }
        for slot in 0..24u8 {
            let path = format!("/ns/f{slot}");
            let expect = model.contains(&path);
            prop_assert_eq!(bfs.exists(&path).unwrap(), expect);
            prop_assert_eq!(hfs.exists(&path).unwrap(), expect);
            if expect {
                prop_assert_eq!(read_fully(&bfs, &path).unwrap(), b"x".to_vec());
            }
        }
    }

    /// Block-span arithmetic: spans tile the range exactly, in order,
    /// within block bounds.
    #[test]
    fn block_spans_tile_ranges(offset in 0u64..10_000, size in 0u64..10_000, bs in 1u64..512) {
        let range = ByteRange::new(offset, size);
        let spans: Vec<_> = range.block_spans(bs).collect();
        let total: u64 = spans.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, size);
        let mut cursor = offset;
        for s in &spans {
            prop_assert_eq!(s.block_index * bs + s.offset_in_block, cursor);
            prop_assert!(s.offset_in_block + s.len <= bs);
            prop_assert!(s.len >= 1);
            cursor += s.len;
        }
        prop_assert_eq!(cursor, range.end());
    }
}
