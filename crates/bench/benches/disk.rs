//! Throughput of the append-only disk backend at the port boundary.
//!
//! Three questions, measured directly against `blobseer-disk`:
//!
//! * what a single-op put/get costs on the needle volume (one frame
//!   append + index insert, one positioned read) vs the vectored calls
//!   that amortise the log lock and the write syscall across a batch —
//!   the same per-op/batched comparison `batching.rs` makes over RPC,
//!   here without the wire;
//! * the same for the metadata record log behind `DiskMetaStore`; and
//! * what a cold open costs: `reopen()` drops every in-memory index and
//!   rebuilds it by replaying the logs, which is the startup price a
//!   restarted provider pays before serving its first request.

use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, TreeNode};
use blobseer_core::ports::{BlockStore, MetaStore};
use blobseer_disk::testutil::TempDir;
use blobseer_disk::{DiskMetaStore, DiskProviderSet};
use blobseer_types::{BlobId, BlockId, NodeId, Version};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const BLOCKS: u64 = 64;
const BLOCK_BYTES: usize = 4096;

fn node_key(k: u64) -> NodeKey {
    NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(k, 1))
}

fn tree_node(k: u64) -> TreeNode {
    TreeNode::Leaf(BlockDescriptor {
        block_id: BlockId::new(k),
        providers: vec![0],
        len: BLOCK_BYTES as u32,
    })
}

fn bench_disk_volume(c: &mut Criterion) {
    let tmp = TempDir::new("bench-disk-volume");
    let store = DiskProviderSet::open(tmp.path(), 1, |i| NodeId::new(i as u64)).unwrap();
    let payload = Bytes::from(vec![0xD1u8; BLOCK_BYTES]);

    // --- write side: 64 fresh blocks per round ------------------------------
    // Ids never repeat across rounds (the volume is append-only and puts
    // are immutable), so every round measures 64 genuine appends.
    let mut g = c.benchmark_group("disk_volume/store_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    let mut round = 0u64;
    g.bench_function("per_op", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            for k in 0..BLOCKS {
                store
                    .put(0, BlockId::new(base + k), payload.clone())
                    .unwrap();
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            round += 1;
            let base = round * 1_000_000;
            let items: Vec<(BlockId, Bytes)> = (0..BLOCKS)
                .map(|k| (BlockId::new(base + k), payload.clone()))
                .collect();
            for result in store.put_many(0, &items) {
                result.unwrap();
            }
        });
    });
    g.finish();

    // --- read side: the same 64 blocks back ---------------------------------
    let base = u64::MAX / 2;
    for k in 0..BLOCKS {
        store
            .put(0, BlockId::new(base + k), payload.clone())
            .unwrap();
    }
    let ids: Vec<BlockId> = (0..BLOCKS).map(|k| BlockId::new(base + k)).collect();
    let mut g = c.benchmark_group("disk_volume/fetch_64_blocks");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(BLOCKS * BLOCK_BYTES as u64));
    g.bench_function("per_op", |b| {
        b.iter(|| {
            for &id in &ids {
                black_box(BlockStore::get(&store, 0, id).unwrap());
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            for result in store.get_many(0, &ids) {
                black_box(result.unwrap());
            }
        });
    });
    g.finish();
}

fn bench_disk_meta(c: &mut Criterion) {
    let tmp = TempDir::new("bench-disk-meta");
    let store = DiskMetaStore::open(tmp.path(), 4).unwrap();

    // Tree-node puts are idempotent re-puts after the first round (same
    // key, same node — no append), so this measures the steady-state
    // publish path: conflict check against the memtable, no I/O. The
    // first round pays the 64 appends once.
    let batch: Vec<(NodeKey, TreeNode)> =
        (0..BLOCKS).map(|k| (node_key(k), tree_node(k))).collect();
    let keys: Vec<NodeKey> = (0..BLOCKS).map(node_key).collect();
    let mut g = c.benchmark_group("disk_meta/publish_64_nodes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BLOCKS));
    g.bench_function("per_op", |b| {
        b.iter(|| {
            for (key, node) in &batch {
                store.put(*key, node.clone()).unwrap();
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            for result in store.put_many(&batch) {
                result.unwrap();
            }
        });
    });
    g.finish();

    let mut g = c.benchmark_group("disk_meta/descend_64_nodes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BLOCKS));
    g.bench_function("per_op", |b| {
        b.iter(|| {
            for key in &keys {
                black_box(store.get(key).unwrap());
            }
        });
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            for result in store.get_many(&keys) {
                black_box(result.unwrap());
            }
        });
    });
    g.finish();
}

fn bench_cold_reopen(c: &mut Criterion) {
    // The restart price: rebuild the offset index (volume) and memtable
    // (record log) by replaying logs holding 4096 committed entries.
    const ENTRIES: u64 = 4096;
    let tmp = TempDir::new("bench-disk-reopen");
    let volume_dir = tmp.path().join("block");
    let meta_dir = tmp.path().join("meta");
    let volume = DiskProviderSet::open(&volume_dir, 1, |i| NodeId::new(i as u64)).unwrap();
    let payload = Bytes::from(vec![0xD2u8; BLOCK_BYTES]);
    let items: Vec<(BlockId, Bytes)> = (0..ENTRIES)
        .map(|k| (BlockId::new(1 + k), payload.clone()))
        .collect();
    for result in volume.put_many(0, &items) {
        result.unwrap();
    }
    let meta = DiskMetaStore::open(&meta_dir, 4).unwrap();
    let nodes: Vec<(NodeKey, TreeNode)> =
        (0..ENTRIES).map(|k| (node_key(k), tree_node(k))).collect();
    for result in meta.put_many(&nodes) {
        result.unwrap();
    }

    let mut g = c.benchmark_group("disk_reopen/cold_index_4096_entries");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(ENTRIES * BLOCK_BYTES as u64));
    g.bench_function("volume", |b| {
        b.iter(|| {
            volume.reopen().unwrap();
            black_box(volume.total_block_count())
        });
    });
    g.finish();
    let mut g = c.benchmark_group("disk_reopen/cold_memtable_4096_nodes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ENTRIES));
    g.bench_function("meta", |b| {
        b.iter(|| {
            meta.reopen().unwrap();
            black_box(meta.node_count())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_disk_volume,
    bench_disk_meta,
    bench_cold_reopen
);
criterion_main!(benches);
