//! `blobseer-rpc` — the TCP backend for the BlobSeer service ports.
//!
//! The paper's processes "communicate through remote procedure calls"
//! (§III-B); until this crate, the reproduction ran every service as an
//! in-process struct behind `Arc<dyn …>`. Here the same five port traits
//! — [`blobseer_core::ports::BlockStore`],
//! [`blobseer_core::ports::MetaStore`],
//! [`blobseer_core::ports::VersionService`],
//! [`blobseer_core::ports::PlacementService`],
//! [`blobseer_core::ports::GcService`] — go over real sockets, with
//! zero changes to the client protocol:
//!
//! * [`wire`] — a dependency-free length-prefixed binary codec: LEB128
//!   varint frames carrying a request id (so responses may return out of
//!   order), per-method request tags, and round-trippable encodings
//!   for every type that crosses a port boundary, including all
//!   [`blobseer_types::Error`] variants (service failures arrive at the
//!   remote caller as themselves, not as opaque transport errors);
//! * [`server`] — a TCP server hosting any port adapter behind its own
//!   listener: per-connection reader threads feed a bounded queue drained
//!   by a fixed worker pool, slow `wait_revealed` calls are offloaded so
//!   they never occupy a worker, and shutdown stays graceful and
//!   deterministic;
//! * [`client`] — multiplexed client adapters implementing the five
//!   traits over a small fixed budget of shared connections (any number
//!   of in-flight requests per connection, correlated by request id; dead
//!   connections redial transparently), pluggable into the unchanged
//!   [`blobseer_core::BlobSeer::deploy_ports`]. Data-path adapters meter
//!   on `port_round_trips`; the placement/GC control-plane adapters
//!   meter on `control_round_trips`, keeping the two budgets separately
//!   observable;
//! * [`cluster`] — [`cluster::LoopbackCluster`], an N-process-shaped
//!   deployment over loopback: one server per data provider plus DHT,
//!   version-manager, placement and GC servers.
//!
//! ```
//! use blobseer_rpc::LoopbackCluster;
//! use blobseer_types::{BlobSeerConfig, NodeId};
//!
//! let cluster = LoopbackCluster::boot(
//!     BlobSeerConfig::small_for_tests().with_block_size(64),
//!     4,
//! ).unwrap();
//! let sys = cluster.deploy().unwrap();
//! let client = sys.client(NodeId::new(100));
//!
//! // The unchanged §III protocol, now running over TCP:
//! let blob = client.create();
//! client.write(blob, 0, b"over the wire").unwrap();
//! assert_eq!(&client.read(blob, None, 0, 13).unwrap()[..], b"over the wire");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod server;
pub mod wire;

pub use client::{
    RpcBlockStore, RpcGcService, RpcMetaStore, RpcPlacementService, RpcVersionService,
};
pub use cluster::LoopbackCluster;
pub use server::{InFlight, RpcServer, RpcService};
