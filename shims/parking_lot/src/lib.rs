//! Minimal, API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no access to a crates.io registry,
//! so the workspace vendors the thin slice of the API it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with *non-poisoning* guards
//! (`lock()`/`read()`/`write()` return guards directly, not `Result`s).
//!
//! Poisoning is deliberately swallowed (`unwrap_or_else(PoisonError::into_inner)`)
//! to match parking_lot semantics: a panicking thread does not wedge every
//! other thread, which the fault-tolerance tests rely on.

use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified. Mirrors parking_lot's in-place guard API.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let timeout = deadline.saturating_duration_since(Instant::now());
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the owned guard behind `&mut`, restoring the returned guard.
///
/// std's condvar consumes the guard by value while parking_lot takes
/// `&mut guard`; bridging the two requires a brief move out of the slot.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid, initialized guard. We move it out, pass it
    // through `f` (which returns a guard for the same mutex), and write the
    // result back before anyone can observe the hole. Should `f` ever
    // unwind, the caller would drop the bitwise-duplicated guard a second
    // time, so the bomb turns that path into an abort instead of UB.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let owned = std::ptr::read(slot);
        let back = f(owned);
        std::ptr::write(slot, back);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
