//! Regenerates Fig. 6(a): RandomTextWriter — job completion time for a
//! fixed 6.4 GB total output as the per-mapper share varies (§V-G).

use experiments::{fig6, Constants};

fn main() {
    let c = Constants::default();
    let mappers = if bench::quick_mode() {
        vec![50, 5, 1]
    } else {
        fig6::rtw_paper_mappers()
    };
    bench::print_figure(&fig6::run_rtw(&c, &mappers));
}
